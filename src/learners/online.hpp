#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace iotml::learners {

/// Incremental Gaussian naive Bayes over dense numeric feature vectors:
/// one observe() per arriving record, O(d) per update, O(1) memory in the
/// stream length. The learner the paper's periphery can actually afford —
/// training happens where the data is born, no batch pass required.
class IncrementalNaiveBayes {
 public:
  explicit IncrementalNaiveBayes(std::size_t dims);

  /// Consume one labeled observation.
  void observe(const std::vector<double>& x, int label);

  /// Predict the class of one observation (majority class before any
  /// observation of >= 2 classes).
  int predict(const std::vector<double>& x) const;

  /// Per-class unnormalized log posterior.
  std::vector<double> log_posterior(const std::vector<double>& x) const;

  std::size_t observations() const noexcept { return total_; }
  std::size_t num_classes() const noexcept { return stats_.size(); }

  /// Forget everything (used after drift).
  void reset();

 private:
  struct Welford {
    double mean = 0.0;
    double m2 = 0.0;  // sum of squared deviations
    std::size_t count = 0;

    void add(double value);
    double variance() const;
  };
  struct ClassStats {
    std::size_t count = 0;
    std::vector<Welford> features;
  };

  std::size_t dims_;
  std::size_t total_ = 0;
  std::map<int, ClassStats> stats_;
};

/// Drift Detection Method (Gama et al.'s DDM, simplified): track the online
/// error rate p_t of a classifier and its standard deviation s_t; warn when
/// p + s exceeds the best-seen p_min + 2 s_min, signal drift at
/// p_min + 3 s_min. The standard cheap monitor for the paper's
/// "conditions in the field [that] widely vary".
class DriftDetector {
 public:
  enum class State { kStable, kWarning, kDrift };

  DriftDetector(double warn_sigmas = 2.0, double drift_sigmas = 3.0,
                std::size_t min_observations = 30);

  /// Feed one prediction outcome (true = the classifier erred).
  State observe(bool error);

  State state() const noexcept { return state_; }
  double error_rate() const;
  std::size_t observations() const noexcept { return count_; }

  /// Restart monitoring (after the model is retrained).
  void reset();

 private:
  double warn_sigmas_, drift_sigmas_;
  std::size_t min_observations_;
  std::size_t count_ = 0;
  std::size_t errors_ = 0;
  double best_p_plus_s_ = 1e18;
  double best_p_ = 0.0, best_s_ = 0.0;
  State state_ = State::kStable;
};

/// A self-healing streaming classifier: incremental NB monitored by DDM;
/// on drift it resets the model and relearns from the post-drift stream.
class AdaptiveStreamClassifier {
 public:
  explicit AdaptiveStreamClassifier(std::size_t dims,
                                    DriftDetector detector = DriftDetector());

  /// Process one record: predict first (test-then-train), report whether the
  /// prediction was correct, then learn. Returns the prediction.
  int process(const std::vector<double>& x, int label);

  std::size_t drifts_detected() const noexcept { return drifts_; }
  double running_accuracy() const;
  const IncrementalNaiveBayes& model() const noexcept { return model_; }

 private:
  IncrementalNaiveBayes model_;
  DriftDetector detector_;
  std::size_t seen_ = 0;
  std::size_t correct_ = 0;
  std::size_t drifts_ = 0;
};

}  // namespace iotml::learners
