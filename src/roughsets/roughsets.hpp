#pragma once

#include <cstddef>
#include <vector>

#include "combinatorics/partition.hpp"
#include "data/dataset.hpp"

namespace iotml::rough {

/// Pawlak indiscernibility relation ~K on the rows of a dataset: two rows are
/// equivalent iff they coincide on every feature in K (paper, Section III).
///
/// Categorical columns compare by category; numeric columns by exact value
/// (discretize numeric data upstream — see pipeline::Discretizer). A missing
/// cell is treated as its own distinct value, so rows missing the same cell
/// remain indiscernible from each other but not from rows with data.
class IndiscernibilityRelation {
 public:
  IndiscernibilityRelation(const data::Dataset& ds,
                           std::vector<std::size_t> features);

  const std::vector<std::size_t>& features() const noexcept { return features_; }
  std::size_t num_rows() const noexcept { return class_of_.size(); }

  /// Equivalence classes (information granules), each a sorted row list.
  const std::vector<std::vector<std::size_t>>& classes() const noexcept {
    return classes_;
  }
  std::size_t num_classes() const noexcept { return classes_.size(); }
  std::size_t class_of(std::size_t row) const;

  /// The relation as a partition of the row set — the bridge to the
  /// partition-lattice machinery (classes of ~K are blocks).
  comb::SetPartition to_partition() const;

 private:
  std::vector<std::size_t> features_;
  std::vector<std::size_t> class_of_;
  std::vector<std::vector<std::size_t>> classes_;
};

/// Pawlak rough approximation of a concept T (a row subset) by a relation:
/// lower = union of granules contained in T, upper = union of granules
/// meeting T.
struct Approximation {
  std::vector<std::size_t> lower_rows;
  std::vector<std::size_t> upper_rows;
  std::size_t lower_granules = 0;
  std::size_t upper_granules = 0;
  std::size_t universe_size = 0;

  /// Standard Pawlak accuracy: |lower| / |upper| over *elements*
  /// (1.0 for an empty concept, whose approximations are both empty).
  double accuracy_elements() const;

  /// The paper's Section III example computes the ratio over *granules*:
  /// lower {3} vs upper {{1,2},{3}} gives 1/2 = 0.5. Provided so the phone
  /// example reproduces exactly; see EXPERIMENTS.md for the discussion.
  double accuracy_granules() const;

  /// Quality of approximation: |lower| / |universe|.
  double quality() const;
};

/// Approximate concept T (given as a membership mask over rows).
Approximation approximate(const IndiscernibilityRelation& rel,
                          const std::vector<bool>& concept_mask);

/// Approximate the concept "label == c".
Approximation approximate_label(const IndiscernibilityRelation& rel,
                                const std::vector<int>& labels, int label_value);

/// Degree of dependency gamma_K(labels): |POS_K| / n where POS_K is the union
/// of the lower approximations of all label classes. gamma = 1 means the
/// features determine the labels exactly.
double dependency_degree(const IndiscernibilityRelation& rel,
                         const std::vector<int>& labels);

/// Shannon entropy (nats) of the granule-size distribution of the relation.
double partition_entropy(const IndiscernibilityRelation& rel);

/// Conditional entropy H(labels | relation) in nats: expected label entropy
/// within granules. Zero iff the features determine the labels.
double conditional_entropy(const IndiscernibilityRelation& rel,
                           const std::vector<int>& labels);

/// How a candidate feature subset K is scored during dynamic selection.
enum class KScore {
  kMeanAccuracy,       ///< mean element-accuracy over the label concepts
  kDependency,         ///< dependency degree gamma
  kNegConditionalEntropy  ///< -H(labels | K): the paper's Entropy criterion
};

/// Result of selecting the distinguished block K of the starting partition
/// (K, S-K) — the paper's "select K dynamically, based on the approximation
/// accuracy on benchmark concepts".
struct KSelection {
  std::vector<std::size_t> features;  ///< chosen K
  double score = 0.0;
  std::size_t evaluated_subsets = 0;
};

/// Exhaustively score every nonempty feature subset of size <= max_size
/// against the dataset's labels (benchmark concepts) and return the best.
/// Ties break toward smaller subsets, then lexicographically.
KSelection select_k(const data::Dataset& ds, std::size_t max_size, KScore score);

/// All minimal feature subsets ("reducts") whose dependency degree equals
/// that of the full feature set. Exhaustive; intended for small feature
/// counts (<= 20).
std::vector<std::vector<std::size_t>> find_reducts(const data::Dataset& ds);

// ---- Variable-precision rough sets (Ziarko) -----------------------------------
//
// Exact Pawlak approximations collapse under label noise: one wrong label
// inside a granule empties the lower approximation. The variable-precision
// model admits a granule into the beta-lower approximation when at least a
// fraction beta of its rows belong to the concept — the noise-tolerant
// refinement the paper's uncertainty-aware pipeline needs.

/// Beta-approximation of a concept; beta in (0.5, 1]. beta = 1 recovers the
/// classic Pawlak approximation.
Approximation approximate_beta(const IndiscernibilityRelation& rel,
                               const std::vector<bool>& concept_mask, double beta);

/// Beta-approximation of the concept "label == c".
Approximation approximate_label_beta(const IndiscernibilityRelation& rel,
                                     const std::vector<int>& labels, int label_value,
                                     double beta);

/// Beta-dependency: fraction of rows in granules whose majority label holds
/// at least a beta share. Degrades gracefully with noise (unlike gamma).
double dependency_degree_beta(const IndiscernibilityRelation& rel,
                              const std::vector<int>& labels, double beta);

}  // namespace iotml::rough
