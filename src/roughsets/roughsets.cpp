#include "roughsets/roughsets.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <string>

#include "util/error.hpp"

namespace iotml::rough {

namespace {

/// Key of a row restricted to a feature subset; missing encoded distinctly.
std::vector<double> row_key(const data::Dataset& ds,
                            const std::vector<std::size_t>& features, std::size_t row) {
  std::vector<double> key;
  key.reserve(features.size() * 2);
  for (std::size_t f : features) {
    const data::Column& c = ds.column(f);
    if (c.is_missing(row)) {
      key.push_back(1.0);  // missing marker
      key.push_back(0.0);
    } else {
      key.push_back(0.0);
      key.push_back(c.raw()[row]);
    }
  }
  return key;
}

}  // namespace

IndiscernibilityRelation::IndiscernibilityRelation(const data::Dataset& ds,
                                                   std::vector<std::size_t> features)
    : features_(std::move(features)) {
  ds.validate();
  IOTML_CHECK(ds.rows() > 0, "IndiscernibilityRelation: empty dataset");
  for (std::size_t f : features_) {
    IOTML_CHECK(f < ds.num_columns(), "IndiscernibilityRelation: feature out of range");
  }

  const std::size_t n = ds.rows();
  class_of_.resize(n);
  std::map<std::vector<double>, std::size_t> key_to_class;
  for (std::size_t r = 0; r < n; ++r) {
    auto key = row_key(ds, features_, r);
    auto [it, inserted] = key_to_class.try_emplace(std::move(key), classes_.size());
    if (inserted) classes_.emplace_back();
    class_of_[r] = it->second;
    classes_[it->second].push_back(r);
  }
}

std::size_t IndiscernibilityRelation::class_of(std::size_t row) const {
  IOTML_CHECK(row < class_of_.size(), "IndiscernibilityRelation::class_of: row out of range");
  return class_of_[row];
}

comb::SetPartition IndiscernibilityRelation::to_partition() const {
  std::vector<int> assignment(class_of_.size());
  for (std::size_t r = 0; r < class_of_.size(); ++r) {
    assignment[r] = static_cast<int>(class_of_[r]);
  }
  return comb::SetPartition::from_assignment(assignment);
}

// ---- Approximations ----------------------------------------------------------

double Approximation::accuracy_elements() const {
  if (upper_rows.empty()) return 1.0;
  return static_cast<double>(lower_rows.size()) / static_cast<double>(upper_rows.size());
}

double Approximation::accuracy_granules() const {
  if (upper_granules == 0) return 1.0;
  return static_cast<double>(lower_granules) / static_cast<double>(upper_granules);
}

double Approximation::quality() const {
  if (universe_size == 0) return 0.0;
  return static_cast<double>(lower_rows.size()) / static_cast<double>(universe_size);
}

Approximation approximate(const IndiscernibilityRelation& rel,
                          const std::vector<bool>& concept_mask) {
  IOTML_CHECK(concept_mask.size() == rel.num_rows(),
              "approximate: concept mask size mismatch");
  Approximation out;
  out.universe_size = rel.num_rows();
  for (const auto& granule : rel.classes()) {
    std::size_t inside = 0;
    for (std::size_t r : granule) {
      if (concept_mask[r]) ++inside;
    }
    if (inside == granule.size()) {
      ++out.lower_granules;
      out.lower_rows.insert(out.lower_rows.end(), granule.begin(), granule.end());
    }
    if (inside > 0) {
      ++out.upper_granules;
      out.upper_rows.insert(out.upper_rows.end(), granule.begin(), granule.end());
    }
  }
  std::sort(out.lower_rows.begin(), out.lower_rows.end());
  std::sort(out.upper_rows.begin(), out.upper_rows.end());
  return out;
}

Approximation approximate_label(const IndiscernibilityRelation& rel,
                                const std::vector<int>& labels, int label_value) {
  IOTML_CHECK(labels.size() == rel.num_rows(), "approximate_label: label size mismatch");
  std::vector<bool> mask(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) mask[i] = labels[i] == label_value;
  return approximate(rel, mask);
}

double dependency_degree(const IndiscernibilityRelation& rel,
                         const std::vector<int>& labels) {
  IOTML_CHECK(labels.size() == rel.num_rows(), "dependency_degree: label size mismatch");
  std::size_t positive = 0;
  for (const auto& granule : rel.classes()) {
    const int first = labels[granule.front()];
    const bool pure = std::all_of(granule.begin(), granule.end(),
                                  [&](std::size_t r) { return labels[r] == first; });
    if (pure) positive += granule.size();
  }
  return static_cast<double>(positive) / static_cast<double>(rel.num_rows());
}

double partition_entropy(const IndiscernibilityRelation& rel) {
  const double n = static_cast<double>(rel.num_rows());
  double h = 0.0;
  for (const auto& granule : rel.classes()) {
    const double p = static_cast<double>(granule.size()) / n;
    h -= p * std::log(p);
  }
  return h;
}

double conditional_entropy(const IndiscernibilityRelation& rel,
                           const std::vector<int>& labels) {
  IOTML_CHECK(labels.size() == rel.num_rows(), "conditional_entropy: label size mismatch");
  const double n = static_cast<double>(rel.num_rows());
  double h = 0.0;
  for (const auto& granule : rel.classes()) {
    std::map<int, std::size_t> counts;
    for (std::size_t r : granule) ++counts[labels[r]];
    double h_granule = 0.0;
    for (const auto& [label, count] : counts) {
      const double p = static_cast<double>(count) / static_cast<double>(granule.size());
      h_granule -= p * std::log(p);
    }
    h += (static_cast<double>(granule.size()) / n) * h_granule;
  }
  return h;
}

// ---- Variable-precision rough sets ----------------------------------------------

Approximation approximate_beta(const IndiscernibilityRelation& rel,
                               const std::vector<bool>& concept_mask, double beta) {
  IOTML_CHECK(concept_mask.size() == rel.num_rows(),
              "approximate_beta: concept mask size mismatch");
  IOTML_CHECK(beta > 0.5 && beta <= 1.0, "approximate_beta: beta must be in (0.5, 1]");
  Approximation out;
  out.universe_size = rel.num_rows();
  for (const auto& granule : rel.classes()) {
    std::size_t inside = 0;
    for (std::size_t r : granule) {
      if (concept_mask[r]) ++inside;
    }
    const double share =
        static_cast<double>(inside) / static_cast<double>(granule.size());
    if (share >= beta - 1e-12) {
      ++out.lower_granules;
      out.lower_rows.insert(out.lower_rows.end(), granule.begin(), granule.end());
    }
    if (share > 1.0 - beta + 1e-12) {
      ++out.upper_granules;
      out.upper_rows.insert(out.upper_rows.end(), granule.begin(), granule.end());
    }
  }
  std::sort(out.lower_rows.begin(), out.lower_rows.end());
  std::sort(out.upper_rows.begin(), out.upper_rows.end());
  return out;
}

Approximation approximate_label_beta(const IndiscernibilityRelation& rel,
                                     const std::vector<int>& labels, int label_value,
                                     double beta) {
  IOTML_CHECK(labels.size() == rel.num_rows(),
              "approximate_label_beta: label size mismatch");
  std::vector<bool> mask(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) mask[i] = labels[i] == label_value;
  return approximate_beta(rel, mask, beta);
}

double dependency_degree_beta(const IndiscernibilityRelation& rel,
                              const std::vector<int>& labels, double beta) {
  IOTML_CHECK(labels.size() == rel.num_rows(),
              "dependency_degree_beta: label size mismatch");
  IOTML_CHECK(beta > 0.5 && beta <= 1.0,
              "dependency_degree_beta: beta must be in (0.5, 1]");
  std::size_t positive = 0;
  for (const auto& granule : rel.classes()) {
    std::map<int, std::size_t> counts;
    for (std::size_t r : granule) ++counts[labels[r]];
    std::size_t majority = 0;
    for (const auto& [label, count] : counts) majority = std::max(majority, count);
    const double share =
        static_cast<double>(majority) / static_cast<double>(granule.size());
    if (share >= beta - 1e-12) positive += granule.size();
  }
  return static_cast<double>(positive) / static_cast<double>(rel.num_rows());
}

// ---- Dynamic K selection -------------------------------------------------------

namespace {

double score_subset(const data::Dataset& ds, const std::vector<std::size_t>& subset,
                    KScore score) {
  IndiscernibilityRelation rel(ds, subset);
  switch (score) {
    case KScore::kMeanAccuracy: {
      double total = 0.0;
      const std::size_t k = ds.num_classes();
      for (std::size_t c = 0; c < k; ++c) {
        total += approximate_label(rel, ds.labels(), static_cast<int>(c))
                     .accuracy_elements();
      }
      return k == 0 ? 0.0 : total / static_cast<double>(k);
    }
    case KScore::kDependency:
      return dependency_degree(rel, ds.labels());
    case KScore::kNegConditionalEntropy:
      return -conditional_entropy(rel, ds.labels());
  }
  throw InternalError("score_subset: unknown KScore");
}

void enumerate_subsets(std::size_t num_features, std::size_t max_size,
                       const std::function<void(const std::vector<std::size_t>&)>& visit) {
  std::vector<std::size_t> subset;
  std::function<void(std::size_t)> recurse = [&](std::size_t next) {
    if (!subset.empty()) visit(subset);
    if (subset.size() == max_size) return;
    for (std::size_t f = next; f < num_features; ++f) {
      subset.push_back(f);
      recurse(f + 1);
      subset.pop_back();
    }
  };
  recurse(0);
}

}  // namespace

KSelection select_k(const data::Dataset& ds, std::size_t max_size, KScore score) {
  ds.validate();
  IOTML_CHECK(ds.has_labels(), "select_k: dataset must be labeled (benchmark concepts)");
  IOTML_CHECK(max_size >= 1, "select_k: max_size must be >= 1");
  IOTML_CHECK(ds.num_columns() >= 1, "select_k: dataset has no features");
  IOTML_CHECK(ds.num_columns() <= 24, "select_k: too many features for exhaustive search");

  KSelection best;
  best.score = -std::numeric_limits<double>::infinity();
  enumerate_subsets(ds.num_columns(), std::min(max_size, ds.num_columns()),
                    [&](const std::vector<std::size_t>& subset) {
                      ++best.evaluated_subsets;
                      const double s = score_subset(ds, subset, score);
                      const bool better =
                          s > best.score + 1e-12 ||
                          (std::fabs(s - best.score) <= 1e-12 &&
                           (subset.size() < best.features.size() ||
                            (subset.size() == best.features.size() &&
                             subset < best.features)));
                      if (better) {
                        best.score = s;
                        best.features = subset;
                      }
                    });
  return best;
}

std::vector<std::vector<std::size_t>> find_reducts(const data::Dataset& ds) {
  ds.validate();
  IOTML_CHECK(ds.has_labels(), "find_reducts: dataset must be labeled");
  IOTML_CHECK(ds.num_columns() >= 1 && ds.num_columns() <= 20,
              "find_reducts: feature count must be in [1, 20]");

  std::vector<std::size_t> all(ds.num_columns());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double full_gamma =
      dependency_degree(IndiscernibilityRelation(ds, all), ds.labels());

  // Collect subsets preserving gamma, then keep the minimal ones.
  std::vector<std::vector<std::size_t>> preserving;
  enumerate_subsets(ds.num_columns(), ds.num_columns(),
                    [&](const std::vector<std::size_t>& subset) {
                      const double gamma = dependency_degree(
                          IndiscernibilityRelation(ds, subset), ds.labels());
                      if (gamma >= full_gamma - 1e-12) preserving.push_back(subset);
                    });

  std::vector<std::vector<std::size_t>> reducts;
  for (const auto& candidate : preserving) {
    bool minimal = true;
    for (const auto& other : preserving) {
      if (other.size() < candidate.size() &&
          std::includes(candidate.begin(), candidate.end(), other.begin(), other.end())) {
        minimal = false;
        break;
      }
    }
    if (minimal) reducts.push_back(candidate);
  }
  return reducts;
}

}  // namespace iotml::rough
