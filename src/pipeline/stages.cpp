#include "pipeline/stages.hpp"

#include "obs/clock.hpp"
#include "util/error.hpp"

namespace iotml::pipeline {

namespace {

/// Fill the bookkeeping fields shared by all concrete stages.
template <typename Body>
StageReport run_stage(const Stage& stage, data::Dataset& ds, Body&& body) {
  StageReport report;
  report.stage_name = stage.name();
  report.player = stage.player();
  report.tier = stage.tier();
  report.rows_in = ds.rows();
  report.missing_rate_in = ds.missing_rate();
  const std::int64_t start_us = obs::now_us();
  report.cost = body();
  // det-sanctioned: wall_time_us feeds obs spans only; deterministic artifacts never serialize it
  report.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report.rows_out = ds.rows();
  report.columns_out = ds.num_columns();
  report.missing_rate_out = ds.missing_rate();
  return report;
}

}  // namespace

OutlierStage::OutlierStage(double threshold, std::string player)
    : threshold_(threshold), player_(std::move(player)) {
  IOTML_CHECK(threshold > 0.0, "OutlierStage: threshold must be positive");
}

StageReport OutlierStage::apply(data::Dataset& ds, Rng&) {
  return run_stage(*this, ds, [&] {
    std::size_t suppressed = 0;
    for (std::size_t f = 0; f < ds.num_columns(); ++f) {
      if (ds.column(f).type() != data::ColumnType::kNumeric) continue;
      suppressed +=
          suppress_outliers(ds, f, detect_outliers_hampel(ds.column(f), threshold_));
    }
    return 0.5 + 0.01 * static_cast<double>(suppressed);
  });
}

ImputeStage::ImputeStage(ImputeStrategy strategy, std::string player)
    : strategy_(strategy), player_(std::move(player)) {}

std::string ImputeStage::name() const {
  return "impute(" + impute_strategy_name(strategy_) + ")";
}

StageReport ImputeStage::apply(data::Dataset& ds, Rng& rng) {
  return run_stage(*this, ds, [&] {
    const ImputeReport r = impute(ds, strategy_, rng);
    // kNN imputation is an order of magnitude costlier than the others.
    const double unit = strategy_ == ImputeStrategy::kKnn ? 0.02 : 0.002;
    return 1.0 + unit * static_cast<double>(r.cells_imputed);
  });
}

NormalizeStage::NormalizeStage(NormalizeKind kind, std::string player)
    : kind_(kind), player_(std::move(player)) {}

std::string NormalizeStage::name() const {
  return kind_ == NormalizeKind::kMinMax ? "normalize(minmax)" : "normalize(zscore)";
}

StageReport NormalizeStage::apply(data::Dataset& ds, Rng&) {
  return run_stage(*this, ds, [&] {
    normalize(ds, kind_);
    return 0.5;
  });
}

PrivacyStage::PrivacyStage(PrivacyParams params, std::string player)
    : params_(params), player_(std::move(player)) {
  IOTML_CHECK(params.epsilon > 0.0, "PrivacyStage: epsilon must be positive");
}

StageReport PrivacyStage::apply(data::Dataset& ds, Rng& rng) {
  return run_stage(*this, ds, [&] {
    const PrivacyReport r = privatize(ds, params_, rng);
    return 0.5 + 1e-4 * static_cast<double>(r.numeric_cells_noised +
                                            r.categorical_cells_flipped);
  });
}

FeatureSelectStage::FeatureSelectStage(std::size_t keep, std::string player)
    : keep_(keep), player_(std::move(player)) {
  IOTML_CHECK(keep >= 1, "FeatureSelectStage: keep must be >= 1");
}

std::string FeatureSelectStage::name() const {
  return "feature-select(MI,top" + std::to_string(keep_) + ")";
}

StageReport FeatureSelectStage::apply(data::Dataset& ds, Rng&) {
  return run_stage(*this, ds, [&] {
    ds = ds.select_columns(select_by_mutual_information(ds, keep_));
    return 1.0;
  });
}

}  // namespace iotml::pipeline
