#include "pipeline/preparation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace iotml::pipeline {

namespace {

using data::Column;
using data::ColumnType;
using data::Dataset;

std::vector<double> present_values(const Column& col) {
  std::vector<double> out;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (!col.is_missing(r)) out.push_back(col.raw()[r]);
  }
  return out;
}

double median_of(std::vector<double> values) {
  IOTML_CHECK(!values.empty(), "median_of: empty");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

/// Mode category label of a categorical column (ties -> first interned).
std::string mode_label(const Column& col) {
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (!col.is_missing(r)) ++counts[col.category(r)];
  }
  IOTML_CHECK(!counts.empty(), "mode_label: all cells missing");
  std::size_t best = counts.begin()->first;
  std::size_t best_count = 0;
  for (const auto& [cat, count] : counts) {
    if (count > best_count) {
      best = cat;
      best_count = count;
    }
  }
  return col.categories()[best];
}

std::size_t impute_constant_numeric(Column& col, double value) {
  std::size_t filled = 0;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (col.is_missing(r)) {
      col.set_numeric(r, value);
      ++filled;
    }
  }
  return filled;
}

std::size_t impute_mode_categorical(Column& col) {
  const std::string label = mode_label(col);
  std::size_t filled = 0;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (col.is_missing(r)) {
      col.set_category(r, label);
      ++filled;
    }
  }
  return filled;
}

std::size_t impute_locf(Column& col) {
  std::size_t filled = 0;
  bool have_last = false;
  double last = 0.0;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (col.is_missing(r)) {
      if (have_last) {
        col.set_numeric(r, last);
        ++filled;
      }
    } else {
      last = col.numeric(r);
      have_last = true;
    }
  }
  // Leading gap: backfill with the first observation if any.
  if (have_last) {
    double first = 0.0;
    bool found = false;
    for (std::size_t r = 0; r < col.size() && !found; ++r) {
      if (!col.is_missing(r)) {
        first = col.numeric(r);
        found = true;
      }
    }
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (col.is_missing(r)) {
        col.set_numeric(r, first);
        ++filled;
      } else {
        break;
      }
    }
  }
  return filled;
}

std::size_t impute_linear(Column& col) {
  std::size_t filled = 0;
  const std::size_t n = col.size();
  std::size_t r = 0;
  std::ptrdiff_t prev = -1;  // last present row
  while (r < n) {
    if (!col.is_missing(r)) {
      prev = static_cast<std::ptrdiff_t>(r);
      ++r;
      continue;
    }
    // Find the next present row.
    std::size_t next = r;
    while (next < n && col.is_missing(next)) ++next;
    if (prev >= 0 && next < n) {
      const double v0 = col.numeric(static_cast<std::size_t>(prev));
      const double v1 = col.numeric(next);
      const double span = static_cast<double>(next - static_cast<std::size_t>(prev));
      for (std::size_t g = r; g < next; ++g) {
        const double alpha = static_cast<double>(g - static_cast<std::size_t>(prev)) / span;
        col.set_numeric(g, v0 + alpha * (v1 - v0));
        ++filled;
      }
    } else if (prev >= 0) {  // trailing gap: extend last value
      for (std::size_t g = r; g < n; ++g) {
        col.set_numeric(g, col.numeric(static_cast<std::size_t>(prev)));
        ++filled;
      }
    } else if (next < n) {  // leading gap: backfill
      for (std::size_t g = r; g < next; ++g) {
        col.set_numeric(g, col.numeric(next));
        ++filled;
      }
    }
    r = next;
  }
  return filled;
}

std::size_t impute_hot_deck(Column& col, Rng& rng) {
  const std::vector<double> donors = present_values(col);
  if (donors.empty()) return 0;
  std::size_t filled = 0;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (col.is_missing(r)) {
      col.set_numeric(r, donors[rng.index(donors.size())]);
      ++filled;
    }
  }
  return filled;
}

/// kNN imputation: distance over the other numeric columns (range-scaled,
/// missing-skipped); fill with the mean of the k nearest donors that have the
/// target present.
std::size_t impute_knn_column(Dataset& ds, std::size_t target, std::size_t k) {
  Column& col = ds.column(target);
  const std::size_t n = ds.rows();

  std::vector<double> range(ds.num_columns(), 1.0);
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    const Column& c = ds.column(f);
    if (c.type() != ColumnType::kNumeric) continue;
    double lo = std::numeric_limits<double>::infinity(), hi = -lo;
    for (std::size_t r = 0; r < n; ++r) {
      if (c.is_missing(r)) continue;
      lo = std::min(lo, c.numeric(r));
      hi = std::max(hi, c.numeric(r));
    }
    if (hi > lo) range[f] = hi - lo;
  }

  auto distance = [&](std::size_t a, std::size_t b) {
    double total = 0.0;
    std::size_t comparable = 0;
    for (std::size_t f = 0; f < ds.num_columns(); ++f) {
      if (f == target) continue;
      const Column& c = ds.column(f);
      if (c.is_missing(a) || c.is_missing(b)) continue;
      ++comparable;
      if (c.type() == ColumnType::kNumeric) {
        const double d = (c.numeric(a) - c.numeric(b)) / range[f];
        total += d * d;
      } else {
        total += c.category(a) == c.category(b) ? 0.0 : 1.0;
      }
    }
    if (comparable == 0) return std::numeric_limits<double>::infinity();
    return total / static_cast<double>(comparable);
  };

  // Snapshot missing rows first: donors must come from originally-present cells.
  std::vector<std::size_t> holes, donors;
  for (std::size_t r = 0; r < n; ++r) {
    (col.is_missing(r) ? holes : donors).push_back(r);
  }
  if (donors.empty()) return 0;

  std::size_t filled = 0;
  for (std::size_t hole : holes) {
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(donors.size());
    for (std::size_t d : donors) scored.emplace_back(distance(hole, d), d);
    const std::size_t kk = std::min(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(kk),
                      scored.end());
    double sum = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < kk; ++i) {
      if (std::isinf(scored[i].first)) break;
      sum += col.numeric(scored[i].second);
      ++used;
    }
    if (used == 0) {  // no comparable donor: fall back to column mean
      double mean = 0.0;
      for (std::size_t d : donors) mean += col.numeric(d);
      sum = mean;
      used = donors.size();
    }
    col.set_numeric(hole, sum / static_cast<double>(used));
    ++filled;
  }
  return filled;
}

}  // namespace

ImputeReport impute(Dataset& ds, ImputeStrategy strategy, Rng& rng, std::size_t knn_k) {
  ds.validate();
  IOTML_CHECK(knn_k >= 1, "impute: knn_k must be >= 1");
  ImputeReport report;

  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    Column& col = ds.column(f);
    const std::size_t missing_before = col.missing_count();
    if (missing_before == 0) continue;

    if (col.type() == ColumnType::kCategorical) {
      // Order-based strategies don't apply; use the mode when any value exists.
      if ((strategy == ImputeStrategy::kMean || strategy == ImputeStrategy::kMedian ||
           strategy == ImputeStrategy::kHotDeck || strategy == ImputeStrategy::kKnn) &&
          missing_before < col.size()) {
        report.cells_imputed += impute_mode_categorical(col);
      }
      report.cells_unresolved += col.missing_count();
      continue;
    }

    if (missing_before == col.size()) {  // nothing to learn from
      report.cells_unresolved += missing_before;
      continue;
    }

    std::size_t filled = 0;
    switch (strategy) {
      case ImputeStrategy::kMean: {
        const auto vals = present_values(col);
        double mean = 0.0;
        for (double v : vals) mean += v;
        filled = impute_constant_numeric(col, mean / static_cast<double>(vals.size()));
        break;
      }
      case ImputeStrategy::kMedian:
        filled = impute_constant_numeric(col, median_of(present_values(col)));
        break;
      case ImputeStrategy::kLocf:
        filled = impute_locf(col);
        break;
      case ImputeStrategy::kLinear:
        filled = impute_linear(col);
        break;
      case ImputeStrategy::kHotDeck:
        filled = impute_hot_deck(col, rng);
        break;
      case ImputeStrategy::kKnn:
        filled = impute_knn_column(ds, f, knn_k);
        break;
    }
    report.cells_imputed += filled;
    report.cells_unresolved += col.missing_count();
  }
  return report;
}

std::string impute_strategy_name(ImputeStrategy s) {
  switch (s) {
    case ImputeStrategy::kMean: return "mean";
    case ImputeStrategy::kMedian: return "median";
    case ImputeStrategy::kLocf: return "locf";
    case ImputeStrategy::kLinear: return "linear";
    case ImputeStrategy::kHotDeck: return "hot-deck";
    case ImputeStrategy::kKnn: return "knn";
  }
  return "?";
}

std::vector<bool> detect_outliers_zscore(const Column& col, double threshold) {
  IOTML_CHECK(col.type() == ColumnType::kNumeric, "detect_outliers_zscore: numeric only");
  IOTML_CHECK(threshold > 0.0, "detect_outliers_zscore: threshold must be positive");
  const auto vals = present_values(col);
  std::vector<bool> flags(col.size(), false);
  if (vals.size() < 3) return flags;
  double mean = 0.0;
  for (double v : vals) mean += v;
  mean /= static_cast<double>(vals.size());
  double var = 0.0;
  for (double v : vals) var += (v - mean) * (v - mean);
  var /= static_cast<double>(vals.size() - 1);
  const double std_dev = std::sqrt(var);
  if (std_dev < 1e-12) return flags;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (!col.is_missing(r) && std::fabs(col.numeric(r) - mean) > threshold * std_dev) {
      flags[r] = true;
    }
  }
  return flags;
}

std::vector<bool> detect_outliers_hampel(const Column& col, double threshold) {
  IOTML_CHECK(col.type() == ColumnType::kNumeric, "detect_outliers_hampel: numeric only");
  IOTML_CHECK(threshold > 0.0, "detect_outliers_hampel: threshold must be positive");
  const auto vals = present_values(col);
  std::vector<bool> flags(col.size(), false);
  if (vals.size() < 3) return flags;
  const double med = median_of(vals);
  std::vector<double> deviations;
  deviations.reserve(vals.size());
  for (double v : vals) deviations.push_back(std::fabs(v - med));
  const double mad = median_of(deviations);
  const double scale = 1.4826 * mad;
  if (scale < 1e-12) return flags;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (!col.is_missing(r) && std::fabs(col.numeric(r) - med) > threshold * scale) {
      flags[r] = true;
    }
  }
  return flags;
}

std::size_t suppress_outliers(Dataset& ds, std::size_t column,
                              const std::vector<bool>& flags) {
  Column& col = ds.column(column);
  IOTML_CHECK(flags.size() == col.size(), "suppress_outliers: flag size mismatch");
  std::size_t suppressed = 0;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (flags[r] && !col.is_missing(r)) {
      col.set_missing(r);
      ++suppressed;
    }
  }
  return suppressed;
}

void normalize(Dataset& ds, NormalizeKind kind) {
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    Column& col = ds.column(f);
    if (col.type() != ColumnType::kNumeric) continue;
    const auto vals = present_values(col);
    if (vals.empty()) continue;

    if (kind == NormalizeKind::kMinMax) {
      const auto [lo_it, hi_it] = std::minmax_element(vals.begin(), vals.end());
      const double lo = *lo_it, hi = *hi_it;
      const double span = hi > lo ? hi - lo : 1.0;
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.is_missing(r)) col.set_numeric(r, (col.numeric(r) - lo) / span);
      }
    } else {
      double mean = 0.0;
      for (double v : vals) mean += v;
      mean /= static_cast<double>(vals.size());
      double var = 0.0;
      for (double v : vals) var += (v - mean) * (v - mean);
      var = vals.size() > 1 ? var / static_cast<double>(vals.size() - 1) : 0.0;
      const double std_dev = var > 1e-24 ? std::sqrt(var) : 1.0;
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.is_missing(r)) col.set_numeric(r, (col.numeric(r) - mean) / std_dev);
      }
    }
  }
}

}  // namespace iotml::pipeline
