#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace iotml::pipeline {

/// Ethics/legal constraints as modular perturbation sources (Section I.B:
/// "one can also consider and investigate ethics and legal concerns as
/// modular sources of perturbation"). The concrete instance: local
/// differential-privacy-style noise added before data leaves the device
/// tier, with the privacy budget epsilon trading off against downstream
/// analytics quality.

struct PrivacyParams {
  /// Privacy budget: smaller = more noise = stronger privacy. Laplace noise
  /// with scale sensitivity/epsilon per numeric cell.
  double epsilon = 1.0;
  /// Per-column sensitivity; when empty, each column's observed range is
  /// used (the standard bounded-domain assumption).
  std::vector<double> sensitivity;
  /// Categorical columns: probability of randomized response (cell replaced
  /// by a uniformly random category) derived from epsilon when true.
  bool randomize_categories = true;
};

struct PrivacyReport {
  std::size_t numeric_cells_noised = 0;
  std::size_t categorical_cells_flipped = 0;
  double laplace_scale_mean = 0.0;  ///< mean noise scale actually applied
};

/// Draw from Laplace(0, scale).
double laplace_noise(double scale, Rng& rng);

/// Perturb a dataset in place under the given budget. Missing cells stay
/// missing; labels are never touched (they are the analyst's ground truth in
/// our experiments, not part of the published record).
PrivacyReport privatize(data::Dataset& ds, const PrivacyParams& params, Rng& rng);

/// The randomized-response keep-probability for k categories at budget
/// epsilon: p(keep) = e^eps / (e^eps + k - 1).
double randomized_response_keep_probability(double epsilon, std::size_t categories);

}  // namespace iotml::pipeline
