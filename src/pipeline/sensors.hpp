#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace iotml::pipeline {

/// Ground-truth physical signal: value as a function of time (seconds).
using Signal = std::function<double(double)>;

/// Standard synthetic field signals.
Signal sine_signal(double mean, double amplitude, double period_s, double phase = 0.0);
Signal trend_signal(double start, double slope_per_s);
Signal composite_signal(std::vector<Signal> parts);  // sum of parts

/// Behavioural model of one peripheral sensing device (the paper's periphery:
/// sensors are "rather far from an ideal statistical measurement process").
struct SensorSpec {
  std::string name = "sensor";
  double period_s = 1.0;        ///< nominal sampling period
  double clock_jitter_s = 0.0;  ///< uniform timestamp jitter (+/-)
  double noise_std = 0.0;       ///< additive Gaussian measurement noise
  double drift_per_s = 0.0;     ///< linear calibration drift
  double dropout_prob = 0.0;    ///< per-sample probability of a lost reading
  double bias = 0.0;            ///< constant offset (an adversarial/untrusted
                                ///< sensor sets this without telling anyone)
  double outlier_prob = 0.0;    ///< probability of a gross outlier reading
  double outlier_scale = 10.0;  ///< outlier magnitude in noise_std units
};

/// One timestamped measurement.
struct Reading {
  double timestamp = 0.0;
  double value = 0.0;
};

/// The output of one device over an acquisition window.
struct SensorStream {
  std::string sensor_name;
  std::vector<Reading> readings;  ///< timestamp-ascending
  std::size_t dropped = 0;        ///< readings lost to dropout
};

/// Simulate one device sampling `truth` over [0, duration_s).
SensorStream simulate_sensor(const SensorSpec& spec, const Signal& truth,
                             double duration_s, Rng& rng);

/// A field of devices measuring (possibly shared) quantities. This is the
/// "sand-dust of heterogeneously distributed sensors not all of which are
/// operational at any given time" of the paper's introduction.
struct FieldQuantity {
  std::string name;  ///< e.g. "temperature"
  Signal truth;
  std::vector<SensorSpec> sensors;  ///< devices measuring this quantity
};

struct FieldAcquisition {
  std::vector<SensorStream> streams;
  double duration_s = 0.0;
  /// Map stream index -> quantity name (several sensors may share one).
  std::vector<std::string> quantity_of_stream;
};

/// Run every device of every quantity for `duration_s` seconds.
FieldAcquisition acquire_field(const std::vector<FieldQuantity>& field,
                               double duration_s, Rng& rng);

}  // namespace iotml::pipeline
