#include "pipeline/stage.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::pipeline {

std::string tier_name(Tier t) {
  switch (t) {
    case Tier::kDevice: return "device";
    case Tier::kEdge: return "edge";
    case Tier::kCore: return "core";
  }
  return "?";
}

Tier tier_from_name(std::string_view name) {
  if (name == "device") return Tier::kDevice;
  if (name == "edge") return Tier::kEdge;
  if (name == "core") return Tier::kCore;
  throw InvalidArgument("tier_from_name: unknown tier '" + std::string(name) + "'");
}

LambdaStage::LambdaStage(std::string name, Fn fn, std::string player, Tier tier)
    : name_(std::move(name)), fn_(std::move(fn)), player_(std::move(player)), tier_(tier) {
  IOTML_CHECK(fn_ != nullptr, "LambdaStage: null function");
  IOTML_CHECK(!name_.empty(), "LambdaStage: empty name");
}

StageReport LambdaStage::apply(data::Dataset& ds, Rng& rng) {
  StageReport report;
  report.stage_name = name_;
  report.player = player_;
  report.tier = tier_;
  report.rows_in = ds.rows();
  report.missing_rate_in = ds.missing_rate();
  const std::int64_t start_us = obs::now_us();
  report.cost = fn_(ds, rng);
  // det-sanctioned: wall_time_us feeds obs spans only; deterministic artifacts never serialize it
  report.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report.rows_out = ds.rows();
  report.columns_out = ds.num_columns();
  report.missing_rate_out = ds.missing_rate();
  return report;
}

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  IOTML_CHECK(stage != nullptr, "Pipeline::add: null stage");
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::add(std::string name, LambdaStage::Fn fn, std::string player,
                        Tier tier) {
  return add(std::make_unique<LambdaStage>(std::move(name), std::move(fn),
                                           std::move(player), tier));
}

data::Dataset Pipeline::run(data::Dataset input, Rng& rng) {
  reports_.clear();
  obs::Span run_span("pipeline.run", "pipeline");
  for (const auto& stage : stages_) {
    obs::Span span("stage:" + stage->name(), "pipeline");
    const std::int64_t start_us = obs::now_us();
    StageReport report = stage->apply(input, rng);
    // Concrete iotml stages self-measure their body; keep that tighter
    // reading and only fall back to the around-the-call measurement for
    // third-party stages that left the field 0.
    if (report.wall_time_us == 0) {
      // det-sanctioned: wall_time_us feeds obs spans only; deterministic artifacts omit it
      report.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
    }
    span.arg("player", report.player);
    span.arg("tier", tier_name(report.tier));
    span.arg("rows_in", static_cast<std::uint64_t>(report.rows_in));
    span.arg("rows_out", static_cast<std::uint64_t>(report.rows_out));
    span.arg("columns_out", static_cast<std::uint64_t>(report.columns_out));
    span.arg("missing_rate_in", report.missing_rate_in);
    span.arg("missing_rate_out", report.missing_rate_out);
    span.arg("cost", report.cost);
    obs::registry().counter("pipeline.stages_run").add();
    obs::registry().histogram("pipeline.stage_wall_us").record(
        static_cast<double>(report.wall_time_us));
    reports_.push_back(std::move(report));
  }
  run_span.arg("stages", static_cast<std::uint64_t>(stages_.size()));
  run_span.arg("total_cost", total_cost());
  return input;
}

std::vector<std::unique_ptr<Stage>> Pipeline::take_stages() {
  reports_.clear();
  std::vector<std::unique_ptr<Stage>> out = std::move(stages_);
  stages_.clear();
  return out;
}

double Pipeline::total_cost() const {
  double total = 0.0;
  for (const StageReport& r : reports_) total += r.cost;
  return total;
}

double Pipeline::player_cost(const std::string& player) const {
  double total = 0.0;
  for (const StageReport& r : reports_) {
    if (r.player == player) total += r.cost;
  }
  return total;
}

}  // namespace iotml::pipeline
