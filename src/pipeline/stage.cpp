#include "pipeline/stage.hpp"

#include "util/error.hpp"

namespace iotml::pipeline {

std::string tier_name(Tier t) {
  switch (t) {
    case Tier::kDevice: return "device";
    case Tier::kEdge: return "edge";
    case Tier::kCore: return "core";
  }
  return "?";
}

LambdaStage::LambdaStage(std::string name, Fn fn, std::string player, Tier tier)
    : name_(std::move(name)), fn_(std::move(fn)), player_(std::move(player)), tier_(tier) {
  IOTML_CHECK(fn_ != nullptr, "LambdaStage: null function");
  IOTML_CHECK(!name_.empty(), "LambdaStage: empty name");
}

StageReport LambdaStage::apply(data::Dataset& ds, Rng& rng) {
  StageReport report;
  report.stage_name = name_;
  report.player = player_;
  report.tier = tier_;
  report.rows_in = ds.rows();
  report.missing_rate_in = ds.missing_rate();
  report.cost = fn_(ds, rng);
  report.rows_out = ds.rows();
  report.columns_out = ds.num_columns();
  report.missing_rate_out = ds.missing_rate();
  return report;
}

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  IOTML_CHECK(stage != nullptr, "Pipeline::add: null stage");
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::add(std::string name, LambdaStage::Fn fn, std::string player,
                        Tier tier) {
  return add(std::make_unique<LambdaStage>(std::move(name), std::move(fn),
                                           std::move(player), tier));
}

data::Dataset Pipeline::run(data::Dataset input, Rng& rng) {
  reports_.clear();
  for (const auto& stage : stages_) {
    reports_.push_back(stage->apply(input, rng));
  }
  return input;
}

double Pipeline::total_cost() const {
  double total = 0.0;
  for (const StageReport& r : reports_) total += r.cost;
  return total;
}

double Pipeline::player_cost(const std::string& player) const {
  double total = 0.0;
  for (const StageReport& r : reports_) {
    if (r.player == player) total += r.cost;
  }
  return total;
}

}  // namespace iotml::pipeline
