#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace iotml::pipeline {

/// First-order (Gaussian) uncertainty: a value with a variance. The paper's
/// Section IV argues the preprocessing player discards exactly this
/// information; this type is what "keeping track of the uncertainty
/// associated to the reconstructed data" costs.
struct UncertainValue {
  double mean = 0.0;
  double variance = 0.0;

  UncertainValue() = default;
  UncertainValue(double m, double v);

  double stddev() const;

  /// Independent-variable arithmetic (first-order propagation).
  UncertainValue operator+(const UncertainValue& other) const;
  UncertainValue operator-(const UncertainValue& other) const;
  UncertainValue scaled(double factor) const;

  /// Product of independent variables: var = va*vb + va*mb^2 + vb*ma^2
  /// (exact for independent inputs).
  UncertainValue operator*(const UncertainValue& other) const;
};

/// Mean of independent uncertain values: variance shrinks as sum(var)/n^2.
UncertainValue uncertain_mean(const std::vector<UncertainValue>& values);

/// Inverse-variance weighted fusion of independent estimates of the same
/// quantity (the optimal way to merge redundant sensors): variance
/// 1/sum(1/var_i).
UncertainValue fuse(const std::vector<UncertainValue>& estimates);

/// Per-cell variance map running parallel to a Dataset (columns x rows).
/// Stages annotate the variance they introduce (sensor noise at acquisition,
/// inflated variance for imputed cells, scaling through normalization).
class UncertaintyMap {
 public:
  UncertaintyMap() = default;
  UncertaintyMap(std::size_t rows, std::size_t cols, double initial_variance = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double variance(std::size_t row, std::size_t col) const;
  void set_variance(std::size_t row, std::size_t col, double variance);
  void scale_column(std::size_t col, double factor);  // variance *= factor^2

  /// Mean variance across all cells (pipeline-quality summary statistic).
  double mean_variance() const;

  /// Mean variance of one column.
  double column_mean_variance(std::size_t col) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> variances_;
};

}  // namespace iotml::pipeline
