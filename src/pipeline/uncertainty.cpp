#include "pipeline/uncertainty.hpp"

#include <cmath>

#include "util/error.hpp"

namespace iotml::pipeline {

UncertainValue::UncertainValue(double m, double v) : mean(m), variance(v) {
  IOTML_CHECK(v >= 0.0, "UncertainValue: variance must be >= 0");
}

double UncertainValue::stddev() const { return std::sqrt(variance); }

UncertainValue UncertainValue::operator+(const UncertainValue& other) const {
  return {mean + other.mean, variance + other.variance};
}

UncertainValue UncertainValue::operator-(const UncertainValue& other) const {
  return {mean - other.mean, variance + other.variance};
}

UncertainValue UncertainValue::scaled(double factor) const {
  return {mean * factor, variance * factor * factor};
}

UncertainValue UncertainValue::operator*(const UncertainValue& other) const {
  const double v = variance * other.variance + variance * other.mean * other.mean +
                   other.variance * mean * mean;
  return {mean * other.mean, v};
}

UncertainValue uncertain_mean(const std::vector<UncertainValue>& values) {
  IOTML_CHECK(!values.empty(), "uncertain_mean: empty input");
  double m = 0.0, v = 0.0;
  for (const UncertainValue& u : values) {
    m += u.mean;
    v += u.variance;
  }
  const double n = static_cast<double>(values.size());
  return {m / n, v / (n * n)};
}

UncertainValue fuse(const std::vector<UncertainValue>& estimates) {
  IOTML_CHECK(!estimates.empty(), "fuse: empty input");
  double weight_total = 0.0, weighted_mean = 0.0;
  for (const UncertainValue& e : estimates) {
    IOTML_CHECK(e.variance > 0.0, "fuse: every estimate needs positive variance");
    const double w = 1.0 / e.variance;
    weight_total += w;
    weighted_mean += w * e.mean;
  }
  return {weighted_mean / weight_total, 1.0 / weight_total};
}

UncertaintyMap::UncertaintyMap(std::size_t rows, std::size_t cols,
                               double initial_variance)
    : rows_(rows), cols_(cols), variances_(rows * cols, initial_variance) {
  IOTML_CHECK(initial_variance >= 0.0, "UncertaintyMap: variance must be >= 0");
}

double UncertaintyMap::variance(std::size_t row, std::size_t col) const {
  IOTML_CHECK(row < rows_ && col < cols_, "UncertaintyMap::variance: out of range");
  return variances_[row * cols_ + col];
}

void UncertaintyMap::set_variance(std::size_t row, std::size_t col, double variance) {
  IOTML_CHECK(row < rows_ && col < cols_, "UncertaintyMap::set_variance: out of range");
  IOTML_CHECK(variance >= 0.0, "UncertaintyMap::set_variance: variance must be >= 0");
  variances_[row * cols_ + col] = variance;
}

void UncertaintyMap::scale_column(std::size_t col, double factor) {
  IOTML_CHECK(col < cols_, "UncertaintyMap::scale_column: out of range");
  for (std::size_t r = 0; r < rows_; ++r) {
    variances_[r * cols_ + col] *= factor * factor;
  }
}

double UncertaintyMap::mean_variance() const {
  if (variances_.empty()) return 0.0;
  double total = 0.0;
  for (double v : variances_) total += v;
  return total / static_cast<double>(variances_.size());
}

double UncertaintyMap::column_mean_variance(std::size_t col) const {
  IOTML_CHECK(col < cols_, "UncertaintyMap::column_mean_variance: out of range");
  IOTML_CHECK(rows_ > 0, "UncertaintyMap::column_mean_variance: empty map");
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) total += variances_[r * cols_ + col];
  return total / static_cast<double>(rows_);
}

}  // namespace iotml::pipeline
