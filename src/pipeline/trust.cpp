#include "pipeline/trust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace iotml::pipeline {

namespace {

double median_inplace(std::vector<double>& values) {
  IOTML_CHECK(!values.empty(), "median_inplace: empty");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

}  // namespace

std::vector<SensorTrustScore> score_sensor_group(
    const data::Dataset& records, const std::vector<std::size_t>& columns) {
  IOTML_CHECK(columns.size() >= 2, "score_sensor_group: need >= 2 sensors");
  for (std::size_t c : columns) {
    IOTML_CHECK(c < records.num_columns(), "score_sensor_group: column out of range");
    IOTML_CHECK(records.column(c).type() == data::ColumnType::kNumeric,
                "score_sensor_group: numeric columns only");
  }

  // Per-record consensus = median of present readings (robust to one liar).
  const std::size_t n = records.rows();
  std::vector<double> consensus(n, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> present;
    for (std::size_t c : columns) {
      if (!records.column(c).is_missing(r)) present.push_back(records.column(c).numeric(r));
    }
    if (present.size() >= 2) consensus[r] = median_inplace(present);
  }

  std::vector<SensorTrustScore> scores;
  std::vector<double> group_noise;
  for (std::size_t c : columns) {
    SensorTrustScore score;
    score.sensor = records.column(c).name();
    std::vector<double> deviations;
    for (std::size_t r = 0; r < n; ++r) {
      if (std::isnan(consensus[r]) || records.column(c).is_missing(r)) continue;
      deviations.push_back(records.column(c).numeric(r) - consensus[r]);
    }
    score.readings_used = deviations.size();
    if (!deviations.empty()) {
      std::vector<double> copy = deviations;
      score.bias_estimate = median_inplace(copy);
      std::vector<double> abs_dev;
      abs_dev.reserve(deviations.size());
      for (double d : deviations) abs_dev.push_back(std::fabs(d - score.bias_estimate));
      score.noise_estimate = 1.4826 * median_inplace(abs_dev);
    }
    group_noise.push_back(score.noise_estimate);
    scores.push_back(std::move(score));
  }

  // Trust: penalize bias in units of the group's typical noise, and excess
  // noise relative to the group median noise.
  std::vector<double> noise_copy = group_noise;
  const double typical_noise = std::max(median_inplace(noise_copy), 1e-9);
  for (SensorTrustScore& score : scores) {
    const double bias_z = std::fabs(score.bias_estimate) / typical_noise;
    const double noise_ratio = score.noise_estimate / typical_noise;
    const double excess_noise = std::max(0.0, noise_ratio - 1.0);
    score.trust = 1.0 / (1.0 + bias_z + excess_noise);
  }
  return scores;
}

std::vector<double> trusted_consensus(const data::Dataset& records,
                                      const std::vector<std::size_t>& columns,
                                      const std::vector<SensorTrustScore>& scores) {
  IOTML_CHECK(columns.size() == scores.size(),
              "trusted_consensus: score count mismatch");
  std::vector<double> out(records.rows(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t r = 0; r < records.rows(); ++r) {
    double weighted = 0.0, weight_total = 0.0;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      const data::Column& col = records.column(columns[i]);
      if (col.is_missing(r)) continue;
      // Debias each reading by its sensor's estimated bias before fusing.
      weighted += scores[i].trust * (col.numeric(r) - scores[i].bias_estimate);
      weight_total += scores[i].trust;
    }
    if (weight_total > 0.0) out[r] = weighted / weight_total;
  }
  return out;
}

}  // namespace iotml::pipeline
