#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace iotml::pipeline {

/// Missing-value imputation strategies (Section IV lists imputation among
/// the most analytics-critical preparation steps). All operate in place on
/// numeric columns; categorical columns are imputed with the mode where the
/// strategy is order-free and left untouched by order-based strategies.
enum class ImputeStrategy {
  kMean,        ///< column mean (mode for categorical)
  kMedian,      ///< column median (mode for categorical)
  kLocf,        ///< last observation carried forward (row order = time order)
  kLinear,      ///< linear interpolation between neighbours in row order
  kHotDeck,     ///< random present donor from the same column
  kKnn          ///< mean of k nearest rows by the other columns
};

struct ImputeReport {
  std::size_t cells_imputed = 0;
  std::size_t cells_unresolved = 0;  ///< stayed missing (e.g. empty column)
};

/// Impute a dataset in place. `knn_k` only matters for kKnn; `rng` only for
/// kHotDeck (pass any seeded Rng otherwise).
ImputeReport impute(data::Dataset& ds, ImputeStrategy strategy, Rng& rng,
                    std::size_t knn_k = 5);

/// Human-readable strategy name (bench output).
std::string impute_strategy_name(ImputeStrategy s);

/// Outlier detection over a numeric column. Returns row flags.
std::vector<bool> detect_outliers_zscore(const data::Column& col, double threshold = 3.0);

/// Hampel identifier: |x - median| > threshold * 1.4826 * MAD.
std::vector<bool> detect_outliers_hampel(const data::Column& col, double threshold = 3.0);

/// Replace flagged cells with missing (so imputation can repair them).
std::size_t suppress_outliers(data::Dataset& ds, std::size_t column,
                              const std::vector<bool>& flags);

/// Normalization of numeric columns, in place.
enum class NormalizeKind { kMinMax, kZScore };
void normalize(data::Dataset& ds, NormalizeKind kind);

}  // namespace iotml::pipeline
