#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace iotml::pipeline {

// ---- Feature selection (data-reduction sub-phase, Section IV) ---------------

/// Indices of numeric columns whose variance (over present cells) is at
/// least `min_variance`, plus all categorical columns.
std::vector<std::size_t> select_by_variance(const data::Dataset& ds, double min_variance);

/// Top-k features by mutual information with the labels (nats). Numeric
/// columns are pre-binned into `bins` equal-width intervals for estimation.
std::vector<std::size_t> select_by_mutual_information(const data::Dataset& ds,
                                                      std::size_t k,
                                                      std::size_t bins = 8);

/// Mutual information I(feature; labels) of one column, in nats.
double mutual_information(const data::Dataset& ds, std::size_t column,
                          std::size_t bins = 8);

// ---- Instance selection ---------------------------------------------------------

/// Uniform random subsample of `count` rows.
std::vector<std::size_t> sample_rows(std::size_t total, std::size_t count, Rng& rng);

/// Class-stratified subsample of ~`count` rows preserving label proportions.
std::vector<std::size_t> stratified_sample_rows(const std::vector<int>& labels,
                                                std::size_t count, Rng& rng);

// ---- Discretization --------------------------------------------------------------

enum class DiscretizeKind {
  kEqualWidth,      ///< bins of equal value span
  kEqualFrequency,  ///< bins of (approximately) equal population
  kEntropyMdl       ///< recursive entropy splits with an MDL stopping rule
};

/// Replace a numeric column with a categorical column of bin labels
/// ("bin0".."binN"), in place (the column object changes type).
/// kEntropyMdl requires labels. Returns the number of bins produced.
std::size_t discretize_column(data::Dataset& ds, std::size_t column,
                              DiscretizeKind kind, std::size_t bins = 4);

/// Discretize every numeric column; returns total bins across columns.
std::size_t discretize_all(data::Dataset& ds, DiscretizeKind kind, std::size_t bins = 4);

}  // namespace iotml::pipeline
