#include "pipeline/reduction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "util/error.hpp"

namespace iotml::pipeline {

namespace {

using data::Column;
using data::ColumnType;
using data::Dataset;

std::vector<double> present_values(const Column& col) {
  std::vector<double> out;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (!col.is_missing(r)) out.push_back(col.raw()[r]);
  }
  return out;
}

/// Discrete symbol of a cell for MI estimation: category index, or numeric
/// bin, with a dedicated symbol for missing.
std::vector<int> symbolize(const Column& col, std::size_t bins) {
  std::vector<int> out(col.size(), -1);  // -1 = missing
  if (col.type() == ColumnType::kCategorical) {
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (!col.is_missing(r)) out[r] = static_cast<int>(col.category(r));
    }
    return out;
  }
  const auto vals = present_values(col);
  if (vals.empty()) return out;
  const auto [lo_it, hi_it] = std::minmax_element(vals.begin(), vals.end());
  const double lo = *lo_it;
  const double span = *hi_it > lo ? *hi_it - lo : 1.0;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (col.is_missing(r)) continue;
    auto bin = static_cast<std::size_t>((col.numeric(r) - lo) / span *
                                        static_cast<double>(bins));
    out[r] = static_cast<int>(std::min(bin, bins - 1));
  }
  return out;
}

double entropy_from_counts(const std::map<int, std::size_t>& counts, std::size_t n) {
  double h = 0.0;
  for (const auto& [symbol, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(n);
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace

std::vector<std::size_t> select_by_variance(const Dataset& ds, double min_variance) {
  IOTML_CHECK(min_variance >= 0.0, "select_by_variance: min_variance must be >= 0");
  std::vector<std::size_t> keep;
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    const Column& col = ds.column(f);
    if (col.type() == ColumnType::kCategorical) {
      keep.push_back(f);
      continue;
    }
    const auto vals = present_values(col);
    if (vals.size() < 2) continue;
    double mean = 0.0;
    for (double v : vals) mean += v;
    mean /= static_cast<double>(vals.size());
    double var = 0.0;
    for (double v : vals) var += (v - mean) * (v - mean);
    var /= static_cast<double>(vals.size() - 1);
    if (var >= min_variance) keep.push_back(f);
  }
  return keep;
}

double mutual_information(const Dataset& ds, std::size_t column, std::size_t bins) {
  IOTML_CHECK(ds.has_labels(), "mutual_information: dataset must be labeled");
  IOTML_CHECK(bins >= 2, "mutual_information: bins must be >= 2");
  const std::vector<int> symbols = symbolize(ds.column(column), bins);

  std::map<int, std::size_t> sym_counts, label_counts;
  std::map<std::pair<int, int>, std::size_t> joint;
  std::size_t n = 0;
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    if (symbols[r] < 0) continue;  // skip missing
    ++sym_counts[symbols[r]];
    ++label_counts[ds.label(r)];
    ++joint[{symbols[r], ds.label(r)}];
    ++n;
  }
  if (n == 0) return 0.0;

  const double hx = entropy_from_counts(sym_counts, n);
  const double hy = entropy_from_counts(label_counts, n);
  double hxy = 0.0;
  for (const auto& [key, count] : joint) {
    const double p = static_cast<double>(count) / static_cast<double>(n);
    hxy -= p * std::log(p);
  }
  return std::max(0.0, hx + hy - hxy);
}

std::vector<std::size_t> select_by_mutual_information(const Dataset& ds, std::size_t k,
                                                      std::size_t bins) {
  IOTML_CHECK(k >= 1, "select_by_mutual_information: k must be >= 1");
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    scored.emplace_back(mutual_information(ds, f, bins), f);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < std::min(k, scored.size()); ++i) {
    keep.push_back(scored[i].second);
  }
  std::sort(keep.begin(), keep.end());
  return keep;
}

std::vector<std::size_t> sample_rows(std::size_t total, std::size_t count, Rng& rng) {
  IOTML_CHECK(count <= total, "sample_rows: count > total");
  auto rows = rng.sample_without_replacement(total, count);
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::size_t> stratified_sample_rows(const std::vector<int>& labels,
                                                std::size_t count, Rng& rng) {
  IOTML_CHECK(count <= labels.size(), "stratified_sample_rows: count > total");
  IOTML_CHECK(count >= 1, "stratified_sample_rows: count must be >= 1");
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  std::vector<std::size_t> out;
  const double fraction = static_cast<double>(count) / static_cast<double>(labels.size());
  for (auto& [label, members] : by_class) {
    rng.shuffle(members);
    auto take = static_cast<std::size_t>(
        std::round(fraction * static_cast<double>(members.size())));
    take = std::min(take, members.size());
    out.insert(out.end(), members.begin(),
               members.begin() + static_cast<std::ptrdiff_t>(take));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Discretization ----------------------------------------------------------------

namespace {

/// Cut points for entropy-MDL discretization (Fayyad & Irani, simplified):
/// recursively split on the boundary minimizing class entropy, accepting a
/// split only when the information gain passes the MDL criterion.
void mdl_splits(const std::vector<std::pair<double, int>>& sorted, std::size_t begin,
                std::size_t end, std::vector<double>& cuts) {
  const std::size_t n = end - begin;
  if (n < 4) return;

  auto class_entropy = [&](std::size_t b, std::size_t e, std::size_t& distinct) {
    std::map<int, std::size_t> counts;
    for (std::size_t i = b; i < e; ++i) ++counts[sorted[i].second];
    distinct = counts.size();
    return entropy_from_counts(counts, e - b);
  };

  std::size_t k_all = 0;
  const double h_all = class_entropy(begin, end, k_all);
  if (k_all < 2) return;

  double best_gain = -1.0, best_cut = 0.0, best_h1 = 0.0, best_h2 = 0.0;
  std::size_t best_i = 0, best_k1 = 0, best_k2 = 0;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (sorted[i].first <= sorted[i - 1].first) continue;  // not a boundary
    std::size_t k1 = 0, k2 = 0;
    const double h1 = class_entropy(begin, i, k1);
    const double h2 = class_entropy(i, end, k2);
    const double nf = static_cast<double>(n);
    const double h_split = (static_cast<double>(i - begin) / nf) * h1 +
                           (static_cast<double>(end - i) / nf) * h2;
    const double gain = h_all - h_split;
    if (gain > best_gain) {
      best_gain = gain;
      best_cut = 0.5 * (sorted[i - 1].first + sorted[i].first);
      best_i = i;
      best_h1 = h1;
      best_h2 = h2;
      best_k1 = k1;
      best_k2 = k2;
    }
  }
  if (best_gain <= 0.0) return;

  // MDL acceptance (Fayyad-Irani): gain > (log2(n-1) + log2(3^k - 2)
  // - k*H + k1*H1 + k2*H2) / n, with entropies in bits.
  const double ln2 = std::log(2.0);
  const double nf = static_cast<double>(n);
  const double delta = std::log2(std::pow(3.0, static_cast<double>(k_all)) - 2.0) -
                       (static_cast<double>(k_all) * h_all -
                        static_cast<double>(best_k1) * best_h1 -
                        static_cast<double>(best_k2) * best_h2) /
                           ln2;
  const double threshold = (std::log2(nf - 1.0) + delta) / nf;
  if (best_gain / ln2 <= threshold) return;

  cuts.push_back(best_cut);
  mdl_splits(sorted, begin, best_i, cuts);
  mdl_splits(sorted, best_i, end, cuts);
}

std::vector<double> cut_points(const Dataset& ds, std::size_t column,
                               DiscretizeKind kind, std::size_t bins) {
  const Column& col = ds.column(column);
  const auto vals = present_values(col);
  IOTML_CHECK(!vals.empty(), "discretize: column is entirely missing");

  std::vector<double> cuts;
  switch (kind) {
    case DiscretizeKind::kEqualWidth: {
      const auto [lo_it, hi_it] = std::minmax_element(vals.begin(), vals.end());
      const double lo = *lo_it, hi = *hi_it;
      if (hi <= lo) break;
      for (std::size_t b = 1; b < bins; ++b) {
        cuts.push_back(lo + (hi - lo) * static_cast<double>(b) /
                                static_cast<double>(bins));
      }
      break;
    }
    case DiscretizeKind::kEqualFrequency: {
      std::vector<double> sorted = vals;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t b = 1; b < bins; ++b) {
        const std::size_t idx = b * sorted.size() / bins;
        const double cut = sorted[std::min(idx, sorted.size() - 1)];
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
      }
      break;
    }
    case DiscretizeKind::kEntropyMdl: {
      IOTML_CHECK(ds.has_labels(), "discretize: kEntropyMdl requires labels");
      std::vector<std::pair<double, int>> sorted;
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.is_missing(r)) sorted.emplace_back(col.numeric(r), ds.label(r));
      }
      std::sort(sorted.begin(), sorted.end());
      mdl_splits(sorted, 0, sorted.size(), cuts);
      std::sort(cuts.begin(), cuts.end());
      break;
    }
  }
  return cuts;
}

}  // namespace

std::size_t discretize_column(Dataset& ds, std::size_t column, DiscretizeKind kind,
                              std::size_t bins) {
  IOTML_CHECK(bins >= 2, "discretize_column: bins must be >= 2");
  Column& col = ds.column(column);
  IOTML_CHECK(col.type() == ColumnType::kNumeric, "discretize_column: numeric only");

  const std::vector<double> cuts = cut_points(ds, column, kind, bins);

  // Rebuild the column as categorical with interval labels.
  Column replacement(col.name(), ColumnType::kCategorical);
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (col.is_missing(r)) {
      replacement.push_missing();
      continue;
    }
    const double v = col.numeric(r);
    const std::size_t bin = static_cast<std::size_t>(
        std::upper_bound(cuts.begin(), cuts.end(), v) - cuts.begin());
    replacement.push_category("bin" + std::to_string(bin));
  }
  col = std::move(replacement);
  return cuts.size() + 1;
}

std::size_t discretize_all(Dataset& ds, DiscretizeKind kind, std::size_t bins) {
  std::size_t total = 0;
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    if (ds.column(f).type() == ColumnType::kNumeric) {
      total += discretize_column(ds, f, kind, bins);
    }
  }
  return total;
}

}  // namespace iotml::pipeline
