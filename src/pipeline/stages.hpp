#pragma once

#include <memory>

#include "pipeline/preparation.hpp"
#include "pipeline/privacy.hpp"
#include "pipeline/reduction.hpp"
#include "pipeline/stage.hpp"

namespace iotml::pipeline {

/// Concrete, reusable Stage implementations for the standard preprocessing
/// operations, so pipelines can be composed declaratively:
///
///   Pipeline p;
///   p.add(std::make_unique<OutlierStage>(4.0));
///   p.add(std::make_unique<ImputeStage>(ImputeStrategy::kLinear));
///   p.add(std::make_unique<NormalizeStage>(NormalizeKind::kZScore));

/// Hampel outlier suppression over every numeric column. Cost scales with
/// the number of suppressed cells.
class OutlierStage final : public Stage {
 public:
  explicit OutlierStage(double threshold = 4.0, std::string player = "preprocessor");
  StageReport apply(data::Dataset& ds, Rng& rng) override;
  std::string name() const override { return "outlier-suppression"; }
  std::string player() const override { return player_; }

 private:
  double threshold_;
  std::string player_;
};

/// Missing-value imputation with a chosen strategy.
class ImputeStage final : public Stage {
 public:
  explicit ImputeStage(ImputeStrategy strategy, std::string player = "preprocessor");
  StageReport apply(data::Dataset& ds, Rng& rng) override;
  std::string name() const override;
  std::string player() const override { return player_; }

 private:
  ImputeStrategy strategy_;
  std::string player_;
};

/// Numeric normalization.
class NormalizeStage final : public Stage {
 public:
  explicit NormalizeStage(NormalizeKind kind, std::string player = "preprocessor");
  StageReport apply(data::Dataset& ds, Rng& rng) override;
  std::string name() const override;
  std::string player() const override { return player_; }

 private:
  NormalizeKind kind_;
  std::string player_;
};

/// Local-differential-privacy perturbation at the device tier.
class PrivacyStage final : public Stage {
 public:
  explicit PrivacyStage(PrivacyParams params, std::string player = "device-owner");
  StageReport apply(data::Dataset& ds, Rng& rng) override;
  std::string name() const override { return "privatize"; }
  std::string player() const override { return player_; }
  Tier tier() const override { return Tier::kDevice; }

 private:
  PrivacyParams params_;
  std::string player_;
};

/// Top-k mutual-information feature selection (labels required).
class FeatureSelectStage final : public Stage {
 public:
  explicit FeatureSelectStage(std::size_t keep, std::string player = "core-operator");
  StageReport apply(data::Dataset& ds, Rng& rng) override;
  std::string name() const override;
  std::string player() const override { return player_; }
  Tier tier() const override { return Tier::kCore; }

 private:
  std::size_t keep_;
  std::string player_;
};

}  // namespace iotml::pipeline
