#pragma once

#include "data/dataset.hpp"
#include "pipeline/sensors.hpp"

namespace iotml::pipeline {

/// Parameters of the Section IV data-integration step: "first merging the
/// time-stamps into an ordered list: the data available at each time-stamp
/// will naturally compose a multi-dimensional record typically plagued by
/// missing feature-values".
struct IntegrationParams {
  /// Timestamps closer than this are considered the same instant and merged
  /// into one record (0 = exact-match only).
  double merge_tolerance_s = 0.0;

  /// When several readings of the same stream fall into one merged record,
  /// average them (true) or keep the last (false).
  bool average_duplicates = true;
};

struct IntegrationResult {
  /// Column 0 = "timestamp" (numeric), then one numeric column per stream,
  /// named after the sensor. Cells are missing where a stream had no reading
  /// at that instant.
  data::Dataset records;
  std::size_t merged_timestamps = 0;  ///< raw stamps collapsed by tolerance
  double missing_rate = 0.0;          ///< over the sensor columns only
};

/// Merge d 1-dimensional sensor streams into a single d-dimensional view.
IntegrationResult integrate_streams(const std::vector<SensorStream>& streams,
                                    const IntegrationParams& params = {});

}  // namespace iotml::pipeline
