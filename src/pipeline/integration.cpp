#include "pipeline/integration.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace iotml::pipeline {

IntegrationResult integrate_streams(const std::vector<SensorStream>& streams,
                                    const IntegrationParams& params) {
  IOTML_CHECK(!streams.empty(), "integrate_streams: no streams");
  IOTML_CHECK(params.merge_tolerance_s >= 0.0,
              "integrate_streams: tolerance must be >= 0");

  // 1. Merge all timestamps into an ordered list, collapsing stamps within
  //    tolerance of the current run's anchor into one record.
  std::vector<double> stamps;
  for (const SensorStream& s : streams) {
    for (const Reading& r : s.readings) stamps.push_back(r.timestamp);
  }
  IOTML_CHECK(!stamps.empty(), "integrate_streams: all streams empty");
  std::sort(stamps.begin(), stamps.end());

  std::vector<double> anchors;
  std::size_t merged = 0;
  for (double t : stamps) {
    if (anchors.empty() || t - anchors.back() > params.merge_tolerance_s) {
      anchors.push_back(t);
    } else {
      ++merged;
    }
  }

  auto anchor_of = [&](double t) {
    // Last anchor <= t; correct because anchors were formed left-to-right
    // with the same tolerance rule.
    auto it = std::upper_bound(anchors.begin(), anchors.end(), t);
    IOTML_CHECK(it != anchors.begin(), "integrate_streams: reading precedes anchors");
    return static_cast<std::size_t>(it - anchors.begin()) - 1;
  };

  // 2. Accumulate readings per (stream, record).
  struct Cell {
    double sum = 0.0;
    double last = 0.0;
    std::size_t count = 0;
  };
  std::vector<std::vector<Cell>> cells(streams.size(),
                                       std::vector<Cell>(anchors.size()));
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (const Reading& r : streams[s].readings) {
      Cell& cell = cells[s][anchor_of(r.timestamp)];
      cell.sum += r.value;
      cell.last = r.value;
      ++cell.count;
    }
  }

  // 3. Materialize the d-dimensional records.
  IntegrationResult out;
  out.merged_timestamps = merged;
  data::Column& time_col = out.records.add_numeric_column("timestamp");
  for (double a : anchors) time_col.push_numeric(a);

  std::size_t missing_cells = 0;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    data::Column& col = out.records.add_numeric_column(streams[s].sensor_name);
    for (std::size_t rec = 0; rec < anchors.size(); ++rec) {
      const Cell& cell = cells[s][rec];
      if (cell.count == 0) {
        col.push_missing();
        ++missing_cells;
      } else if (params.average_duplicates) {
        col.push_numeric(cell.sum / static_cast<double>(cell.count));
      } else {
        col.push_numeric(cell.last);
      }
    }
  }
  out.missing_rate = static_cast<double>(missing_cells) /
                     static_cast<double>(streams.size() * anchors.size());
  out.records.validate();
  return out;
}

}  // namespace iotml::pipeline
