#include "pipeline/sensors.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace iotml::pipeline {

Signal sine_signal(double mean, double amplitude, double period_s, double phase) {
  IOTML_CHECK(period_s > 0.0, "sine_signal: period must be positive");
  return [=](double t) {
    return mean + amplitude * std::sin(2.0 * std::numbers::pi * t / period_s + phase);
  };
}

Signal trend_signal(double start, double slope_per_s) {
  return [=](double t) { return start + slope_per_s * t; };
}

Signal composite_signal(std::vector<Signal> parts) {
  IOTML_CHECK(!parts.empty(), "composite_signal: no parts");
  return [parts = std::move(parts)](double t) {
    double total = 0.0;
    for (const Signal& s : parts) total += s(t);
    return total;
  };
}

SensorStream simulate_sensor(const SensorSpec& spec, const Signal& truth,
                             double duration_s, Rng& rng) {
  IOTML_CHECK(spec.period_s > 0.0, "simulate_sensor: period must be positive");
  IOTML_CHECK(duration_s > 0.0, "simulate_sensor: duration must be positive");
  IOTML_CHECK(spec.dropout_prob >= 0.0 && spec.dropout_prob < 1.0,
              "simulate_sensor: dropout_prob must be in [0, 1)");
  IOTML_CHECK(spec.noise_std >= 0.0, "simulate_sensor: noise_std must be >= 0");

  SensorStream out;
  out.sensor_name = spec.name;
  for (double t = 0.0; t < duration_s; t += spec.period_s) {
    if (rng.bernoulli(spec.dropout_prob)) {
      ++out.dropped;
      continue;
    }
    double stamp = t;
    if (spec.clock_jitter_s > 0.0) {
      stamp += rng.uniform(-spec.clock_jitter_s, spec.clock_jitter_s);
      stamp = std::max(stamp, 0.0);
    }
    double value = truth(stamp) + spec.bias + spec.drift_per_s * stamp;
    if (spec.noise_std > 0.0) value += rng.normal(0.0, spec.noise_std);
    if (spec.outlier_prob > 0.0 && rng.bernoulli(spec.outlier_prob)) {
      const double magnitude = spec.outlier_scale * std::max(spec.noise_std, 1e-3);
      value += rng.bernoulli(0.5) ? magnitude : -magnitude;
    }
    out.readings.push_back({stamp, value});
  }
  // Jitter can locally reorder stamps; integration expects ascending order.
  std::sort(out.readings.begin(), out.readings.end(),
            [](const Reading& a, const Reading& b) { return a.timestamp < b.timestamp; });
  return out;
}

FieldAcquisition acquire_field(const std::vector<FieldQuantity>& field,
                               double duration_s, Rng& rng) {
  IOTML_CHECK(!field.empty(), "acquire_field: empty field");
  FieldAcquisition out;
  out.duration_s = duration_s;
  for (const FieldQuantity& q : field) {
    IOTML_CHECK(!q.sensors.empty(),
                "acquire_field: quantity '" + q.name + "' has no sensors");
    for (const SensorSpec& spec : q.sensors) {
      out.streams.push_back(simulate_sensor(spec, q.truth, duration_s, rng));
      out.quantity_of_stream.push_back(q.name);
    }
  }
  return out;
}

}  // namespace iotml::pipeline
