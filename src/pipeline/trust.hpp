#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace iotml::pipeline {

/// Trust scoring of redundant sensors (Section I: "hostile, untrusted or
/// semi-trusted components along the model training chain"; the pipeline
/// "cannot rely on full mutual trust").
///
/// When several sensors measure the same physical quantity, each sensor's
/// agreement with the group consensus exposes biased or broken devices
/// without any ground truth: for every record, the consensus is the median
/// of the group's present readings; a sensor's bias estimate is the median
/// of its deviations from that consensus, and its noise estimate the MAD.

struct SensorTrustScore {
  std::string sensor;
  double bias_estimate = 0.0;   ///< median deviation from group consensus
  double noise_estimate = 0.0;  ///< MAD of the deviations
  std::size_t readings_used = 0;
  /// Trust in [0, 1]: 1 for a sensor indistinguishable from consensus,
  /// shrinking with |bias| and excess noise relative to the group.
  double trust = 1.0;
};

/// Score a group of columns of an integrated record (all measuring the same
/// quantity). `columns` indexes numeric columns of `records`. Missing cells
/// are skipped; records with fewer than 2 present sensors contribute nothing.
std::vector<SensorTrustScore> score_sensor_group(const data::Dataset& records,
                                                 const std::vector<std::size_t>& columns);

/// Consensus column: per-record trust-weighted mean of the group's present
/// readings (weights from `scores`, matched by position to `columns`).
/// Returns per-record values with NaN where no sensor was present.
std::vector<double> trusted_consensus(const data::Dataset& records,
                                      const std::vector<std::size_t>& columns,
                                      const std::vector<SensorTrustScore>& scores);

}  // namespace iotml::pipeline
