#include "pipeline/privacy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace iotml::pipeline {

double laplace_noise(double scale, Rng& rng) {
  IOTML_CHECK(scale >= 0.0, "laplace_noise: scale must be >= 0");
  if (scale == 0.0) return 0.0;
  // Inverse CDF: u uniform in (-1/2, 1/2), x = -scale * sgn(u) * ln(1-2|u|).
  const double u = rng.uniform() - 0.5;
  return -scale * (u >= 0.0 ? 1.0 : -1.0) * std::log(1.0 - 2.0 * std::fabs(u));
}

double randomized_response_keep_probability(double epsilon, std::size_t categories) {
  IOTML_CHECK(epsilon > 0.0, "randomized_response: epsilon must be positive");
  IOTML_CHECK(categories >= 2, "randomized_response: need >= 2 categories");
  const double e = std::exp(epsilon);
  return e / (e + static_cast<double>(categories) - 1.0);
}

PrivacyReport privatize(data::Dataset& ds, const PrivacyParams& params, Rng& rng) {
  IOTML_CHECK(params.epsilon > 0.0, "privatize: epsilon must be positive");
  IOTML_CHECK(params.sensitivity.empty() || params.sensitivity.size() == ds.num_columns(),
              "privatize: sensitivity size mismatch");

  PrivacyReport report;
  double scale_total = 0.0;
  std::size_t scale_count = 0;

  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    data::Column& col = ds.column(f);

    if (col.type() == data::ColumnType::kNumeric) {
      double sensitivity;
      if (!params.sensitivity.empty()) {
        sensitivity = params.sensitivity[f];
      } else {
        double lo = std::numeric_limits<double>::infinity(), hi = -lo;
        for (std::size_t r = 0; r < col.size(); ++r) {
          if (col.is_missing(r)) continue;
          lo = std::min(lo, col.numeric(r));
          hi = std::max(hi, col.numeric(r));
        }
        sensitivity = hi > lo ? hi - lo : 0.0;
      }
      const double scale = sensitivity / params.epsilon;
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (col.is_missing(r)) continue;
        col.set_numeric(r, col.numeric(r) + laplace_noise(scale, rng));
        ++report.numeric_cells_noised;
      }
      scale_total += scale;
      ++scale_count;
    } else if (params.randomize_categories && col.categories().size() >= 2) {
      const double keep =
          randomized_response_keep_probability(params.epsilon, col.categories().size());
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (col.is_missing(r)) continue;
        if (!rng.bernoulli(keep)) {
          const std::size_t replacement = rng.index(col.categories().size());
          if (replacement != col.category(r)) ++report.categorical_cells_flipped;
          // Copy: set_category takes a reference and may touch the intern
          // table the label lives in.
          const std::string label = col.categories()[replacement];
          col.set_category(r, label);
        }
      }
    }
  }
  report.laplace_scale_mean =
      scale_count > 0 ? scale_total / static_cast<double>(scale_count) : 0.0;
  return report;
}

}  // namespace iotml::pipeline
