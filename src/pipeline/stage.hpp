#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace iotml::pipeline {

/// Where in the IoT topology a stage executes (Fig. 1 of the paper: device ->
/// edge -> core).
enum class Tier { kDevice, kEdge, kCore };

std::string tier_name(Tier t);

/// Inverse of tier_name — parses "device"/"edge"/"core" (as emitted by
/// tier_name and as written in sim topology configs). Throws InvalidArgument
/// for any other spelling.
Tier tier_from_name(std::string_view name);

/// Accounting record emitted by each stage: what it did to the data and what
/// it cost. The per-stage cost is what the stage's *player* minimizes in the
/// Section IV games, while downstream players care about the quality fields.
struct StageReport {
  std::string stage_name;
  std::string player;  ///< owning actor (stages of one pipeline may differ)
  Tier tier = Tier::kEdge;
  std::size_t rows_in = 0;
  std::size_t rows_out = 0;
  std::size_t columns_out = 0;
  double missing_rate_in = 0.0;
  double missing_rate_out = 0.0;
  double cost = 0.0;  ///< abstract effort units declared by the stage
  /// Measured wall time of Stage::apply. Every concrete iotml stage measures
  /// its own body via obs::now_us, so the field is filled even when a stage
  /// is applied directly, outside a Pipeline; Pipeline::run additionally
  /// fills it for third-party stages that leave it 0. Unlike `cost` this is
  /// observed, not declared — the paper's per-stage accounting needs both
  /// sides to compare what a stage claims against what it actually spends.
  std::uint64_t wall_time_us = 0;
};

/// One service in the composed pipeline (the paper models the pipeline as a
/// composition of services pursuing different goals, Section I.B).
class Stage {
 public:
  virtual ~Stage() = default;

  /// Transform the dataset in place and return the accounting record.
  virtual StageReport apply(data::Dataset& ds, Rng& rng) = 0;

  virtual std::string name() const = 0;

  /// The actor operating this stage; defaults to "operator".
  virtual std::string player() const { return "operator"; }

  virtual Tier tier() const { return Tier::kEdge; }
};

/// A stage defined by a lambda — the quick way to compose custom pipelines.
class LambdaStage final : public Stage {
 public:
  using Fn = std::function<double(data::Dataset&, Rng&)>;  // returns cost

  LambdaStage(std::string name, Fn fn, std::string player = "operator",
              Tier tier = Tier::kEdge);

  StageReport apply(data::Dataset& ds, Rng& rng) override;
  std::string name() const override { return name_; }
  std::string player() const override { return player_; }
  Tier tier() const override { return tier_; }

 private:
  std::string name_;
  Fn fn_;
  std::string player_;
  Tier tier_;
};

/// Ordered composition of stages with full per-stage accounting.
class Pipeline {
 public:
  Pipeline& add(std::unique_ptr<Stage> stage);

  /// Convenience: add a lambda stage.
  Pipeline& add(std::string name, LambdaStage::Fn fn,
                std::string player = "operator", Tier tier = Tier::kEdge);

  std::size_t size() const noexcept { return stages_.size(); }

  /// Run every stage in order; the reports of this run are retained.
  data::Dataset run(data::Dataset input, Rng& rng);

  const std::vector<StageReport>& reports() const noexcept { return reports_; }

  /// Total declared cost of the last run, optionally for one player only.
  double total_cost() const;
  double player_cost(const std::string& player) const;

  /// Move the stages out (for re-hosting them elsewhere, e.g. tier placement
  /// in the fleet simulator); the pipeline is left empty with no reports.
  std::vector<std::unique_ptr<Stage>> take_stages();

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<StageReport> reports_;
};

}  // namespace iotml::pipeline
