// E-UNC: Section I.B/IV — "keeping track of the uncertainty associated to
// the reconstructed data". Validates first-order uncertainty propagation
// against Monte-Carlo ground truth for the pipeline's basic operations, and
// shows the per-cell uncertainty map a preprocessing stage would hand
// downstream (imputed cells carry inflated variance; fused sensors carry
// reduced variance).

#include <cmath>
#include <cstdio>
#include <functional>

#include "data/metrics.hpp"
#include "pipeline/uncertainty.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::pipeline;

  std::printf("E-UNC: uncertainty propagation — predicted vs Monte Carlo\n\n");

  Rng rng(41);  // rng-stream: data
  const int n_mc = 200000;

  struct Case {
    std::string name;
    UncertainValue predicted;
    std::function<double(Rng&)> sample;
  };

  UncertainValue a(2.0, 0.36), b(-1.0, 0.25);
  std::vector<Case> cases;
  cases.push_back({"a + b", a + b, [&](Rng& r) {
                     return r.normal(a.mean, a.stddev()) + r.normal(b.mean, b.stddev());
                   }});
  cases.push_back({"a - b", a - b, [&](Rng& r) {
                     return r.normal(a.mean, a.stddev()) - r.normal(b.mean, b.stddev());
                   }});
  cases.push_back({"3a", a.scaled(3.0), [&](Rng& r) {
                     return 3.0 * r.normal(a.mean, a.stddev());
                   }});
  cases.push_back({"a * b", a * b, [&](Rng& r) {
                     return r.normal(a.mean, a.stddev()) * r.normal(b.mean, b.stddev());
                   }});
  cases.push_back({"mean of 4 a's", uncertain_mean({a, a, a, a}), [&](Rng& r) {
                     double total = 0.0;
                     for (int i = 0; i < 4; ++i) total += r.normal(a.mean, a.stddev());
                     return total / 4.0;
                   }});
  cases.push_back({"fuse(a, b')", fuse({a, UncertainValue(2.4, 0.04)}), [&](Rng& r) {
                     // inverse-variance weighted mean of two estimates
                     const double wa = 1.0 / 0.36, wb = 1.0 / 0.04;
                     return (wa * r.normal(2.0, 0.6) + wb * r.normal(2.4, 0.2)) /
                            (wa + wb);
                   }});

  std::vector<std::vector<std::string>> rows;
  for (const Case& c : cases) {
    std::vector<double> samples;
    samples.reserve(n_mc);
    for (int i = 0; i < n_mc; ++i) samples.push_back(c.sample(rng));
    const data::MeanStd ms = data::mean_std(samples);
    rows.push_back({c.name, format_double(c.predicted.mean, 4),
                    format_double(ms.mean, 4),
                    format_double(c.predicted.variance, 4),
                    format_double(ms.stddev * ms.stddev, 4)});
  }
  std::printf("%s\n",
              render_table({"operation", "mean (pred)", "mean (MC)",
                            "variance (pred)", "variance (MC)"},
                           rows)
                  .c_str());

  // Per-cell uncertainty map through a stage sequence.
  std::printf("uncertainty map through pipeline stages (mean cell variance):\n");
  UncertaintyMap map(100, 4, 0.25);  // acquisition noise variance
  std::printf("  after acquisition            : %.4f\n", map.mean_variance());
  // Imputation: 20%% of cells repaired with tripled variance.
  Rng holes(7);  // rng-stream: holes
  for (std::size_t r = 0; r < map.rows(); ++r) {
    for (std::size_t c = 0; c < map.cols(); ++c) {
      if (holes.bernoulli(0.2)) map.set_variance(r, c, 0.75);
    }
  }
  std::printf("  after imputation (20%% cells): %.4f\n", map.mean_variance());
  // Normalization: column 0 scaled by 1/2 -> variance / 4.
  map.scale_column(0, 0.5);
  std::printf("  after normalizing column 0   : %.4f\n", map.mean_variance());

  std::printf("\nshape check: every predicted mean/variance matches Monte Carlo to\n"
              "sampling error; fusion cuts variance below the best single sensor;\n"
              "imputation raises the map, normalization rescales it.\n");
  return 0;
}
