// E-ABLATION: the design choices DESIGN.md Section 5 calls out, isolated:
//   1. block-weight rule (uniform / alignment / optimized alignment)
//   2. correlation ordering of S-K before the chain walk (on / off)
//   3. rough-set selection of the distinguished block K (on / off)
// Everything else held fixed (chain strategy, same folds, same data).

#include <cstdio>

#include "core/faceted_learner.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

struct Variant {
  std::string name;
  core::FacetedLearnerConfig config;
};

}  // namespace

int main() {
  std::printf("E-ABLATION: partition-MKL design choices (chain search held fixed)\n\n");

  Rng rng(101);  // rng-stream: data
  // Two signal facets, one heavy noise facet — the regime where choices matter.
  data::FacetedData fd = data::make_faceted_gaussian(
      320, {{2, 3.0, 1.0, true}, {3, 1.8, 1.0, true}, {4, 0.0, 4.0, false}}, rng);
  Rng split_rng(7);  // rng-stream: splitter
  auto split = data::train_test_split(fd.samples.size(), 0.35, split_rng);
  data::Samples train = data::select_rows(fd.samples, split.train);
  data::Samples test = data::select_rows(fd.samples, split.test);

  std::vector<Variant> variants;
  {
    core::FacetedLearnerConfig base;
    base.strategy = core::SearchStrategy::kChain;

    Variant uniform{"weights=uniform", base};
    uniform.config.search.weights = core::WeightRule::kUniform;
    Variant aligned{"weights=alignment (default)", base};
    aligned.config.search.weights = core::WeightRule::kAlignment;
    Variant optimized{"weights=optimized", base};
    optimized.config.search.weights = core::WeightRule::kOptimized;
    variants.push_back(uniform);
    variants.push_back(aligned);
    variants.push_back(optimized);

    Variant unordered{"ordering=feature-index (ablated)", base};
    unordered.config.correlation_ordering = false;
    variants.push_back(unordered);

    Variant rough{"K=rough-set selected", base};
    rough.config.rough_select_k = true;
    variants.push_back(rough);

    Variant smush{"strategy=smushing (bottom-up)", base};
    smush.config.strategy = core::SearchStrategy::kSmushing;
    variants.push_back(smush);

    Variant greedy{"strategy=greedy (reference)", base};
    greedy.config.strategy = core::SearchStrategy::kGreedyRefinement;
    variants.push_back(greedy);
  }

  std::vector<std::vector<std::string>> rows;
  for (const Variant& v : variants) {
    core::FacetedLearner learner(v.config);
    learner.fit(train);
    rows.push_back({v.name, format_double(learner.search_result().best_score, 3),
                    format_double(learner.accuracy(test), 3),
                    std::to_string(learner.search_result().partitions_evaluated),
                    std::to_string(learner.search_result().block_grams_computed),
                    learner.partition().to_string()});
  }
  std::printf("%s\n",
              render_table({"variant", "cv score", "test acc", "SVM evals",
                            "block grams", "partition"},
                           rows)
                  .c_str());

  std::printf("shape check: alignment weighting beats uniform when a noise facet\n"
              "is in play; optimized weights match or edge out the heuristic at\n"
              "extra cost; correlation ordering controls which chain the linear\n"
              "walk sees, changing the discovered partition.\n");
  return 0;
}
