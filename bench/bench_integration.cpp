// E-INTEG: Section IV's prototypical data-integration example — d
// 1-dimensional desynchronized sensor streams merged into one d-dimensional
// view "typically plagued by missing feature-values". Sweeps desync and
// dropout, compares imputation strategies on reconstruction RMSE against the
// known ground-truth signals.

#include <cstdio>

#include "data/metrics.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/sensors.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;
using namespace iotml::pipeline;

struct Scenario {
  std::string name;
  double period_spread;  ///< sensor periods 1.0 .. 1.0+spread
  double dropout;
};

}  // namespace

int main() {
  std::printf("E-INTEG: timestamp-merge integration and imputation quality\n\n");

  const std::vector<Scenario> scenarios{
      {"synchronized", 0.0, 0.0},
      {"mild desync", 0.15, 0.05},
      {"strong desync", 0.45, 0.15},
      {"hostile field", 0.45, 0.35},
  };
  const std::vector<ImputeStrategy> strategies{
      ImputeStrategy::kMean, ImputeStrategy::kMedian, ImputeStrategy::kLocf,
      ImputeStrategy::kLinear, ImputeStrategy::kHotDeck, ImputeStrategy::kKnn};

  std::vector<std::vector<std::string>> rows;
  for (const Scenario& scenario : scenarios) {
    Rng rng(23);  // rng-stream: data
    // Four sensors on one smooth signal, desynchronized periods.
    const Signal truth = sine_signal(10.0, 4.0, 50.0);
    std::vector<SensorStream> streams;
    for (int s = 0; s < 4; ++s) {
      SensorSpec spec;
      spec.name = "s" + std::to_string(s);
      spec.period_s = 1.0 + scenario.period_spread * s / 3.0;
      spec.noise_std = 0.2;
      spec.dropout_prob = scenario.dropout;
      streams.push_back(simulate_sensor(spec, truth, 120.0, rng));
    }
    IntegrationResult integ = integrate_streams(streams, {.merge_tolerance_s = 0.1});

    for (ImputeStrategy strategy : strategies) {
      data::Dataset repaired = integ.records;
      Rng prep(5);  // rng-stream: prep
      impute(repaired, strategy, prep);

      // RMSE of *imputed* cells against the ground-truth signal.
      std::vector<double> truth_vals, imputed_vals;
      for (std::size_t c = 1; c < repaired.num_columns(); ++c) {
        for (std::size_t r = 0; r < repaired.rows(); ++r) {
          if (!integ.records.column(c).is_missing(r)) continue;  // only holes
          if (repaired.column(c).is_missing(r)) continue;        // unresolved
          truth_vals.push_back(truth(repaired.column(0).numeric(r)));
          imputed_vals.push_back(repaired.column(c).numeric(r));
        }
      }
      const double hole_rmse =
          truth_vals.empty() ? 0.0 : data::rmse(truth_vals, imputed_vals);
      rows.push_back({scenario.name, impute_strategy_name(strategy),
                      std::to_string(integ.records.rows()),
                      format_double(100.0 * integ.missing_rate, 1) + "%",
                      truth_vals.empty() ? "n/a" : format_double(hole_rmse, 3)});
    }
  }

  std::printf("%s\n",
              render_table({"scenario", "imputation", "records",
                            "missing after merge", "hole RMSE vs truth"},
                           rows)
                  .c_str());
  std::printf("shape check: desync multiplies records and missing cells; on a\n"
              "smooth signal, order-aware strategies (linear/locf) beat\n"
              "order-free ones (mean/hot-deck); knn sits between.\n");
  return 0;
}
