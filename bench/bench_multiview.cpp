// E-MV: Section I's multi-view learning techniques — co-training (agreement
// between views) and CCA subspace learning — against single-view and
// concatenation baselines, swept over the number of labeled examples.

#include <cstdio>

#include "data/metrics.hpp"
#include "data/synthetic.hpp"
#include "learners/naive_bayes.hpp"
#include "multiview/cca.hpp"
#include "multiview/cotraining.hpp"
#include "multiview/views.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::multiview;

  std::printf("E-MV: co-training & CCA vs single-view / concatenation\n");
  std::printf("(2 informative views; accuracy vs number of labeled examples)\n\n");

  std::vector<std::vector<std::string>> rows;
  for (std::size_t labeled_count : {6u, 12u, 24u, 60u, 150u}) {
    // Average over a few draws; each draw is one concept split into
    // labeled / unlabeled / test.
    double co_acc = 0.0, v0_acc = 0.0, concat_acc = 0.0, cca_corr = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(100 + trial);  // rng-stream: trial-data
      data::FacetedData fd = data::make_faceted_gaussian(
          700, {{3, 2.5, 1.0, true}, {3, 2.5, 1.0, true}}, rng);

      std::vector<std::size_t> labeled_idx, test_idx;
      for (std::size_t i = 0; i < labeled_count; ++i) labeled_idx.push_back(i);
      for (std::size_t i = 500; i < 700; ++i) test_idx.push_back(i);
      data::Samples labeled = data::select_rows(fd.samples, labeled_idx);
      data::Samples test = data::select_rows(fd.samples, test_idx);

      la::Matrix unlabeled(500 - labeled_count, fd.samples.dim());
      for (std::size_t r = labeled_count; r < 500; ++r) {
        for (std::size_t c = 0; c < fd.samples.dim(); ++c) {
          unlabeled(r - labeled_count, c) = fd.samples.x(r, c);
        }
      }

      CoTrainer co(fd.views[0], fd.views[1]);
      co.fit(labeled, unlabeled);
      co_acc += co.accuracy(test);

      learners::NaiveBayes single;
      single.fit(data::samples_to_dataset(project(labeled, fd.views[0])));
      v0_acc += single.accuracy(
          data::samples_to_dataset(project(test, fd.views[0])));

      learners::NaiveBayes concat;
      concat.fit(data::samples_to_dataset(labeled));
      concat_acc += concat.accuracy(data::samples_to_dataset(test));

      // CCA between the two views on the unlabeled pool: the shared latent
      // is the class signal, so the top canonical correlation is high.
      data::Samples pool;
      pool.x = unlabeled;
      const la::Matrix xa = project(pool, fd.views[0]).x;
      const la::Matrix xb = project(pool, fd.views[1]).x;
      CcaResult cca = fit_cca(xa, xb, 1);
      cca_corr += cca.correlations[0];
    }
    rows.push_back({std::to_string(labeled_count),
                    format_double(v0_acc / trials, 3),
                    format_double(concat_acc / trials, 3),
                    format_double(co_acc / trials, 3),
                    format_double(cca_corr / trials, 3)});
  }

  std::printf("%s\n",
              render_table({"labeled", "single view", "concatenation",
                            "co-training", "CCA top corr"},
                           rows)
                  .c_str());
  std::printf("shape check: with few labels co-training exploits the unlabeled\n"
              "pool and beats both baselines; the gap closes as labels grow.\n"
              "The views' shared latent shows up as a high top canonical\n"
              "correlation regardless of label count.\n");
  return 0;
}
