// E-GAME: Section IV — the pipeline as a game between a preprocessing player
// and an analytics player with compatible but non-aligned interests.
//
// Payoffs are *measured*: every strategy profile is run through the real
// pipeline on a corrupted phone fleet. Reports the payoff matrices, the
// single-player (social) optimum, the simultaneous-play Nash outcome, and
// the sequential Stackelberg outcome (preprocessor commits first, the
// paper's sequential-game frame).

#include <cstdio>

#include "bench_report.hpp"
#include "core/pipeline_game.hpp"
#include "data/synthetic.hpp"
#include "game/bimatrix.hpp"
#include "game/repeated.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::core;

  std::printf("E-GAME: preprocessing vs analytics as a measured bimatrix game\n\n");
  bench::BenchReport bench_report("pipeline_game");

  // Numeric sensor-style data where preparation quality genuinely matters:
  // missing cells AND gross outliers. Mean imputation without outlier
  // suppression propagates the outliers into every repaired cell; the
  // expensive strategies (median/knn with Hampel suppression) do not.
  // An oblique class boundary (random direction across 6 features) is hard
  // for axis-aligned trees and easy for NB/logistic — but the latter are the
  // outlier-sensitive models, so the analyst's best model depends on how well
  // the preprocessor cleaned the data. That dependency is the game.
  Rng rng(31);  // rng-stream: data
  data::Samples raw = data::make_faceted_gaussian(1050, {{6, 3.5, 1.0, true}}, rng).samples;
  auto corrupt = [&](data::Dataset& ds) {
    for (std::size_t f = 0; f < ds.num_columns(); ++f) {
      for (std::size_t r = 0; r < ds.rows(); ++r) {
        if (rng.bernoulli(0.30)) {
          ds.column(f).set_missing(r);
        } else if (rng.bernoulli(0.06)) {
          ds.column(f).set_numeric(r, ds.column(f).numeric(r) +
                                           (rng.bernoulli(0.5) ? 40.0 : -40.0));
        }
      }
    }
  };
  data::Dataset all = data::samples_to_dataset(raw);
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    (i % 3 == 2 ? test_idx : train_idx).push_back(i);
  }
  data::Dataset train = all.select_rows(train_idx);
  data::Dataset test = all.select_rows(test_idx);
  corrupt(train);
  corrupt(test);
  std::printf("corrupted sensor table: %zu train / %zu test rows, %.0f%% cells\n"
              "missing plus ~4%% gross outliers\n\n",
              train.rows(), test.rows(), 100.0 * train.missing_rate());

  PipelineGameConfig config;
  PipelineGameResult result = build_pipeline_game(train, test, config, rng);

  // Accuracy matrix.
  std::vector<std::vector<std::string>> acc_rows;
  for (std::size_t i = 0; i < config.preprocessor.size(); ++i) {
    std::vector<std::string> row{config.preprocessor[i].name};
    for (std::size_t j = 0; j < config.analyst.size(); ++j) {
      row.push_back(format_double(result.accuracy(i, j), 3));
    }
    acc_rows.push_back(row);
  }
  std::vector<std::string> header{"accuracy"};
  for (const auto& a : config.analyst) header.push_back(a.name);
  std::printf("%s\n", render_table(header, acc_rows).c_str());

  // Payoff matrices.
  std::vector<std::vector<std::string>> payoff_rows;
  for (std::size_t i = 0; i < config.preprocessor.size(); ++i) {
    std::vector<std::string> row{config.preprocessor[i].name};
    for (std::size_t j = 0; j < config.analyst.size(); ++j) {
      row.push_back(format_double(result.game.a(i, j), 2) + " / " +
                    format_double(result.game.b(i, j), 2));
    }
    payoff_rows.push_back(row);
  }
  header[0] = "payoffs (prep/analyst)";
  std::printf("%s\n", render_table(header, payoff_rows).c_str());

  auto describe = [&](const char* label, game::PureProfile p) {
    std::printf("  %-22s (%s, %s): accuracy %.3f, welfare %.2f\n", label,
                config.preprocessor[p.row].name.c_str(),
                config.analyst[p.col].name.c_str(), result.accuracy_at(p),
                game::social_welfare(result.game, p));
  };
  std::printf("solution concepts:\n");
  describe("single player (opt)", result.social);
  describe(result.has_pure_nash ? "Nash (pure)" : "Nash (BR resting pt)", result.nash);
  describe("Stackelberg (prep 1st)",
           {result.stackelberg.leader_action, result.stackelberg.follower_action});

  const double opt_acc = result.accuracy_at(result.social);
  const double nash_acc = result.accuracy_at(result.nash);
  std::printf("\nmisaligned interests cost %.1f accuracy points vs the single-player\n"
              "optimum at the default coupling.\n",
              100.0 * (opt_acc - nash_acc));

  const double stackelberg_acc = result.accuracy_at(
      {result.stackelberg.leader_action, result.stackelberg.follower_action});
  bench_report.metric("accuracy_optimum", opt_acc);
  bench_report.metric("accuracy_nash", nash_acc);
  bench_report.metric("accuracy_stackelberg", stackelberg_acc);
  bench_report.metric("accuracy_gap_nash", opt_acc - nash_acc);
  bench_report.metric("welfare_optimum", game::social_welfare(result.game, result.social));
  bench_report.metric("welfare_nash", game::social_welfare(result.game, result.nash));
  bench_report.metric("has_pure_nash", result.has_pure_nash ? 1.0 : 0.0);
  bench_report.metric("train_rows", static_cast<double>(train.rows()));
  bench_report.metric("test_rows", static_cast<double>(test.rows()));
  bench_report.metric("profiles_measured",
                      static_cast<double>(config.preprocessor.size() * config.analyst.size()));
  bench_report.note("preprocessor_strategies", std::to_string(config.preprocessor.size()));
  bench_report.note("analyst_strategies", std::to_string(config.analyst.size()));

  // The paper's alignment lever: how much of the analyst's reward the
  // preprocessor shares. As the stake grows, strategic play converges to the
  // integrated (single-player) outcome.
  std::printf("\nalignment sweep (shared stake of the preprocessor in accuracy):\n");
  std::vector<std::vector<std::string>> stake_rows;
  for (double stake : {0.0, 0.15, 0.4, 0.8}) {
    PipelineGameConfig swept = config;
    swept.shared_stake = stake;
    PipelineGameResult r = build_pipeline_game(train, test, swept, rng);
    stake_rows.push_back(
        {format_double(stake, 2), format_double(r.accuracy_at(r.nash), 3),
         format_double(r.accuracy_at({r.stackelberg.leader_action,
                                      r.stackelberg.follower_action}),
                       3),
         format_double(r.accuracy_at(r.social), 3)});
  }
  std::printf("%s\n", render_table({"shared stake", "Nash acc", "Stackelberg acc",
                                    "optimum acc"},
                                   stake_rows)
                          .c_str());
  std::printf("shape check: welfare(optimum) >= welfare(Stackelberg) >= welfare(Nash);\n"
              "raising the shared stake closes the accuracy gap — the quantified\n"
              "version of the paper's call for an integrated design process.\n\n");

  // The pipeline runs on every batch: the stage game repeats. Can grim-
  // trigger punishment (revert to the Nash outcome forever) sustain the
  // integrated optimum without any contract?
  if (result.has_pure_nash) {
    const double delta_prep =
        game::grim_trigger_min_discount(result.game, result.social, result.nash);
    game::Bimatrix swapped{result.game.b.transpose(), result.game.a.transpose()};
    const double delta_analyst = game::grim_trigger_min_discount(
        swapped, {result.social.col, result.social.row},
        {result.nash.col, result.nash.row});
    std::printf("repeated play (folk theorem): minimal discount factor to make\n"
                "the social optimum self-enforcing under grim trigger:\n"
                "  preprocessor: %.3f%s\n  analyst     : %.3f%s\n",
                delta_prep,
                delta_prep >= 1.0
                    ? " (impossible: Nash punishment is what the prep wants)"
                    : "",
                delta_analyst, delta_analyst <= 0.0 ? " (no temptation)" : "");
    if (delta_prep >= 1.0) {
      std::printf("=> repetition alone cannot align this pipeline: the deviator's\n"
                  "punishment (the Nash outcome) is its favourite outcome. Only a\n"
                  "shared stake or transfers work — exactly the alignment lever\n"
                  "measured above.\n");
    } else {
      game::GrimTrigger prep(result.social.row, result.nash.row, result.social.col);
      game::GrimTrigger analyst(result.social.col, result.nash.col,
                                result.social.row);
      const auto cooperative =
          game::play_repeated(result.game, prep, analyst, 50, 0.9);
      std::printf("grim-vs-grim at delta=0.9 sustains the optimum (accuracy %.3f\n"
                  "vs %.3f at the one-shot Nash).\n",
                  result.accuracy(cooperative.row_actions.front(),
                                  cooperative.col_actions.front()),
                  result.accuracy_at(result.nash));
    }
  }
  bench_report.write();
  return 0;
}
