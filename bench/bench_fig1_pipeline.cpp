// Reproduces Fig. 1 of the paper: "Analytics computation in the IoT setting"
// as a runnable simulation: devices at the periphery acquire desynchronized,
// noisy, dropout-prone streams; the edge integrates and prepares them; the
// core reduces and learns. Per-stage accounting shows what each tier does to
// the data.

#include <cstdio>

#include "bench_report.hpp"
#include "data/metrics.hpp"
#include "learners/decision_tree.hpp"
#include "obs/obs.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/reduction.hpp"
#include "pipeline/sensors.hpp"
#include "pipeline/stage.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::pipeline;

  std::printf("FIG. 1: ANALYTICS COMPUTATION IN THE IOT SETTING (simulated)\n\n");
  bench::BenchReport bench_report("fig1_pipeline");
  Rng rng(2024);  // rng-stream: data

  // ---- Device tier: a 12-sensor field over 3 physical quantities ---------
  std::vector<FieldQuantity> field;
  field.push_back({"temperature", sine_signal(22.0, 6.0, 300.0),
                   {{.name = "temp0", .period_s = 1.0, .clock_jitter_s = 0.05,
                     .noise_std = 0.4, .dropout_prob = 0.10},
                    {.name = "temp1", .period_s = 1.3, .clock_jitter_s = 0.05,
                     .noise_std = 0.4, .dropout_prob = 0.05, .outlier_prob = 0.02},
                    {.name = "temp2", .period_s = 0.9, .noise_std = 0.6,
                     .dropout_prob = 0.20, .bias = 1.5},  // untrusted sensor
                    {.name = "temp3", .period_s = 1.1, .noise_std = 0.3}}});
  field.push_back({"humidity", composite_signal({sine_signal(55.0, 10.0, 500.0),
                                                 trend_signal(0.0, -0.01)}),
                   {{.name = "hum0", .period_s = 2.0, .noise_std = 1.5,
                     .dropout_prob = 0.15},
                    {.name = "hum1", .period_s = 1.7, .clock_jitter_s = 0.1,
                     .noise_std = 1.0},
                    {.name = "hum2", .period_s = 2.3, .noise_std = 2.0,
                     .outlier_prob = 0.03},
                    {.name = "hum3", .period_s = 2.1, .noise_std = 1.2,
                     .dropout_prob = 0.25}}});
  field.push_back({"wind", sine_signal(4.0, 3.0, 120.0),
                   {{.name = "wind0", .period_s = 0.8, .noise_std = 0.8,
                     .dropout_prob = 0.10},
                    {.name = "wind1", .period_s = 1.2, .noise_std = 0.6},
                    {.name = "wind2", .period_s = 1.0, .noise_std = 1.0,
                     .dropout_prob = 0.30},
                    {.name = "wind3", .period_s = 1.4, .clock_jitter_s = 0.2,
                     .noise_std = 0.7}}});

  const double duration = 240.0;
  FieldAcquisition acquisition = acquire_field(field, duration, rng);
  std::size_t readings = 0, dropped = 0;
  for (const auto& s : acquisition.streams) {
    readings += s.readings.size();
    dropped += s.dropped;
  }
  std::printf("[device tier] %zu sensors, %.0fs window: %zu readings acquired, %zu lost\n",
              acquisition.streams.size(), duration, readings, dropped);

  // ---- Edge tier: integrate + prepare -------------------------------------
  IntegrationResult integ = integrate_streams(acquisition.streams,
                                              {.merge_tolerance_s = 0.25});
  std::printf("[edge tier]   integration: %zu records, %zu stamps merged, "
              "missing rate %.1f%%\n",
              integ.records.rows(), integ.merged_timestamps,
              100.0 * integ.missing_rate);

  // Label each record: "comfortable" iff temperature truth in [20, 28] at
  // that instant — the downstream analytics concept.
  {
    std::vector<int> labels;
    const Signal truth = field[0].truth;
    for (std::size_t r = 0; r < integ.records.rows(); ++r) {
      const double t = integ.records.column(0).numeric(r);
      const double temp = truth(t);
      labels.push_back(temp >= 20.0 && temp <= 28.0 ? 1 : 0);
    }
    integ.records.set_labels(std::move(labels));
  }

  Pipeline edge;
  edge.add("outlier-suppression", [](data::Dataset& ds, Rng&) {
    std::size_t suppressed = 0;
    for (std::size_t f = 1; f < ds.num_columns(); ++f) {
      suppressed += suppress_outliers(
          ds, f, detect_outliers_hampel(ds.column(f), 4.0));
    }
    return 0.5 + 0.01 * static_cast<double>(suppressed);
  }, "edge-operator", Tier::kEdge);
  edge.add("imputation(linear)", [](data::Dataset& ds, Rng& r) {
    impute(ds, ImputeStrategy::kLinear, r);
    return 1.5;
  }, "edge-operator", Tier::kEdge);
  edge.add("normalization(zscore)", [](data::Dataset& ds, Rng&) {
    // Keep the timestamp column raw; normalize sensor columns only.
    data::Dataset sensors_only = ds.select_columns([&] {
      std::vector<std::size_t> cols;
      for (std::size_t c = 1; c < ds.num_columns(); ++c) cols.push_back(c);
      return cols;
    }());
    normalize(sensors_only, NormalizeKind::kZScore);
    for (std::size_t c = 1; c < ds.num_columns(); ++c) {
      for (std::size_t r = 0; r < ds.rows(); ++r) {
        if (!sensors_only.column(c - 1).is_missing(r)) {
          ds.column(c).set_numeric(r, sensors_only.column(c - 1).numeric(r));
        }
      }
    }
    return 0.5;
  }, "edge-operator", Tier::kEdge);

  data::Dataset prepared = edge.run(integ.records, rng);

  // ---- Core tier: reduce + learn ------------------------------------------
  Pipeline core;
  core.add("feature-selection(MI,top6)", [](data::Dataset& ds, Rng&) {
    auto keep = select_by_mutual_information(ds, 6);
    // Never drop the timestamp (column 0) silently; the learner may use it.
    data::Dataset reduced = ds.select_columns(keep);
    ds = std::move(reduced);
    return 1.0;
  }, "core-operator", Tier::kCore);

  data::Dataset reduced = core.run(prepared, rng);

  const std::size_t n = reduced.rows();
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < n; ++i) {
    (i % 4 == 3 ? test_idx : train_idx).push_back(i);
  }
  data::Dataset train = reduced.select_rows(train_idx);
  data::Dataset test = reduced.select_rows(test_idx);
  learners::DecisionTree tree;
  tree.fit(train);
  const double accuracy = tree.accuracy(test);

  // ---- Stage report table --------------------------------------------------
  std::vector<std::vector<std::string>> rows;
  auto add_reports = [&](const Pipeline& p) {
    for (const auto& rep : p.reports()) {
      rows.push_back({rep.stage_name, rep.player, tier_name(rep.tier),
                      std::to_string(rep.rows_out),
                      format_double(100.0 * rep.missing_rate_in, 1) + "%",
                      format_double(100.0 * rep.missing_rate_out, 1) + "%",
                      format_double(rep.cost, 2), std::to_string(rep.wall_time_us)});
      bench_report.metric("stage_wall_us." + rep.stage_name,
                          static_cast<double>(rep.wall_time_us));
    }
  };
  add_reports(edge);
  add_reports(core);
  std::printf("\n%s\n",
              render_table({"stage", "player", "tier", "rows", "miss-in",
                            "miss-out", "cost", "wall-us"},
                           rows)
                  .c_str());

  std::printf("[core tier]   decision tree on %zu train rows -> accuracy %.3f "
              "on %zu held-out records\n",
              train.rows(), accuracy, test.rows());
  std::printf("\nshape check: device noise + desync creates ~%.0f%% missing cells;\n"
              "the edge pipeline repairs them to %.1f%% and the core still learns\n"
              "the comfort concept well above chance.\n",
              100.0 * integ.missing_rate, 100.0 * reduced.missing_rate());

  // ---- Machine-readable artifact ------------------------------------------
  bench_report.metric("accuracy", accuracy);
  bench_report.metric("sensors", static_cast<double>(acquisition.streams.size()));
  bench_report.metric("readings_acquired", static_cast<double>(readings));
  bench_report.metric("readings_dropped", static_cast<double>(dropped));
  bench_report.metric("rows_integrated", static_cast<double>(integ.records.rows()));
  bench_report.metric("missing_rate_raw", integ.missing_rate);
  bench_report.metric("missing_rate_final", reduced.missing_rate());
  bench_report.metric("train_rows", static_cast<double>(train.rows()));
  bench_report.metric("test_rows", static_cast<double>(test.rows()));
  bench_report.metric("readings_per_s", bench_report.throughput(static_cast<double>(readings)));
  bench_report.note("learner", "decision_tree");
  bench_report.note("pipeline", "outlier-suppression | imputation | normalization | selection");
  bench_report.write();
  if (!obs::trace_path().empty()) {
    std::printf("[obs] Chrome trace will be written to %s at exit (open in about:tracing)\n",
                obs::trace_path().c_str());
  }
  return 0;
}
