// Reproduces Fig. 2 of the paper: "Lattice of Partitions of a 4-Element Set".
//
// Prints the 15 partitions of {1,2,3,4} by rank (level sizes must be the
// Stirling numbers 1, 6, 7, 1), the Hasse covering relations, and verifies
// the lattice properties the paper leans on: complete lattice under
// refinement, NOT distributive.

#include <cstdio>
#include <string>

#include "bench_report.hpp"
#include "combinatorics/counting.hpp"
#include "combinatorics/partition_lattice.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::comb;

  std::printf("FIG. 2: LATTICE OF PARTITIONS OF A 4-ELEMENT SET\n");
  std::printf("(ordered by refinement; rank r has S(4, 4-r) partitions)\n\n");

  bench::BenchReport report("fig2_lattice");
  report.note("source", "Fig. 2, Damiani et al., ICDCS 2018");
  // Pure combinatorics — no RNG anywhere, so no seed to stamp.
  report.note("deterministic", "no-rng");

  PartitionLattice lattice(4);

  for (std::size_t rank = lattice.rank() + 1; rank-- > 0;) {
    std::string line;
    for (std::size_t id : lattice.level(rank)) {
      if (!line.empty()) line += "   ";
      line += lattice.element(id).to_string();
    }
    std::printf("rank %zu (%zu = S(4,%zu)): %s\n", rank, lattice.level(rank).size(),
                4 - rank, line.c_str());
  }

  std::printf("\nHasse diagram: %zu covering pairs\n", lattice.edge_count());
  for (std::size_t rank = 0; rank < lattice.rank(); ++rank) {
    for (std::size_t id : lattice.level(rank)) {
      std::string line = "  " + lattice.element(id).to_string() + " < ";
      std::vector<std::string> above;
      for (std::size_t up : lattice.covers_above(id)) {
        above.push_back(lattice.element(up).to_string());
      }
      std::printf("%s%s\n", line.c_str(), join(above, ", ").c_str());
    }
  }

  // Lattice sanity: meet/join closure and the paper's non-distributivity note.
  std::size_t meet_checks = 0;
  bool distributive = true;
  const auto& elements = lattice.elements();
  for (const auto& a : elements) {
    for (const auto& b : elements) {
      const auto m = a.meet(b);
      const auto j = a.join(b);
      (void)lattice.id_of(m);
      (void)lattice.id_of(j);
      ++meet_checks;
      for (const auto& c : elements) {
        if (a.meet(b.join(c)) != a.meet(b).join(a.meet(c))) distributive = false;
      }
    }
  }
  std::printf("\nclosure: %zu meet/join pairs verified inside the lattice\n", meet_checks);
  std::printf("distributive: %s (paper: \"unlike the Boolean lattice ... Pi(S) is not\n"
              "distributive\")\n",
              distributive ? "YES (unexpected!)" : "no, as expected");

  report.metric("partitions", static_cast<double>(lattice.elements().size()));
  report.metric("hasse_edges", static_cast<double>(lattice.edge_count()));
  report.metric("lattice_rank", static_cast<double>(lattice.rank()));
  report.metric("meet_join_pairs_verified", static_cast<double>(meet_checks));
  report.metric("distributive", distributive ? 1.0 : 0.0);
  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return 0;
}
