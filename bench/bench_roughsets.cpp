// E-ROUGH: Section III's rough-set machinery.
//
// 1. Reproduces the paper's 4-phone example exactly (T~K = {3},
//    T^K = {1,2,3}, granule-ratio accuracy 0.5).
// 2. Compares *dynamic* selection of K (by approximation accuracy on the
//    label concepts) against static/random selection, on larger fleets, by
//    approximation quality and downstream decision-tree accuracy using only
//    the selected features.

#include <cstdio>

#include "bench_report.hpp"
#include "data/synthetic.hpp"
#include "learners/decision_tree.hpp"
#include "roughsets/roughsets.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::rough;

  std::printf("E-ROUGH: Pawlak approximations and dynamic K selection\n\n");

  bench::BenchReport report("roughsets");
  report.seed(42);
  report.note("seeds", "42 (noise sweep, reset per level), 5 (reduct fleet)");

  // ---- The paper's phone table ------------------------------------------------
  {
    data::Dataset phones = data::make_phone_fleet_paper();
    IndiscernibilityRelation rel(phones, {phones.column_index("os")});
    Approximation a = approximate_label(rel, phones.labels(), 1);

    std::string lower, upper;
    for (std::size_t r : a.lower_rows) lower += std::to_string(r + 1) + " ";
    for (std::size_t r : a.upper_rows) upper += std::to_string(r + 1) + " ";
    std::printf("paper example, K = {OS}, T = available phones:\n");
    std::printf("  classes of ~K : %s\n", rel.to_partition().to_string().c_str());
    std::printf("  lower approx  : { %s} (paper: {3})\n", lower.c_str());
    std::printf("  upper approx  : { %s} (paper: {1,2} u {3})\n", upper.c_str());
    std::printf("  accuracy      : %.2f granule-ratio (paper's 0.5) | %.3f element-ratio\n\n",
                a.accuracy_granules(), a.accuracy_elements());
    report.metric("paper_example.accuracy_granules", a.accuracy_granules());
    report.metric("paper_example.accuracy_elements", a.accuracy_elements());
    report.metric("paper_example.lower_size", static_cast<double>(a.lower_rows.size()));
    report.metric("paper_example.upper_size", static_cast<double>(a.upper_rows.size()));
  }

  // ---- Dynamic vs static K on synthetic fleets --------------------------------
  std::printf("dynamic vs static K (fleet of 600 phones, label noise sweep):\n");
  std::vector<std::vector<std::string>> rows;
  for (double noise : {0.0, 0.1, 0.2}) {
    Rng rng(42);  // rng-stream: table-data
    data::Dataset train = data::make_phone_fleet(600, noise, rng);
    data::Dataset test = data::make_phone_fleet(300, noise, rng);

    const KSelection dynamic = select_k(train, 2, KScore::kMeanAccuracy);
    const KSelection by_entropy = select_k(train, 2, KScore::kNegConditionalEntropy);
    const std::vector<std::size_t> static_k{0};  // "battery", chosen a priori

    auto downstream = [&](const std::vector<std::size_t>& features) {
      learners::DecisionTree tree;
      tree.fit(train.select_columns(features));
      return tree.accuracy(test.select_columns(features));
    };
    auto gamma = [&](const std::vector<std::size_t>& features) {
      return dependency_degree(IndiscernibilityRelation(train, features),
                               train.labels());
    };

    auto name_of = [&](const std::vector<std::size_t>& features) {
      std::vector<std::string> names;
      for (std::size_t f : features) names.push_back(train.column(f).name());
      return join(names, "+");
    };

    const std::string level = "noise" + format_double(noise, 1);
    const double acc_dynamic = downstream(dynamic.features);
    const double acc_entropy = downstream(by_entropy.features);
    const double acc_static = downstream(static_k);
    report.metric("tree_acc.dynamic." + level, acc_dynamic);
    report.metric("tree_acc.entropy." + level, acc_entropy);
    report.metric("tree_acc.static." + level, acc_static);
    report.metric("dependency.dynamic." + level, gamma(dynamic.features));
    report.metric("dependency.static." + level, gamma(static_k));

    rows.push_back({format_double(noise, 1), "dynamic(accuracy)",
                    name_of(dynamic.features), format_double(gamma(dynamic.features), 3),
                    format_double(acc_dynamic, 3)});
    rows.push_back({format_double(noise, 1), "dynamic(entropy)",
                    name_of(by_entropy.features),
                    format_double(gamma(by_entropy.features), 3),
                    format_double(acc_entropy, 3)});
    rows.push_back({format_double(noise, 1), "static(battery)", name_of(static_k),
                    format_double(gamma(static_k), 3),
                    format_double(acc_static, 3)});
  }
  std::printf("%s\n", iotml::render_table({"label noise", "K selection", "K",
                                           "dependency", "tree accuracy"},
                                          rows)
                          .c_str());

  // ---- Reducts ------------------------------------------------------------------
  {
    Rng rng(5);  // rng-stream: discretize-data
    data::Dataset fleet = data::make_phone_fleet(500, 0.0, rng);
    auto reducts = find_reducts(fleet);
    std::printf("reducts of the noiseless fleet (battery, os, signal): %zu found\n",
                reducts.size());
    for (const auto& reduct : reducts) {
      std::string names;
      for (std::size_t f : reduct) names += fleet.column(f).name() + " ";
      std::printf("  { %s}\n", names.c_str());
    }
    report.metric("reducts_found", static_cast<double>(reducts.size()));
  }

  std::printf("\nshape check: dynamic selection matches or beats the static choice\n"
              "at every noise level, and the noiseless concept needs all three\n"
              "features (a single reduct = the full set).\n");

  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return 0;
}
