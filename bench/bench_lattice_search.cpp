// E-SEARCH: the headline experiment of Section III — searching the partition
// lattice of the feature set for the best multiple-kernel configuration.
//
// Compares three strategies on faceted synthetic data:
//   exhaustive  : every partition of S-K (Bell(|S-K|) SVM evaluations)
//   greedy      : cover-by-cover refinement from (K, S-K)
//   chain       : the linear-in-|S-K| saturated-chain walk
//
// Expected shape: exhaustive evaluations explode with Bell(n) while chain
// stays linear; chain/greedy accuracy stays within a few points of the
// exhaustive optimum. Exhaustive is skipped beyond 10 features.

#include <cstdio>

#include "bench_report.hpp"
#include "combinatorics/counting.hpp"
#include "core/faceted_learner.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

struct Row {
  std::size_t features;
  std::string strategy;
  double accuracy;
  std::size_t evaluations;
  std::size_t grams;
  std::string partition;
};

Row run_strategy(core::SearchStrategy strategy, const data::Samples& train,
                 const data::Samples& test, std::size_t features) {
  core::FacetedLearnerConfig config;
  config.strategy = strategy;
  config.search.cv_folds = 3;
  core::FacetedLearner learner(config);
  learner.fit(train);
  return {features,
          core::strategy_name(strategy),
          learner.accuracy(test),
          learner.search_result().partitions_evaluated,
          learner.search_result().block_grams_computed,
          learner.partition().to_string()};
}

}  // namespace

int main() {
  std::printf("E-SEARCH: partition-lattice MKL search — evaluations vs accuracy\n");
  std::printf("(faceted data: half the views informative, half high-variance noise)\n\n");

  bench::BenchReport bench_report("lattice_search");
  Rng rng(7);  // rng-stream: data
  std::vector<Row> rows;

  for (std::size_t views = 2; views <= 6; ++views) {
    // Each view has 2 features: total n = 2 * views. Alternate informative /
    // noise views.
    std::vector<data::ViewSpec> specs;
    for (std::size_t v = 0; v < views; ++v) {
      if (v % 2 == 0) {
        specs.push_back({2, 3.0, 1.0, true});
      } else {
        specs.push_back({2, 0.0, 3.0, false});
      }
    }
    data::FacetedData fd = data::make_faceted_gaussian(220, specs, rng);
    Rng split_rng(99);  // rng-stream: splitter
    auto split = data::train_test_split(fd.samples.size(), 0.35, split_rng);
    data::Samples train = data::select_rows(fd.samples, split.train);
    data::Samples test = data::select_rows(fd.samples, split.test);
    const std::size_t n = fd.samples.dim();

    if (comb::bell_number(static_cast<unsigned>(n)) <= 21147) {
      rows.push_back(run_strategy(core::SearchStrategy::kExhaustive, train, test, n));
    }
    rows.push_back(
        run_strategy(core::SearchStrategy::kGreedyRefinement, train, test, n));
    rows.push_back(run_strategy(core::SearchStrategy::kChain, train, test, n));
    rows.push_back(run_strategy(core::SearchStrategy::kSmushing, train, test, n));
  }

  std::vector<std::vector<std::string>> table;
  for (const Row& r : rows) {
    table.push_back({std::to_string(r.features), r.strategy,
                     format_double(r.accuracy, 3), std::to_string(r.evaluations),
                     std::to_string(r.grams), r.partition});
  }
  std::printf("%s\n",
              render_table({"features", "strategy", "test-acc", "SVM evals",
                            "block grams", "chosen partition"},
                           table)
                  .c_str());

  std::printf("shape check: exhaustive evals follow Bell(n) (4->15, 6->203,\n"
              "8->4140, 10->115975[skipped]); chain and smushing stay <= n;\n"
              "accuracy of the cheap strategies tracks the exhaustive optimum.\n");

  std::size_t total_evals = 0;
  for (const Row& r : rows) {
    const std::string key = r.strategy + ".n" + std::to_string(r.features);
    bench_report.metric("accuracy." + key, r.accuracy);
    bench_report.metric("evaluations." + key, static_cast<double>(r.evaluations));
    total_evals += r.evaluations;
  }
  bench_report.metric("strategy_runs", static_cast<double>(rows.size()));
  bench_report.metric("svm_evals_per_s",
                      bench_report.throughput(static_cast<double>(total_evals)));
  bench_report.note("strategies", "exhaustive | greedy | chain | smushing");
  bench_report.write();
  return 0;
}
