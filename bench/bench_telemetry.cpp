// E-TDF: the telemetry wire codec — encoded uplink bytes per row against
// the abstract legacy wire_size_bytes model at the 10-, 100- and
// 1000-device scales, plus the compound-chaos scenario at the small scale,
// where corrupt frames must be detected by the FNV trailer and repaired by
// the ack-retry transport with the row-conservation ledger still closing.
//
// The headline gate is the ISSUE acceptance bound for the frame codec: with
// batches of at least 16 rows, the batched TDF uplink must cost <= 50% of
// the legacy model's bytes at the 100-device scale and beyond. The frame
// amortizes the 24-byte message header over the batch, packs quantized
// readings as scaled varint deltas, and ships the schema once per session
// instead of once per message — the ledger keeps both sides visible.
//
// Every metric in BENCH_telemetry.json is a pure function of (config,
// seed): the report runs in deterministic mode and the bench re-runs the
// small fleet to assert the FleetReport JSON is byte-identical.
//
// IOTML_TELEMETRY_SMOKE=1 shrinks the fleets to CI size while keeping every
// metric key present, so the telemetry-smoke job can validate the JSON
// shape.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_TELEMETRY_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

sim::FleetConfig fleet_config(std::size_t devices, std::size_t edges,
                              std::uint64_t seed) {
  sim::FleetConfig config;
  config.devices = devices;
  config.edges = edges;
  config.duration_s = 30.0;
  config.seed = seed;
  // 10 s windows at the 0.5 s sensor period put ~19 rows in every frame
  // (sensor dropout trims the nominal 20) — comfortably past the gate's
  // 16-row batching floor.
  config.device_flush_s = 10.0;
  config.edge_flush_s = 10.0;
  config.telemetry.enabled = true;
  return config;
}

void enable_compound_chaos(sim::FleetConfig& config) {
  config.faults.device_churns = 5.0;
  config.faults.device_offtime_mean_s = 2.0;
  config.chaos.partitions = 1.0;
  config.chaos.partition_mean_s = 4.0;
  config.chaos.loss_bursts = 1.0;
  config.chaos.burst_drop_prob = 0.4;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_mean_s = 6.0;
  config.chaos.storm_corrupt_prob = 0.2;
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.backoff_base_s = 0.05;
  config.channel.backoff_cap_s = 1.0;
  config.channel.max_attempts = 6;
  config.device_buffer_rows = 4096;
  config.telemetry.device_log_bytes = 4096;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::printf("E-TDF: tagged telemetry frames vs the legacy wire model%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("telemetry");
  report.deterministic();
  report.note("mode", smoke ? "smoke" : "full");
  report.seed(2026);

  struct Scale {
    const char* key;
    std::size_t devices;
    std::size_t edges;
    bool chaos;
    bool gated;  ///< the <= 50% bound applies (100+ devices, calm wire)
  };
  const std::vector<Scale> scales = {
      {"fleet10", 10, 2, false, false},
      {"fleet100", smoke ? std::size_t{20} : std::size_t{100},
       smoke ? std::size_t{2} : std::size_t{4}, false, true},
      {"fleet1000", smoke ? std::size_t{50} : std::size_t{1000},
       smoke ? std::size_t{2} : std::size_t{8}, false, true},
      {"fleet100_chaos", smoke ? std::size_t{20} : std::size_t{100},
       smoke ? std::size_t{2} : std::size_t{4}, true, false},
  };

  bool all_ok = true;
  sim::FleetReport witness;
  std::vector<std::vector<std::string>> rows;
  for (const Scale& scale : scales) {
    // The chaos row pins a seed whose storm window actually crosses live
    // uplink traffic at both CI and full scale, so the detect-and-repair
    // path is exercised every run, not most runs.
    sim::FleetConfig config =
        fleet_config(scale.devices, scale.edges, scale.chaos ? 11 : 2026);
    if (scale.chaos) enable_compound_chaos(config);
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    if (scale.key == std::string("fleet10")) witness = r;
    const sim::TelemetrySummary& t = r.telemetry;

    const double ratio =
        t.legacy_wire_bytes > 0
            ? static_cast<double>(t.encoded_wire_bytes) /
                  static_cast<double>(t.legacy_wire_bytes)
            : 0.0;
    const double rows_per_frame =
        t.frames_sent > 0 ? static_cast<double>(t.rows_encoded) /
                                static_cast<double>(t.frames_sent)
                          : 0.0;
    all_ok = all_ok && r.rows_conserved() && t.decode_identity_ok;
    if (scale.gated) {
      // The acceptance bound: batched TDF at half the legacy model or less.
      all_ok = all_ok && rows_per_frame >= 16.0 && ratio <= 0.50;
    }
    if (scale.chaos) {
      // Compound chaos must exercise the full repair loop: wire damage
      // detected by the trailer, repaired by retransmission, no row lost
      // to an undetected corruption.
      all_ok = all_ok && t.frames_rejected > 0 && t.frames_retransmitted > 0;
    }

    const std::string key = scale.key;
    report.metric(key + ".encoded_wire_bytes",
                  static_cast<double>(t.encoded_wire_bytes));
    report.metric(key + ".legacy_wire_bytes",
                  static_cast<double>(t.legacy_wire_bytes));
    report.metric(key + ".wire_ratio", ratio);
    report.metric(key + ".bytes_per_row", t.bytes_per_row());
    report.metric(key + ".legacy_bytes_per_row", t.legacy_bytes_per_row());
    report.metric(key + ".rows_per_frame", rows_per_frame);
    report.metric(key + ".frames_sent", static_cast<double>(t.frames_sent));
    report.metric(key + ".frames_delivered",
                  static_cast<double>(t.frames_delivered));
    report.metric(key + ".frames_rejected",
                  static_cast<double>(t.frames_rejected));
    report.metric(key + ".frames_retransmitted",
                  static_cast<double>(t.frames_retransmitted));
    report.metric(key + ".schema_negotiations",
                  static_cast<double>(t.schema_negotiations));
    report.metric(key + ".schema_bytes", static_cast<double>(t.schema_bytes));
    report.metric(key + ".log_highwater_bytes",
                  static_cast<double>(t.log_highwater_bytes));
    report.metric(key + ".log_rows_evicted",
                  static_cast<double>(t.log_rows_evicted));
    report.metric(key + ".decode_identity_ok",
                  t.decode_identity_ok ? 1.0 : 0.0);
    report.metric(key + ".rows_conserved", r.rows_conserved() ? 1.0 : 0.0);

    rows.push_back({scale.key, std::to_string(scale.devices),
                    scale.chaos ? "compound" : "calm",
                    format_double(rows_per_frame, 1),
                    format_double(t.bytes_per_row(), 1),
                    format_double(t.legacy_bytes_per_row(), 1),
                    format_double(ratio, 3),
                    std::to_string(t.frames_rejected),
                    std::to_string(t.frames_retransmitted),
                    r.rows_conserved() ? "yes" : "NO"});
  }
  std::printf("%s\n",
              render_table({"scale", "devices", "faults", "rows/frame",
                            "B/row", "legacy B/row", "ratio", "rejected",
                            "retrans", "conserved"},
                           rows)
                  .c_str());

  const bool gate_met = all_ok;
  std::printf("uplink gate (batched frames <= 50%% of the legacy model at "
              "100+ devices): %s\n\n",
              gate_met ? "met" : "MISSED");

  // ---- Determinism witness -------------------------------------------------
  // Same seed, same config: the FleetReport JSON must be byte-identical.
  sim::FleetSim again(fleet_config(10, 2, 2026));
  const bool deterministic = again.run().to_json() == witness.to_json();
  report.metric("determinism_ok", deterministic ? 1.0 : 0.0);
  std::printf("determinism: re-run of the small fleet is %s\n",
              deterministic ? "byte-identical" : "DIVERGENT");

  report.write();
  return gate_met && deterministic ? 0 : 1;
}
