// Reproduces Table I of the paper: "Example of chain decomposition of Pi_4".
//
// The de Bruijn symmetric chain decomposition of B_3 yields chains C1..C3;
// each subset S receives the Loeb-Damiani-D'Antona encoding c(S), whose
// reversed nonzero digits form the partition type; the partitions of each
// type tile Pi_4. Expected rows (from the paper):
//
//   S in B3   c(S)          Pi4
//   {}        1111 -> 1111  1/2/3/4
//   {1}       0211 -> 112   1/2/34
//   {1,2}     0031 -> 13    1/234
//   {1,2,3}   0004 -> 4     1234
//   {2}       1021 -> 121   1/23/4, 1/24/3
//   {2,3}     1003 -> 31    123/4, 124/3, 134/2
//   {3}       1102 -> 211   12/3/4, 13/2/4, 14/2/3
//   {1,3}     0202 -> 22    12/34, 13/24, 14/23

#include <cstdio>
#include <string>

#include "bench_report.hpp"
#include "combinatorics/counting.hpp"
#include "combinatorics/ldd.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::comb;

  std::printf("TABLE I: EXAMPLE OF CHAIN DECOMPOSITION OF Pi_4\n");
  std::printf("(paper: Damiani et al., ICDCS 2018, Section III)\n\n");

  bench::BenchReport report("table1");
  report.note("source", "Table I, Damiani et al., ICDCS 2018");
  // Pure combinatorics — no RNG anywhere, so no seed to stamp.
  report.note("deterministic", "no-rng");

  const unsigned n = 3;
  LddDecomposition decomposition(n);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t g = 0; g < decomposition.groups().size(); ++g) {
    for (const LddRow& row : decomposition.groups()[g].rows) {
      std::vector<std::string> partition_names;
      for (const SetPartition& p : row.partitions) {
        partition_names.push_back(p.to_string());
      }
      rows.push_back({subset_to_string(row.set, n),
                      digits_to_string(row.encoding) + " -> " +
                          digits_to_string(row.type),
                      join(partition_names, ", ")});
    }
    if (g + 1 < decomposition.groups().size()) rows.push_back({"", "", ""});
  }
  std::printf("%s\n", render_table({"S in B3", "c(S)", "Pi4"}, rows).c_str());

  std::printf("check: partitions covered = %zu (Bell(4) = %llu)\n",
              decomposition.covered_partitions(),
              static_cast<unsigned long long>(bell_number(4)));
  std::printf("check: symmetric chains found = %zu; LDD guarantee (all ranks <= %u\n"
              "       on symmetric chains): %s\n",
              decomposition.symmetric_chain_count(), (n - 1) / 2,
              decomposition.symmetric_below_rank((n - 1) / 2) ? "HOLDS" : "VIOLATED");

  std::printf("\nPartition-level chains assembled from the groups:\n");
  std::size_t symmetric_chains = 0;
  for (const PartitionChain& chain : decomposition.partition_chains()) {
    std::string line = "  ";
    for (std::size_t i = 0; i < chain.partitions.size(); ++i) {
      if (i > 0) line += " < ";
      line += chain.partitions[i].to_string();
    }
    const bool symmetric = chain.is_symmetric(decomposition.lattice_rank());
    if (symmetric) ++symmetric_chains;
    line += symmetric ? "   [symmetric]" : "   [residual]";
    std::printf("%s\n", line.c_str());
  }

  report.metric("table_rows", static_cast<double>(rows.size()));
  report.metric("partitions_covered",
                static_cast<double>(decomposition.covered_partitions()));
  report.metric("bell_4", static_cast<double>(bell_number(4)));
  report.metric("symmetric_chain_count",
                static_cast<double>(decomposition.symmetric_chain_count()));
  report.metric("ldd_guarantee_holds",
                decomposition.symmetric_below_rank((n - 1) / 2) ? 1.0 : 0.0);
  report.metric("partition_chains",
                static_cast<double>(decomposition.partition_chains().size()));
  report.metric("partition_chains_symmetric", static_cast<double>(symmetric_chains));
  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return 0;
}
