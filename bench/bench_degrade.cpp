// Graceful-degradation frontier (DESIGN.md §16): error bound vs speedup for
// the backpressure ladder at the 1k- and 10k-device scales under compound
// chaos plus a load storm. Each ladder level is pinned in turn so the cost
// and error of every rung is measured against the exact L0 baseline on the
// same seed, then a free-running ladder is driven through the same storm to
// assert the acceptance contract: every edge escalates, sheds, and returns
// to L0 with the row-conservation ledger closed.
//
// Gates (the ISSUE acceptance bounds):
//   * the 95% CI on sampled/sketched window means covers the exact answer
//     on >= 90% of windows at every approximate rung;
//   * L2 sketch-only reduce cuts the edge-tier reduce cost by >= 3x vs the
//     exact L0 ladder at the 1k-device scale and beyond;
//   * the free-running ladder returns every edge to L0 after the storm and
//     rows_conserved() holds at every rung.
//
// Every metric in BENCH_degrade.json is a pure function of (config, seed);
// the bench re-runs the smallest fleet and asserts byte-identical JSON.
//
// IOTML_DEGRADE_SMOKE=1 shrinks the fleets to CI size while keeping every
// metric key present, so the degrade-smoke job can validate the JSON shape.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_DEGRADE_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

// Compound chaos + load storm over an ack fleet with a shallow send queue:
// the storm compresses every device's flush schedule while partitions and
// loss bursts back the uplinks up, so backpressure is real at every scale.
sim::FleetConfig storm_config(std::size_t devices, std::size_t edges,
                              double duration_s, std::uint64_t seed) {
  sim::FleetConfig config;
  config.devices = devices;
  config.edges = edges;
  config.duration_s = duration_s;
  config.seed = seed;
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.queue_capacity = 4;
  config.checkpoint_interval_s = 2.0;
  config.device_buffer_rows = 4096;
  config.chaos.partitions = 1.0;
  config.chaos.partition_mean_s = 4.0;
  config.chaos.loss_bursts = 1.0;
  config.chaos.burst_mean_s = 3.0;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_mean_s = 3.0;
  config.chaos.load_storms = 2.0;
  config.chaos.load_storm_mean_s = 6.0;
  config.chaos.load_storm_factor = 4.0;
  config.degrade.enabled = true;
  return config;
}

double edge_tier_cost(const sim::FleetReport& report) {
  double cost = 0.0;
  for (const auto& [name, totals] : report.stage_totals()) {
    if (totals.tier == pipeline::Tier::kEdge) cost += totals.cost;
  }
  return cost;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::printf("graceful degradation: error bound vs edge reduce speedup%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("degrade");
  report.deterministic();
  report.note("mode", smoke ? "smoke" : "full");
  report.seed(9001);

  struct Scale {
    const char* key;
    std::size_t devices;
    std::size_t edges;
    double duration_s;
    double sensor_period_s;
    bool gated;  ///< the >= 3x L2 bound applies (1k devices and beyond)
  };
  std::vector<Scale> scales = {
      {"fleet1000", smoke ? std::size_t{20} : std::size_t{1000},
       smoke ? std::size_t{2} : std::size_t{8}, smoke ? 30.0 : 12.0, 0.5,
       true},
  };
  if (!smoke) {
    // Wider tree and slower sensors at 10k: per-edge buffers stay bounded,
    // so the frontier gets the scale without the hours.
    scales.push_back({"fleet10000", 10000, 64, 6.0, 1.0, true});
  } else {
    // Smoke keeps the key set identical at CI size.
    scales.push_back({"fleet10000", 50, 2, 20.0, 0.5, true});
  }

  bool all_ok = true;
  sim::FleetReport witness;
  bool witness_set = false;
  std::vector<std::vector<std::string>> rows;
  for (const Scale& scale : scales) {
    double l0_cost = 0.0;
    for (int pin = 0; pin <= 3; ++pin) {
      sim::FleetConfig config =
          storm_config(scale.devices, scale.edges, scale.duration_s, 9001);
      config.sensor_period_s = scale.sensor_period_s;
      config.degrade.pin_level = pin;
      sim::FleetSim fleet(config);
      const sim::FleetReport r = fleet.run();
      if (!witness_set && pin == 0) {
        witness = r;
        witness_set = true;
      }
      const sim::DegradationLedger& d = r.degradation;

      const double cost = edge_tier_cost(r);
      if (pin == 0) l0_cost = cost;
      const double speedup = cost > 0.0 ? l0_cost / cost : 0.0;
      const bool conserved = r.rows_conserved();
      all_ok = all_ok && conserved;
      if (pin == 1 || pin == 2) {
        // The headline error bound: 95% CIs cover the exact window mean on
        // at least 90% of windows at every approximate rung that emits CIs.
        all_ok = all_ok && d.ci_windows > 0 && d.coverage() >= 0.90;
      }
      if (pin == 2 && scale.gated) {
        // The headline speedup bound: sketch-only reduce at a third of the
        // exact edge cost or less.
        all_ok = all_ok && cost <= l0_cost / 3.0;
      }

      const std::string key =
          std::string(scale.key) + ".pin" + std::to_string(pin);
      report.metric(key + ".edge_cost", cost);
      report.metric(key + ".edge_speedup_vs_l0", speedup);
      report.metric(key + ".ci_coverage", d.coverage());
      report.metric(key + ".ci_mean_half_width", d.mean_half_width());
      report.metric(key + ".ci_windows", static_cast<double>(d.ci_windows));
      report.metric(key + ".max_abs_error", d.max_abs_error);
      report.metric(key + ".rows_exact", static_cast<double>(d.rows_exact));
      report.metric(key + ".rows_approx", static_cast<double>(d.rows_approx));
      report.metric(key + ".rows_sampled_out",
                    static_cast<double>(d.rows_sampled_out));
      report.metric(key + ".summaries_sent",
                    static_cast<double>(d.summaries_sent));
      report.metric(key + ".summary_bytes",
                    static_cast<double>(d.summary_bytes));
      report.metric(key + ".rows_delivered",
                    static_cast<double>(r.rows_delivered));
      report.metric(key + ".rows_conserved", conserved ? 1.0 : 0.0);

      rows.push_back({scale.key, std::to_string(scale.devices),
                      "L" + std::to_string(pin), format_double(cost, 1),
                      format_double(speedup, 2),
                      d.ci_windows > 0 ? format_double(d.coverage(), 3) : "-",
                      d.ci_windows > 0 ? format_double(d.mean_half_width(), 4)
                                       : "-",
                      std::to_string(d.rows_sampled_out),
                      conserved ? "yes" : "NO"});
    }
  }
  std::printf("%s\n",
              render_table({"scale", "devices", "pin", "edge cost", "speedup",
                            "CI cover", "half-width", "rows shed",
                            "conserved"},
                           rows)
                  .c_str());

  // ---- Free-running acceptance scenario ------------------------------------
  // Compound chaos + load storm with bands tight enough that the ladder
  // must move, then the built-in calm settle: the contract is that every
  // edge ends back at L0 with the ledger closed and no flapping (asserted
  // at unit scale in test_degrade; re-checked here at bench scale).
  {
    sim::FleetConfig config =
        storm_config(smoke ? 20 : 200, smoke ? 2 : 4, 40.0, 9001);
    config.degrade.dead_letter_rate_ref = 0.25;
    config.degrade.thresholds.up = {0.2, 0.6, 1.2};
    config.degrade.thresholds.down = {0.1, 0.4, 0.9};
    config.degrade.thresholds.dwell_s = 3.0;
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    const sim::DegradationLedger& d = r.degradation;
    bool all_l0 = true;
    std::uint64_t max_level_seen = 0;
    for (const sim::EdgeDegradeTimeline& tl : d.edges) {
      all_l0 = all_l0 && tl.final_level == 0;
      for (const sim::DegradeTransitionEntry& tr : tl.transitions) {
        max_level_seen =
            std::max(max_level_seen, static_cast<std::uint64_t>(tr.to));
      }
    }
    const bool ladder_ok = all_l0 && d.transitions_up > 0 && r.rows_conserved();
    all_ok = all_ok && ladder_ok;
    report.metric("ladder.transitions_up",
                  static_cast<double>(d.transitions_up));
    report.metric("ladder.transitions_down",
                  static_cast<double>(d.transitions_down));
    report.metric("ladder.max_level_seen",
                  static_cast<double>(max_level_seen));
    report.metric("ladder.all_edges_l0", all_l0 ? 1.0 : 0.0);
    report.metric("ladder.rows_conserved", r.rows_conserved() ? 1.0 : 0.0);
    report.metric("ladder.load_storms",
                  static_cast<double>(r.faults.load_storms));
    std::printf("free-running ladder: %llu up / %llu down, peak L%llu, "
                "all edges back at L0: %s, conserved: %s\n\n",
                static_cast<unsigned long long>(d.transitions_up),
                static_cast<unsigned long long>(d.transitions_down),
                static_cast<unsigned long long>(max_level_seen),
                all_l0 ? "yes" : "NO",
                r.rows_conserved() ? "yes" : "NO");
  }

  const bool gate_met = all_ok;
  std::printf("degradation gates (CI coverage >= 90%%, L2 edge cost <= 1/3 "
              "of L0 at 1k+ devices, ladder settles at L0): %s\n\n",
              gate_met ? "met" : "MISSED");

  // ---- Determinism witness -------------------------------------------------
  // Same seed, same config: FleetReport and degradation JSON byte-identical.
  sim::FleetConfig again_cfg = storm_config(
      scales[0].devices, scales[0].edges, scales[0].duration_s, 9001);
  again_cfg.degrade.pin_level = 0;
  sim::FleetSim again(again_cfg);
  const sim::FleetReport again_report = again.run();
  const bool deterministic =
      again_report.to_json() == witness.to_json() &&
      sim::degradation_to_json(again_report.degradation) ==
          sim::degradation_to_json(witness.degradation);
  report.metric("determinism_ok", deterministic ? 1.0 : 0.0);
  std::printf("determinism: re-run of the pinned-L0 fleet is %s\n",
              deterministic ? "byte-identical" : "DIVERGENT");

  report.write();
  return gate_met && deterministic ? 0 : 1;
}
