#pragma once

// Shared machine-readable bench reporting. Every bench keeps its
// human-readable paper-style tables on stdout and additionally writes
// BENCH_<name>.json — wall time, throughput and the key quality metrics —
// so the perf trajectory can be compared across PRs without scraping text.
//
//   IOTML_BENCH_DIR=<dir>   write the JSON there instead of the CWD
//   IOTML_BENCH_JSON=0      disable the JSON artifact entirely
//
// Timing goes through obs::now_us() — the invariant lint (rule R6) keeps
// raw std::chrono clock reads out of bench code too.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>

#include <fstream>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

// Build-configuration stamps, injected per-target by bench/CMakeLists.txt so
// a BENCH_*.json records exactly which toolchain and preset produced it.
// Compiling a bench outside that CMake wiring still works — the fields
// degrade to "unknown"/"none".
#ifndef IOTML_BUILD_FLAGS
#define IOTML_BUILD_FLAGS "unknown"
#endif
#ifndef IOTML_SANITIZE_PRESET
#define IOTML_SANITIZE_PRESET "none"
#endif

namespace iotml::bench {

class BenchReport {
 public:
  // det-sanctioned: start_us_ only feeds elapsed_s(), which write() zeroes in deterministic mode
  explicit BenchReport(std::string name) : name_(std::move(name)), start_us_(obs::now_us()) {}

  /// Record a quality/size metric (accuracy, rows, missing rate, ...).
  void metric(const std::string& key, double value) { metrics_[key] = value; }

  /// Record a free-form note (strategy names, dataset descriptions, ...).
  void note(const std::string& key, const std::string& value) { notes_[key] = value; }

  /// Record the master seed the bench ran under. Benches that sweep several
  /// seeds should stamp the first one and note the rest.
  void seed(std::uint64_t value) {
    seed_ = value;
    has_seed_ = true;
  }

  /// Deterministic artifact mode: zero out the measured-time fields
  /// (unix_time_ms, wall_time_s) so two runs with the same seed write
  /// byte-identical JSON. Benches whose artifact doubles as a determinism
  /// witness (bench_chaos) enable this and keep wall-clock numbers off
  /// their metric set too.
  void deterministic() { deterministic_ = true; }

  double elapsed_s() const { return static_cast<double>(obs::now_us() - start_us_) * 1e-6; }

  /// items per elapsed second so far — call right before write().
  double throughput(double items) const {
    const double s = elapsed_s();
    return s > 0.0 ? items / s : 0.0;
  }

  /// Write BENCH_<name>.json (prints a one-line pointer so humans find the
  /// artifact). Returns the path written, or "" when disabled/unwritable.
  std::string write() const {
    const char* toggle = std::getenv("IOTML_BENCH_JSON");  // NOLINT(concurrency-mt-unsafe)
    if (toggle != nullptr && std::string(toggle) == "0") return "";
    const char* dir = std::getenv("IOTML_BENCH_DIR");  // NOLINT(concurrency-mt-unsafe)
    std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string();
    path += "BENCH_" + name_ + ".json";

    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[bench-report] cannot write %s\n", path.c_str());
      return "";
    }
    out << "{\n";
    out << "  \"bench\": \"" << obs::json_escape(name_) << "\",\n";
    out << "  \"unix_time_ms\": " << (deterministic_ ? 0 : obs::unix_time_ms()) << ",\n";
    out << "  \"wall_time_s\": " << obs::json_number(deterministic_ ? 0.0 : elapsed_s())
        << ",\n";
    if (has_seed_) out << "  \"seed\": " << seed_ << ",\n";
    out << "  \"build\": {\"compiler\": \"" << obs::json_escape(__VERSION__)
        << "\", \"flags\": \"" << obs::json_escape(IOTML_BUILD_FLAGS)
        << "\", \"sanitizers\": \"" << obs::json_escape(IOTML_SANITIZE_PRESET)
        << "\"},\n";
    // Snapshot of the process-global instrument registry: what the runtime
    // actually counted while this bench ran (channel retries, fault events,
    // kernel builds, ...). Deterministic mode drops wall-clock instruments —
    // names containing "wall" or ending in "_us" — so the artifact stays a
    // byte-stable function of (config, seed); everything else is event
    // counts, which replay exactly.
    std::ostringstream reg;
    if (deterministic_) {
      obs::registry().write_json(reg, [](const std::string& name) {
        return name.find("wall") == std::string::npos &&
               (name.size() < 3 || name.compare(name.size() - 3, 3, "_us") != 0);
      });
    } else {
      obs::registry().write_json(reg);
    }
    std::string reg_json = reg.str();
    while (!reg_json.empty() && reg_json.back() == '\n') reg_json.pop_back();
    out << "  \"registry\": " << reg_json << ",\n";

    out << "  \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : metrics_) {
      out << (first ? "" : ",") << "\n    \"" << obs::json_escape(key)
          << "\": " << obs::json_number(value);
      first = false;
    }
    out << "\n  },\n  \"notes\": {";
    first = true;
    for (const auto& [key, value] : notes_) {
      out << (first ? "" : ",") << "\n    \"" << obs::json_escape(key) << "\": \""
          << obs::json_escape(value) << "\"";
      first = false;
    }
    out << "\n  }\n}\n";
    std::printf("[bench-report] wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  std::int64_t start_us_;
  std::uint64_t seed_ = 0;
  bool has_seed_ = false;
  bool deterministic_ = false;
  std::map<std::string, double> metrics_;
  std::map<std::string, std::string> notes_;
};

}  // namespace iotml::bench
