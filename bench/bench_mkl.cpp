// E-MKL: Section I/III's structural-awareness claim — multiple kernels that
// respect the facet structure beat a single monolithic kernel, especially
// when facets have heterogeneous quality. Sweeps the number of noise views
// and the noise scale; compares kernel combiners.

#include <cstdio>
#include <numeric>

#include "bench_report.hpp"
#include "core/partition_kernels.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "kernels/mkl.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

double evaluate_gram(const la::Matrix& full_gram, const std::vector<int>& y) {
  Rng cv(3);  // rng-stream: cv-folds
  return kernels::cv_accuracy_precomputed(full_gram, y, 5, cv);
}

}  // namespace

int main() {
  std::printf("E-MKL: faceted multiple kernels vs a monolithic kernel\n");
  std::printf("(one informative view + k noise views of stddev sigma)\n\n");

  bench::BenchReport bench_report("mkl");
  Rng rng(11);  // rng-stream: data
  std::vector<std::vector<std::string>> rows;
  std::size_t configs = 0;

  for (std::size_t noise_views : {1u, 3u, 5u}) {
    for (double sigma : {1.0, 2.5, 4.0}) {
      std::vector<data::ViewSpec> specs{{3, 3.0, 1.0, true}};
      for (std::size_t v = 0; v < noise_views; ++v) {
        specs.push_back({3, 0.0, sigma, false});
      }
      data::FacetedData fd = data::make_faceted_gaussian(200, specs, rng);
      const auto& y = fd.samples.y;

      // Monolithic RBF over the concatenation.
      std::vector<std::size_t> all(fd.samples.dim());
      std::iota(all.begin(), all.end(), std::size_t{0});
      core::BlockGramCache cache(fd.samples.x);
      const double acc_mono = evaluate_gram(cache.gram_for(all), y);

      // Per-view kernels with three combiners.
      std::vector<la::Matrix> grams;
      for (const auto& view : fd.views) grams.push_back(cache.gram_for(view));

      const double acc_uniform = evaluate_gram(
          kernels::combine_grams(grams, kernels::uniform_weights(grams.size())), y);
      const double acc_align = evaluate_gram(
          kernels::combine_grams(grams, kernels::alignment_weights(grams, y)), y);
      const double acc_opt = evaluate_gram(
          kernels::combine_grams(grams, kernels::optimize_alignment_weights(grams, y)),
          y);

      rows.push_back({std::to_string(noise_views), format_double(sigma, 1),
                      format_double(acc_mono, 3), format_double(acc_uniform, 3),
                      format_double(acc_align, 3), format_double(acc_opt, 3)});

      const std::string key =
          "k" + std::to_string(noise_views) + "_sigma" + format_double(sigma, 1);
      bench_report.metric("accuracy_monolithic." + key, acc_mono);
      bench_report.metric("accuracy_mkl_uniform." + key, acc_uniform);
      bench_report.metric("accuracy_mkl_aligned." + key, acc_align);
      bench_report.metric("accuracy_mkl_optimized." + key, acc_opt);
      ++configs;
    }
  }

  std::printf("%s\n",
              render_table({"noise views", "sigma", "monolithic", "MKL uniform",
                            "MKL aligned", "MKL optimized"},
                           rows)
                  .c_str());
  std::printf("shape check: the monolithic kernel degrades as noise views and\n"
              "sigma grow (they dominate the global distance); alignment-weighted\n"
              "MKL holds its accuracy by downweighting the noise facets.\n");

  bench_report.metric("configs", static_cast<double>(configs));
  bench_report.metric("configs_per_s",
                      bench_report.throughput(static_cast<double>(configs)));
  bench_report.note("combiners", "monolithic | uniform | aligned | optimized");
  bench_report.write();
  return 0;
}
