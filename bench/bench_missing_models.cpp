// E-MISS: the Section IV.A single-player decision —
//   (a) impute missing values and accept prediction inaccuracy, or
//   (b) learn one model per combination of available features.
// Sweeps the missing rate and reports accuracy and training cost (models
// trained, rows consumed) for both strategies, plus the Pareto view a
// single controller would optimize over.

#include <cstdio>

#include "bench_report.hpp"
#include "data/synthetic.hpp"
#include "game/pareto.hpp"
#include "learners/decision_tree.hpp"
#include "learners/pattern_ensemble.hpp"
#include "pipeline/preparation.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;

  std::printf("E-MISS: imputation vs one-model-per-availability-pattern\n");
  std::printf("(phone fleet, decision trees, missing-rate sweep)\n\n");

  bench::BenchReport bench_report("missing_models");
  std::vector<std::vector<std::string>> rows;
  // Pareto comparison only makes sense at a fixed problem difficulty; collect
  // the objective points at the harshest missing rate.
  const double pareto_missing = 0.6;
  std::vector<std::vector<double>> objectives;  // (accuracy, -models) per point
  std::vector<std::string> labels;

  for (double missing : {0.0, 0.15, 0.3, 0.45, 0.6}) {
    Rng rng(17);  // rng-stream: data
    data::Dataset train = data::make_phone_fleet(900, 0.02, rng);
    data::Dataset test = data::make_phone_fleet(400, 0.02, rng);
    for (auto* ds : {&train, &test}) {
      for (std::size_t f = 0; f < ds->num_columns(); ++f) {
        for (std::size_t r = 0; r < ds->rows(); ++r) {
          if (rng.bernoulli(missing)) ds->column(f).set_missing(r);
        }
      }
    }

    // (a) impute (mode/mean) then one tree.
    {
      data::Dataset repaired_train = train;
      data::Dataset repaired_test = test;
      Rng prep(1);  // rng-stream: prep
      pipeline::impute(repaired_train, pipeline::ImputeStrategy::kMean, prep);
      pipeline::impute(repaired_test, pipeline::ImputeStrategy::kMean, prep);
      learners::DecisionTree tree;
      tree.fit(repaired_train);
      const double acc = tree.accuracy(repaired_test);
      rows.push_back({format_double(missing, 2), "impute+tree",
                      format_double(acc, 3), "1",
                      std::to_string(repaired_train.rows())});
      bench_report.metric("accuracy.impute_tree.m" + format_double(missing, 2), acc);
      if (missing == pareto_missing) {
        objectives.push_back({acc, -1.0});
        labels.push_back("impute+tree");
      }
    }

    // (b) per-pattern ensemble (no imputation).
    {
      learners::PatternEnsemble ensemble(
          [] { return std::make_unique<learners::DecisionTree>(); }, 10);
      ensemble.fit(train);
      const double acc = ensemble.accuracy(test);
      rows.push_back({format_double(missing, 2), "pattern-ensemble",
                      format_double(acc, 3), std::to_string(ensemble.num_models()),
                      std::to_string(ensemble.total_training_rows())});
      bench_report.metric("accuracy.pattern_ensemble.m" + format_double(missing, 2), acc);
      bench_report.metric("models.pattern_ensemble.m" + format_double(missing, 2),
                          static_cast<double>(ensemble.num_models()));
      if (missing == pareto_missing) {
        objectives.push_back({acc, -static_cast<double>(ensemble.num_models())});
        labels.push_back("pattern-ensemble");
      }
    }

    // (c) single tree with its built-in missing handling (baseline).
    {
      learners::DecisionTree tree;
      tree.fit(train);
      const double acc = tree.accuracy(test);
      rows.push_back({format_double(missing, 2), "tree(majority-branch)",
                      format_double(acc, 3), "1", std::to_string(train.rows())});
      bench_report.metric("accuracy.tree_majority.m" + format_double(missing, 2), acc);
      if (missing == pareto_missing) {
        objectives.push_back({acc, -1.0});
        labels.push_back("tree(majority-branch)");
      }
    }
  }

  std::printf("%s\n",
              render_table({"missing rate", "strategy", "accuracy", "models",
                            "training rows"},
                           rows)
                  .c_str());

  // Single-player multi-objective view at the harshest missing rate.
  std::printf("Pareto view at missing rate %.2f (maximize accuracy, minimize models):\n",
              pareto_missing);
  for (std::size_t idx : game::pareto_front(objectives)) {
    std::printf("  %-18s acc=%.3f models=%.0f\n", labels[idx].c_str(),
                objectives[idx][0], -objectives[idx][1]);
  }

  std::printf("\nshape check: at low missing rates imputation matches the ensemble\n"
              "at a fraction of the cost; as missingness grows the per-pattern\n"
              "ensemble holds accuracy while its model count multiplies — the\n"
              "exact trade-off the paper's single player must strike.\n");

  bench_report.metric("pareto_points", static_cast<double>(objectives.size()));
  bench_report.note("strategies", "impute+tree | pattern-ensemble | tree(majority-branch)");
  bench_report.write();
  return 0;
}
