// Timing-level microbenchmarks (google-benchmark) for the primitives the
// lattice search spends its time in: partition enumeration, cover
// generation, Gram computation, SVM training, and game solving.

#include <benchmark/benchmark.h>

#include "combinatorics/boolean_lattice.hpp"
#include "combinatorics/partition.hpp"
#include "core/partition_kernels.hpp"
#include "data/synthetic.hpp"
#include "game/matrix_game.hpp"
#include "kernels/svm.hpp"
#include "roughsets/roughsets.hpp"

namespace {

using namespace iotml;

void BM_PartitionEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    comb::PartitionEnumerator e(n);
    std::size_t count = 0;
    while (e.has_next()) {
      benchmark::DoNotOptimize(e.next());
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PartitionEnumeration)->Arg(6)->Arg(8)->Arg(10);

void BM_UpwardCovers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = comb::SetPartition::discrete(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.upward_covers());
  }
}
BENCHMARK(BM_UpwardCovers)->Arg(8)->Arg(16);

void BM_BooleanChainDecomposition(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    comb::BooleanChainDecomposition d(n);
    benchmark::DoNotOptimize(d.chains().size());
  }
}
BENCHMARK(BM_BooleanChainDecomposition)->Arg(8)->Arg(12)->Arg(16);

void BM_BlockGram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);  // rng-stream: gram-data
  data::Samples s = data::make_blobs(n, 6, 2.0, 1.0, rng);
  for (auto _ : state) {
    core::BlockGramCache cache(s.x);
    benchmark::DoNotOptimize(cache.gram_for({0, 1, 2}));
  }
}
BENCHMARK(BM_BlockGram)->Arg(100)->Arg(200)->Arg(400);

void BM_SvmTrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);  // rng-stream: svm-data
  data::Samples s = data::make_blobs(n, 4, 3.0, 1.0, rng);
  core::BlockGramCache cache(s.x);
  const la::Matrix gram = cache.gram_for({0, 1, 2, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::train_svm(gram, s.y));
  }
}
BENCHMARK(BM_SvmTrain)->Arg(80)->Arg(160)->Arg(320);

void BM_IndiscernibilityRelation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);  // rng-stream: indisc-data
  data::Dataset fleet = data::make_phone_fleet(n, 0.1, rng);
  for (auto _ : state) {
    rough::IndiscernibilityRelation rel(fleet, {0, 1, 2});
    benchmark::DoNotOptimize(rel.num_classes());
  }
}
BENCHMARK(BM_IndiscernibilityRelation)->Arg(500)->Arg(2000);

void BM_ZeroSumSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);  // rng-stream: game-data
  la::Matrix payoff(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) payoff(i, j) = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(game::solve_zero_sum(payoff, 1e-2));
  }
}
BENCHMARK(BM_ZeroSumSolve)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
