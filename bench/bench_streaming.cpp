// E-STREAM: derived experiment for the paper's run-time variability claim
// (Section I: "input data latency, availability, and veracity ... may widely
// vary, depending on the conditions in the field"). Compares three policies
// on a stream whose concept changes twice:
//   frozen    : train on the first 1000 records, never update
//   always-on : incremental learner, no drift handling
//   adaptive  : incremental learner + DDM drift detector with reset
// Reported: accuracy per epoch between concept changes.

#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "learners/online.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;
using namespace iotml::learners;

struct StreamPoint {
  std::vector<double> x;
  int label;
};

/// Concept c in {0,1,2}: decision axis rotates between features.
StreamPoint draw(Rng& rng, int concept_id) {
  const bool positive = rng.bernoulli(0.5);
  std::vector<double> x{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0),
                        rng.normal(0.0, 1.0)};
  const std::size_t axis = static_cast<std::size_t>(concept_id);
  x[axis] += positive ? 2.5 : -2.5;
  return {x, positive ? 1 : 0};
}

}  // namespace

int main() {
  std::printf("E-STREAM: concept drift on the device tier (axis rotates at\n");
  std::printf("t=3000 and t=6000; 9000 records total)\n\n");

  bench::BenchReport report("streaming");
  report.seed(88);
  report.note("policies", "frozen, always-on, adaptive(DDM)");

  Rng rng(88);  // rng-stream: stream-data
  const std::size_t epoch = 3000;

  IncrementalNaiveBayes frozen(3);
  IncrementalNaiveBayes always_on(3);
  AdaptiveStreamClassifier adaptive(3);

  std::vector<std::size_t> frozen_hits(3, 0), always_hits(3, 0), adaptive_hits(3, 0);

  for (std::size_t t = 0; t < 3 * epoch; ++t) {
    const int concept_id = static_cast<int>(t / epoch);
    const StreamPoint point = draw(rng, concept_id);
    const std::size_t e = t / epoch;

    // frozen: learns only during the first 1000 records.
    if (frozen.num_classes() >= 2) {
      frozen_hits[e] += frozen.predict(point.x) == point.label ? 1 : 0;
    }
    if (t < 1000) frozen.observe(point.x, point.label);

    // always-on: test-then-train, never resets.
    if (always_on.num_classes() >= 2) {
      always_hits[e] += always_on.predict(point.x) == point.label ? 1 : 0;
    }
    always_on.observe(point.x, point.label);

    // adaptive.
    adaptive_hits[e] += adaptive.process(point.x, point.label) == point.label ? 1 : 0;
  }

  std::vector<std::vector<std::string>> rows;
  const char* names[] = {"concept A (0-3000)", "concept B (3000-6000)",
                         "concept C (6000-9000)"};
  const char* keys[] = {"concept_a", "concept_b", "concept_c"};
  for (std::size_t e = 0; e < 3; ++e) {
    const double frozen_acc = static_cast<double>(frozen_hits[e]) / epoch;
    const double always_acc = static_cast<double>(always_hits[e]) / epoch;
    const double adaptive_acc = static_cast<double>(adaptive_hits[e]) / epoch;
    report.metric(std::string("acc.frozen.") + keys[e], frozen_acc);
    report.metric(std::string("acc.always_on.") + keys[e], always_acc);
    report.metric(std::string("acc.adaptive.") + keys[e], adaptive_acc);
    rows.push_back({names[e], format_double(frozen_acc, 3),
                    format_double(always_acc, 3), format_double(adaptive_acc, 3)});
  }
  std::printf("%s\n", render_table({"epoch", "frozen", "always-on (no reset)",
                                    "adaptive (DDM reset)"},
                                   rows)
                          .c_str());
  std::printf("drifts detected by the adaptive policy: %zu (expected 2)\n\n",
              adaptive.drifts_detected());
  std::printf("shape check: frozen collapses to chance after the first change;\n"
              "the never-resetting learner is dragged down by stale statistics;\n"
              "the adaptive policy re-converges within each epoch.\n");

  report.metric("records", static_cast<double>(3 * epoch));
  report.metric("drifts_detected", static_cast<double>(adaptive.drifts_detected()));
  report.metric("throughput_records_per_s", report.throughput(static_cast<double>(3 * epoch)));
  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return 0;
}
