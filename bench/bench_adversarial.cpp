// E-ADV: Section II.B's two adversarial-learning archetypes, reproduced:
//   1. Huang et al.: a learner facing an adversarial opponent — standard vs
//      adversarially trained SVM under an L-infinity attack-budget sweep.
//   2. Goodfellow et al.: the zero-sum generative game — the toy GAN's
//      generator converging to the data distribution.

#include <cstdio>

#include "adversarial/gan.hpp"
#include "adversarial/training.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::adversarial;

  std::printf("E-ADV part 1: robustness under attack-budget sweep\n\n");
  {
    // Concentric-circles concept with an RBF SVM: the clean decision surface
    // hugs the inner class, so small L-inf shifts cross it. Adversarial
    // training pushes the surface outward at a tiny clean-accuracy cost.
    Rng rng(13);  // rng-stream: clean-data
    data::Samples all = data::make_circles(420, 1.0, 2.2, 0.18, rng);
    Rng split_rng(3);  // rng-stream: splitter
    auto split = data::train_test_split(all.size(), 0.3, split_rng);
    data::Samples train = data::select_rows(all, split.train);
    data::Samples test = data::select_rows(all, split.test);

    const kernels::SvmParams svm{.c = 10.0};
    AdversarialTrainer standard(std::make_unique<kernels::RbfKernel>(1.0),
                                {.epsilon = 0.3, .rounds = 1, .svm = svm});
    standard.fit(train);
    AdversarialTrainer hardened(std::make_unique<kernels::RbfKernel>(1.0),
                                {.epsilon = 0.3, .rounds = 6, .svm = svm});
    hardened.fit(train);

    std::vector<std::vector<std::string>> rows;
    for (double eps : {0.0, 0.15, 0.3, 0.45, 0.6}) {
      rows.push_back({format_double(eps, 2),
                      format_double(standard.attacked_accuracy(test, eps), 3),
                      format_double(hardened.attacked_accuracy(test, eps), 3)});
    }
    std::printf("%s\n", render_table({"attack budget eps", "standard SVM",
                                      "adversarially trained"},
                                     rows)
                            .c_str());
    std::printf("shape check: both degrade as eps grows; the adversarially\n"
                "trained model trades a sliver of clean accuracy for a large\n"
                "advantage at and beyond the training budget (0.3).\n\n");
  }

  std::printf("E-ADV part 2: toy GAN converging to N(3.0, 1.5^2)\n\n");
  {
    Rng rng(29);  // rng-stream: attack-data
    GanParams params;
    params.iterations = 1500;
    params.init_mu = -4.0;
    params.init_sigma = 0.5;
    ToyGan gan(params);
    gan.fit(3.0, 1.5, rng);

    std::vector<std::vector<std::string>> rows;
    const auto& history = gan.history();
    for (std::size_t it : {std::size_t{0}, std::size_t{150}, std::size_t{375},
                           std::size_t{750}, history.size() - 1}) {
      const GanTrace& t = history[it];
      rows.push_back({std::to_string(it), format_double(t.mu, 3),
                      format_double(t.sigma, 3),
                      format_double(t.discriminator_real_mean, 3),
                      format_double(t.discriminator_fake_mean, 3)});
    }
    std::printf("%s\n", render_table({"iteration", "G mu", "G sigma", "D(real)",
                                      "D(fake)"},
                                     rows)
                            .c_str());
    std::printf("final generator: mu=%.3f (target 3.0), sigma=%.3f (target 1.5)\n",
                gan.mu(), gan.sigma());
    std::printf("shape check: the zero-sum game drives G's parameters to the\n"
                "target and D's real/fake scores toward the uninformative 0.5.\n");
  }
  return 0;
}
