// E-DEPLOY: deploy-and-score vs ship-every-row over the simulated fleet.
// For each compilable model family (decision tree, logistic-head linear,
// naive Bayes) the bench runs a 100-device fleet with the deploy phase on:
// the core learns the analytics concept, compiles it, quantizes to int8,
// broadcasts the artifact over the lossy downlinks, and devices score a
// 30 s window locally, uplinking one bit per row. Reported per family:
//
//   * artifact bytes, float32 vs int8 (the quantizer's footprint story)
//   * per-row inference cost (multiply-adds / comparisons / table lookups)
//   * core-holdout accuracy delta from quantization (must stay small)
//   * uplink bytes, raw-row counterfactual vs predictions (the paper's
//     reason to move the model to the data — expect >= 5x reduction)
//
// IOTML_DEPLOY_SMOKE=1 shrinks the fleet to CI size while keeping every
// metric key present, so the smoke job can validate BENCH_deploy.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "deploy/compiled_model.hpp"
#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_DEPLOY_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  constexpr std::uint64_t kSeed = 404;
  std::printf("E-DEPLOY: compile, quantize and score on-device%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("deploy");
  report.note("mode", smoke ? "smoke" : "full");
  report.note("precision", "int8");
  report.seed(kSeed);

  const std::vector<deploy::ModelKind> kinds{
      deploy::ModelKind::kTree, deploy::ModelKind::kLinear,
      deploy::ModelKind::kNaiveBayes};

  std::vector<std::vector<std::string>> rows;
  bool ok = true;
  for (deploy::ModelKind kind : kinds) {
    sim::FleetConfig config;
    config.devices = smoke ? 20 : 100;
    config.edges = smoke ? 2 : 4;
    config.duration_s = smoke ? 20.0 : 60.0;
    config.seed = kSeed;
    config.deploy.enabled = true;
    config.deploy.model = kind;
    config.deploy.precision = deploy::Precision::kInt8;
    config.deploy.score_window_s = smoke ? 10.0 : 30.0;

    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    const sim::DeploySummary& d = r.deploy;
    const std::string key = d.model;

    const double footprint_ratio =
        d.artifact_bytes_deployed > 0
            ? static_cast<double>(d.artifact_bytes_float32) /
                  static_cast<double>(d.artifact_bytes_deployed)
            : 0.0;
    const double delta_points =
        100.0 * (d.holdout_accuracy_deployed - d.holdout_accuracy_float);
    const double uplink_reduction =
        d.uplink_prediction_bytes > 0
            ? static_cast<double>(d.uplink_raw_bytes) /
                  static_cast<double>(d.uplink_prediction_bytes)
            : 0.0;

    report.metric("artifact_bytes.f32." + key, static_cast<double>(d.artifact_bytes_float32));
    report.metric("artifact_bytes.int8." + key, static_cast<double>(d.artifact_bytes_deployed));
    report.metric("footprint_ratio." + key, footprint_ratio);
    report.metric("cost_multiply_adds." + key, static_cast<double>(d.cost_multiply_adds));
    report.metric("cost_comparisons." + key, static_cast<double>(d.cost_comparisons));
    report.metric("cost_table_lookups." + key, static_cast<double>(d.cost_table_lookups));
    report.metric("holdout_acc_f32." + key, d.holdout_accuracy_float);
    report.metric("holdout_acc_int8." + key, d.holdout_accuracy_deployed);
    report.metric("holdout_delta_points." + key, delta_points);
    report.metric("uplink_raw_bytes." + key, static_cast<double>(d.uplink_raw_bytes));
    report.metric("uplink_pred_bytes." + key, static_cast<double>(d.uplink_prediction_bytes));
    report.metric("uplink_reduction." + key, uplink_reduction);
    report.metric("devices_deployed." + key, static_cast<double>(d.devices_deployed));
    report.metric("rows_scored." + key, static_cast<double>(d.rows_scored));
    report.metric("device_accuracy." + key, d.device_accuracy);

    rows.push_back({key, std::to_string(d.artifact_bytes_float32),
                    std::to_string(d.artifact_bytes_deployed),
                    format_double(footprint_ratio, 2),
                    std::to_string(d.cost_multiply_adds + d.cost_comparisons +
                                   d.cost_table_lookups),
                    format_double(d.holdout_accuracy_float, 3),
                    format_double(d.holdout_accuracy_deployed, 3),
                    format_double(uplink_reduction, 1),
                    format_double(d.device_accuracy, 3)});

    // The bench doubles as an acceptance gate for the two headline claims.
    if (delta_points < -2.0) {
      std::printf("FAIL: %s int8 holdout accuracy dropped %.2f points (> 2 allowed)\n",
                  key.c_str(), -delta_points);
      ok = false;
    }
    if (!smoke && uplink_reduction < 5.0) {
      std::printf("FAIL: %s uplink reduction %.1fx (< 5x required)\n", key.c_str(),
                  uplink_reduction);
      ok = false;
    }
    if (d.devices_deployed == 0) {
      std::printf("FAIL: %s artifact reached no device\n", key.c_str());
      ok = false;
    }
  }

  std::printf("%s\n",
              render_table({"model", "bytes f32", "bytes int8", "shrink", "ops/row",
                            "holdout f32", "holdout int8", "uplink shrink",
                            "device acc"},
                           rows)
                  .c_str());
  std::printf("shape check: int8 artifacts should be ~2-4x smaller with a holdout\n"
              "delta within 2 points; shipping predictions instead of rows should\n"
              "cut uplink bytes by well over 5x.\n");

  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return ok ? 0 : 1;
}
