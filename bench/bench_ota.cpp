// E-OTA: the epochal delta-update loop — downlink bytes per epoch vs the
// full-broadcast counterfactual and time-to-full-fleet-convergence at the
// small (100-device) and large (1000-device) scales, plus the compound-chaos
// scenario at the small scale, where resume rounds and full-image fallbacks
// must still leave the delta transport cheaper than naive re-broadcast.
//
// The headline gate is the ISSUE acceptance bound for the patch codec: a
// one-epoch tree retrain (same sensors, ~4% more rows, structure stable,
// a boundary threshold shifted) must diff to <= 30% of the full-image wire
// bytes. Restructured retrains are the codec's worst case — the fleet loop
// ships whichever of delta/full is cheaper, and the per-epoch ledger keeps
// both sides visible — but the common stable retrain is where the delta
// pipeline earns its keep, and this bench pins that ratio.
//
// Every metric in BENCH_ota.json is a pure function of (config, seed): the
// report runs in deterministic mode and the bench re-runs the small fleet
// to assert the FleetReport JSON is byte-identical.
//
// IOTML_OTA_SMOKE=1 shrinks the fleets to CI size while keeping every
// metric key present, so the ota-smoke job can validate the JSON shape.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "data/dataset.hpp"
#include "deploy/compile.hpp"
#include "learners/decision_tree.hpp"
#include "ota/patch.hpp"
#include "sim/fleet.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_OTA_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

// ---- Patch-codec gate scenario ---------------------------------------------

/// Five sensors, labels from a fixed box rule — the kind of concept a small
/// on-device tree represents exactly. Retraining on a modest row increment
/// keeps the tree structure and shifts boundary thresholds only.
data::Dataset gate_dataset(std::size_t rows) {
  Rng rng(1);  // rng-stream: gate-data
  data::Dataset ds;
  std::vector<double> t, h, w, p, l;
  std::vector<int> labels;
  for (std::size_t i = 0; i < rows; ++i) {
    const double temp = rng.uniform(0, 40);
    const double hum = rng.uniform(0, 100);
    const double wind = rng.uniform(0, 10);
    const double pres = rng.uniform(0, 1200);
    const double light = rng.uniform(0, 60);
    t.push_back(temp);
    h.push_back(hum);
    w.push_back(wind);
    p.push_back(pres);
    l.push_back(light);
    labels.push_back(temp >= 8 && temp <= 32 && hum >= 20 && hum <= 80 &&
                             wind >= 2 && pres >= 300 && light <= 45
                         ? 1
                         : 0);
  }
  auto& ct = ds.add_numeric_column("temperature");
  auto& ch = ds.add_numeric_column("humidity");
  auto& cw = ds.add_numeric_column("wind");
  auto& cp = ds.add_numeric_column("pressure");
  auto& cl = ds.add_numeric_column("light");
  for (double v : t) ct.push_numeric(v);
  for (double v : h) ch.push_numeric(v);
  for (double v : w) cw.push_numeric(v);
  for (double v : p) cp.push_numeric(v);
  for (double v : l) cl.push_numeric(v);
  ds.set_labels(labels);
  return ds;
}

std::vector<std::uint8_t> gate_image(std::size_t rows) {
  const data::Dataset ds = gate_dataset(rows);
  learners::DecisionTree tree;
  tree.fit(ds);
  return deploy::compile(tree, ds).encode();
}

// ---- Fleet scenarios -------------------------------------------------------

sim::FleetConfig fleet_config(std::size_t devices, std::size_t edges,
                              std::uint64_t seed) {
  sim::FleetConfig config;
  config.devices = devices;
  config.edges = edges;
  config.duration_s = 24.0;
  config.seed = seed;
  // Tight flush cadence so rows reach the core before the first epoch.
  config.device_flush_s = 2.0;
  config.edge_flush_s = 3.0;
  config.ota.enabled = true;
  config.ota.epochs = 3;
  return config;
}

void enable_compound_chaos(sim::FleetConfig& config) {
  config.faults.edge_crashes = 1.0;
  config.faults.edge_downtime_mean_s = 3.0;
  config.faults.device_churns = 5.0;
  config.faults.device_offtime_mean_s = 2.0;
  config.chaos.partitions = 1.0;
  config.chaos.partition_mean_s = 4.0;
  config.chaos.loss_bursts = 1.0;
  config.chaos.burst_drop_prob = 0.4;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_corrupt_prob = 0.1;
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.backoff_base_s = 0.05;
  config.channel.backoff_cap_s = 1.0;
  config.channel.max_attempts = 6;
  config.checkpoint_interval_s = 2.0;
  config.device_buffer_rows = 4096;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::printf("E-OTA: epochal delta updates vs full re-broadcast%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("ota");
  report.deterministic();
  report.note("mode", smoke ? "smoke" : "full");
  report.seed(2026);

  // ---- Gate: one-epoch stable retrain must diff to <= 30% ------------------
  const std::vector<std::uint8_t> base_image = gate_image(2000);
  const std::vector<std::uint8_t> next_image = gate_image(2080);
  const std::vector<std::uint8_t> delta_wire =
      ota::diff(base_image, next_image).encode();
  const std::vector<std::uint8_t> full_wire =
      ota::diff({}, next_image).encode();
  const double gate_ratio = static_cast<double>(delta_wire.size()) /
                            static_cast<double>(full_wire.size());
  const bool gate_met = gate_ratio <= 0.30;
  report.metric("gate.image_bytes", static_cast<double>(next_image.size()));
  report.metric("gate.delta_wire_bytes", static_cast<double>(delta_wire.size()));
  report.metric("gate.full_wire_bytes", static_cast<double>(full_wire.size()));
  report.metric("gate.delta_ratio", gate_ratio);
  report.metric("gate.met", gate_met ? 1.0 : 0.0);
  std::printf("patch-codec gate (one-epoch tree retrain, 2000 -> 2080 rows):\n"
              "  image %zu B, delta %zu B vs full %zu B -> ratio %.3f"
              " (gate <= 0.30: %s)\n\n",
              next_image.size(), delta_wire.size(), full_wire.size(),
              gate_ratio, gate_met ? "met" : "MISSED");

  // ---- Fleet sweep: savings and convergence at two scales ------------------
  struct Scale {
    const char* key;
    std::size_t devices;
    std::size_t edges;
    bool chaos;
  };
  const std::vector<Scale> scales = {
      {"fleet100", smoke ? std::size_t{20} : std::size_t{100},
       smoke ? std::size_t{2} : std::size_t{4}, false},
      {"fleet1000", smoke ? std::size_t{50} : std::size_t{1000},
       smoke ? std::size_t{2} : std::size_t{8}, false},
      {"fleet100_chaos", smoke ? std::size_t{20} : std::size_t{100},
       smoke ? std::size_t{2} : std::size_t{4}, true},
  };

  bool all_ok = true;
  sim::FleetReport witness;
  std::vector<std::vector<std::string>> rows;
  for (const Scale& scale : scales) {
    sim::FleetConfig config = fleet_config(scale.devices, scale.edges, 2026);
    if (scale.chaos) enable_compound_chaos(config);
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    if (scale.key == std::string("fleet100")) witness = r;
    const sim::OtaSummary& ota = r.deploy.ota;

    const double savings =
        ota.full_broadcast_bytes > 0
            ? 1.0 - static_cast<double>(ota.delta_downlink_bytes) /
                        static_cast<double>(ota.full_broadcast_bytes)
            : 0.0;
    const bool converged = ota.devices_on_head == scale.devices;
    all_ok = all_ok && r.rows_conserved() && ota.all_devices_verified;
    // The counterfactual is loss-free; under compound chaos the ack-retry
    // resends can exceed it (the naive pipeline would resend too, but that
    // is not what the ledger prices). Only the calm scales must beat it.
    if (!scale.chaos) {
      all_ok = all_ok && ota.delta_downlink_bytes < ota.full_broadcast_bytes;
    }

    const std::string key = scale.key;
    report.metric(key + ".delta_downlink_bytes",
                  static_cast<double>(ota.delta_downlink_bytes));
    report.metric(key + ".full_broadcast_bytes",
                  static_cast<double>(ota.full_broadcast_bytes));
    report.metric(key + ".downlink_savings", savings);
    report.metric(key + ".convergence_t_s",
                  converged ? ota.last_commit_t_s : -1.0);
    report.metric(key + ".devices_on_head",
                  static_cast<double>(ota.devices_on_head));
    report.metric(key + ".devices_stuck",
                  static_cast<double>(ota.devices_stuck));
    report.metric(key + ".promotions", static_cast<double>(ota.promotions));
    report.metric(key + ".rollbacks", static_cast<double>(ota.rollbacks));
    report.metric(key + ".resume_rounds",
                  static_cast<double>(ota.resume_rounds));
    report.metric(key + ".full_fallbacks",
                  static_cast<double>(ota.full_fallbacks));
    report.metric(key + ".all_devices_verified",
                  ota.all_devices_verified ? 1.0 : 0.0);
    report.metric(key + ".rows_conserved", r.rows_conserved() ? 1.0 : 0.0);

    rows.push_back(
        {scale.key, std::to_string(scale.devices),
         scale.chaos ? "compound" : "calm",
         std::to_string(ota.delta_downlink_bytes),
         std::to_string(ota.full_broadcast_bytes), format_double(savings, 3),
         converged ? format_double(ota.last_commit_t_s, 2) : "-",
         std::to_string(ota.devices_on_head) + "/" +
             std::to_string(scale.devices),
         ota.all_devices_verified ? "yes" : "NO"});
  }
  std::printf("%s\n",
              render_table({"scale", "devices", "faults", "delta B",
                            "full-bcast B", "savings", "converge s",
                            "on-head", "verified"},
                           rows)
                  .c_str());

  // ---- Per-epoch ledger of the calm small fleet ----------------------------
  std::vector<std::vector<std::string>> epoch_rows;
  for (const sim::OtaEpochEntry& e : witness.deploy.ota.epochs_log) {
    epoch_rows.push_back(
        {std::to_string(e.epoch), e.outcome, std::to_string(e.version_id),
         std::to_string(e.image_bytes), std::to_string(e.patch_bytes),
         std::to_string(e.delta_downlink_bytes),
         std::to_string(e.full_broadcast_bytes),
         std::to_string(e.devices_updated)});
  }
  std::printf("%s\n",
              render_table({"epoch", "outcome", "version", "image B",
                            "patch B", "downlink B", "counterfactual B",
                            "updated"},
                           epoch_rows)
                  .c_str());

  // ---- Determinism witness -------------------------------------------------
  // Same seed, same config: the FleetReport JSON must be byte-identical.
  sim::FleetSim again(fleet_config(scales[0].devices, scales[0].edges, 2026));
  const bool deterministic = again.run().to_json() == witness.to_json();
  report.metric("determinism_ok", deterministic ? 1.0 : 0.0);
  std::printf("determinism: re-run of the small fleet is %s\n",
              deterministic ? "byte-identical" : "DIVERGENT");

  report.write();
  return gate_met && all_ok && deterministic ? 0 : 1;
}
