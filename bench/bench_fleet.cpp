// E-FLEET: the fleet simulator under load — throughput as the fleet scales
// (10 / 100 / 1000 devices) and analytics accuracy as the device->edge drop
// rate grows (0% / 5% / 20%, no retransmits). The first sweep measures the
// simulator itself (events and rows processed per wall second); the second
// reproduces the paper's point that transport-layer data loss is an
// analytics problem, not just a networking one.
//
// IOTML_FLEET_SMOKE=1 shrinks both sweeps to CI size (fleet of 10, short
// windows) while keeping every metric key present, so the smoke job can
// validate the BENCH_fleet.json shape cheaply.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "obs/clock.hpp"
#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_FLEET_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::printf("E-FLEET: fleet simulator throughput and loss-vs-accuracy%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("fleet");
  report.note("mode", smoke ? "smoke" : "full");

  // ---- Throughput vs fleet size ---------------------------------------------
  std::vector<std::size_t> sizes{10};
  if (!smoke) {
    sizes.push_back(100);
    sizes.push_back(1000);
  }
  std::vector<std::vector<std::string>> size_rows;
  for (std::size_t n : sizes) {
    sim::FleetConfig config;
    config.devices = n;
    config.edges = std::max<std::size_t>(1, n / 25);
    config.duration_s = smoke ? 20.0 : 30.0;
    config.seed = 7;
    const std::int64_t start_us = obs::now_us();
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    const double wall_s =
        static_cast<double>(obs::now_us() - start_us) * 1e-6;
    const double rows_per_s =
        wall_s > 0.0 ? static_cast<double>(r.rows_delivered) / wall_s : 0.0;
    const double events_per_s =
        wall_s > 0.0 ? static_cast<double>(r.events) / wall_s : 0.0;

    const std::string key = "n" + std::to_string(n);
    report.metric("throughput_rows_per_s." + key, rows_per_s);
    report.metric("throughput_events_per_s." + key, events_per_s);
    report.metric("rows_delivered." + key, static_cast<double>(r.rows_delivered));
    report.metric("accuracy." + key, r.accuracy);

    size_rows.push_back({std::to_string(n), std::to_string(config.edges),
                         std::to_string(r.events), std::to_string(r.rows_delivered),
                         format_double(wall_s, 3), format_double(rows_per_s, 0),
                         format_double(r.accuracy, 3)});
  }
  std::printf("%s\n", render_table({"devices", "edges", "events", "rows delivered",
                                    "wall s", "rows/s", "accuracy"},
                                   size_rows)
                          .c_str());

  // ---- Accuracy vs drop rate ------------------------------------------------
  std::vector<std::vector<std::string>> drop_rows;
  struct DropPoint {
    double drop;
    const char* key;
  };
  for (const DropPoint& point :
       {DropPoint{0.0, "drop0"}, DropPoint{0.05, "drop5"}, DropPoint{0.20, "drop20"}}) {
    sim::FleetConfig config;
    config.devices = smoke ? 20 : 100;
    config.edges = smoke ? 2 : 4;
    config.duration_s = smoke ? 20.0 : 60.0;
    config.seed = 21;
    // Pure loss, no repair: retransmits off so the drop probability reaches
    // the analytics untamed.
    config.device_edge_link.drop_prob = point.drop;
    config.device_edge_link.max_retries = 0;
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    const double delivery_ratio =
        r.rows_generated > 0
            ? static_cast<double>(r.rows_delivered) / static_cast<double>(r.rows_generated)
            : 0.0;
    report.metric(std::string("accuracy.") + point.key, r.accuracy);
    report.metric(std::string("delivery_ratio.") + point.key, delivery_ratio);
    drop_rows.push_back({format_double(point.drop, 2), std::to_string(r.rows_generated),
                         std::to_string(r.rows_delivered), std::to_string(r.rows_lost),
                         format_double(delivery_ratio, 3), format_double(r.accuracy, 3)});
  }
  std::printf("%s\n", render_table({"drop prob", "rows generated", "rows delivered",
                                    "rows lost", "delivery ratio", "accuracy"},
                                   drop_rows)
                          .c_str());

  // ---- Observatory overhead -------------------------------------------------
  // Same fleet, observatory off vs on, at the largest sweep size. The
  // observatory is pure observation (ring buffers, a bounded journey log, no
  // RNG draws), so its events/sec cost must stay within 5% — the acceptance
  // bar for leaving it on in production runs. IOTML_OBSERVATORY=<dir> makes
  // the enabled run also write its artifacts there for tools/fleetscope.
  {
    sim::FleetConfig config;
    config.devices = smoke ? 10 : 1000;
    config.edges = std::max<std::size_t>(1, config.devices / 25);
    config.duration_s = smoke ? 20.0 : 15.0;
    config.seed = 7;

    // Machine noise (CI neighbors, cold caches) swamps a single off/on pair
    // at this scale — warm-up alone can swing wall time by 20%. Alternate
    // off/on twice and score each mode by its best wall time; the timed
    // enabled runs record in-memory only, artifact files are written after
    // the clock stops so the comparison is observation cost, not filesystem
    // cost.
    double off_best_s = std::numeric_limits<double>::infinity();
    double on_best_s = std::numeric_limits<double>::infinity();
    std::uint64_t events = 0;
    std::unique_ptr<sim::FleetSim> on_fleet;
    for (int round = 0; round < 2; ++round) {
      for (const bool enabled : {false, true}) {
        config.observatory.enabled = enabled;
        const std::int64_t start_us = obs::now_us();
        auto fleet = std::make_unique<sim::FleetSim>(config);
        const sim::FleetReport r = fleet->run();
        const double wall_s = static_cast<double>(obs::now_us() - start_us) * 1e-6;
        events = r.events;
        if (enabled) {
          on_best_s = std::min(on_best_s, wall_s);
          on_fleet = std::move(fleet);
        } else {
          off_best_s = std::min(off_best_s, wall_s);
        }
      }
    }
    const double off_events_per_s =
        off_best_s > 0.0 ? static_cast<double>(events) / off_best_s : 0.0;
    const double on_events_per_s =
        on_best_s > 0.0 ? static_cast<double>(events) / on_best_s : 0.0;

    const char* artifact_dir = std::getenv("IOTML_OBSERVATORY");  // NOLINT(concurrency-mt-unsafe)
    if (artifact_dir != nullptr && *artifact_dir != '\0') {
      config.observatory.artifact_dir = artifact_dir;
      if (!on_fleet->observatory()->write_artifacts(artifact_dir,
                                                    on_fleet->event_log())) {
        std::fprintf(stderr, "bench_fleet: could not write observatory artifacts to %s\n",
                     artifact_dir);
      }
    }

    const double overhead_pct =
        off_events_per_s > 0.0
            ? 100.0 * (off_events_per_s - on_events_per_s) / off_events_per_s
            : 0.0;
    report.metric("observatory.events_per_s.off", off_events_per_s);
    report.metric("observatory.events_per_s.on", on_events_per_s);
    report.metric("observatory.overhead_pct", overhead_pct);
    std::printf("%s\n",
                render_table({"observatory", "events", "best s", "events/s", "overhead %"},
                             {{"off", std::to_string(events), format_double(off_best_s, 2),
                               format_double(off_events_per_s, 0), "-"},
                              {"on", std::to_string(events), format_double(on_best_s, 2),
                               format_double(on_events_per_s, 0),
                               format_double(overhead_pct, 2)}})
                    .c_str());
    if (config.observatory.artifact_dir.empty()) {
      std::printf("set IOTML_OBSERVATORY=<dir> to keep the artifacts for fleetscope\n\n");
    } else {
      std::printf("observatory artifacts written under %s\n\n",
                  config.observatory.artifact_dir.c_str());
    }
  }

  std::printf("shape check: rows/s should grow sublinearly with fleet size (the\n"
              "core analytics batch dominates); accuracy should degrade as the\n"
              "drop rate starves the learner of training rows.\n");

  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return 0;
}
