// E-FLEET: the fleet simulator under load — throughput as the fleet scales
// (10 / 100 / 1000 devices) and analytics accuracy as the device->edge drop
// rate grows (0% / 5% / 20%, no retransmits). The first sweep measures the
// simulator itself (events and rows processed per wall second); the second
// reproduces the paper's point that transport-layer data loss is an
// analytics problem, not just a networking one.
//
// IOTML_FLEET_SMOKE=1 shrinks both sweeps to CI size (fleet of 10, short
// windows) while keeping every metric key present, so the smoke job can
// validate the BENCH_fleet.json shape cheaply.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "obs/clock.hpp"
#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_FLEET_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::printf("E-FLEET: fleet simulator throughput and loss-vs-accuracy%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("fleet");
  report.note("mode", smoke ? "smoke" : "full");

  // ---- Throughput vs fleet size ---------------------------------------------
  std::vector<std::size_t> sizes{10};
  if (!smoke) {
    sizes.push_back(100);
    sizes.push_back(1000);
  }
  std::vector<std::vector<std::string>> size_rows;
  for (std::size_t n : sizes) {
    sim::FleetConfig config;
    config.devices = n;
    config.edges = std::max<std::size_t>(1, n / 25);
    config.duration_s = smoke ? 20.0 : 30.0;
    config.seed = 7;
    const std::int64_t start_us = obs::now_us();
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    const double wall_s =
        static_cast<double>(obs::now_us() - start_us) * 1e-6;
    const double rows_per_s =
        wall_s > 0.0 ? static_cast<double>(r.rows_delivered) / wall_s : 0.0;
    const double events_per_s =
        wall_s > 0.0 ? static_cast<double>(r.events) / wall_s : 0.0;

    const std::string key = "n" + std::to_string(n);
    report.metric("throughput_rows_per_s." + key, rows_per_s);
    report.metric("throughput_events_per_s." + key, events_per_s);
    report.metric("rows_delivered." + key, static_cast<double>(r.rows_delivered));
    report.metric("accuracy." + key, r.accuracy);

    size_rows.push_back({std::to_string(n), std::to_string(config.edges),
                         std::to_string(r.events), std::to_string(r.rows_delivered),
                         format_double(wall_s, 3), format_double(rows_per_s, 0),
                         format_double(r.accuracy, 3)});
  }
  std::printf("%s\n", render_table({"devices", "edges", "events", "rows delivered",
                                    "wall s", "rows/s", "accuracy"},
                                   size_rows)
                          .c_str());

  // ---- Accuracy vs drop rate ------------------------------------------------
  std::vector<std::vector<std::string>> drop_rows;
  struct DropPoint {
    double drop;
    const char* key;
  };
  for (const DropPoint& point :
       {DropPoint{0.0, "drop0"}, DropPoint{0.05, "drop5"}, DropPoint{0.20, "drop20"}}) {
    sim::FleetConfig config;
    config.devices = smoke ? 20 : 100;
    config.edges = smoke ? 2 : 4;
    config.duration_s = smoke ? 20.0 : 60.0;
    config.seed = 21;
    // Pure loss, no repair: retransmits off so the drop probability reaches
    // the analytics untamed.
    config.device_edge_link.drop_prob = point.drop;
    config.device_edge_link.max_retries = 0;
    sim::FleetSim fleet(config);
    const sim::FleetReport r = fleet.run();
    const double delivery_ratio =
        r.rows_generated > 0
            ? static_cast<double>(r.rows_delivered) / static_cast<double>(r.rows_generated)
            : 0.0;
    report.metric(std::string("accuracy.") + point.key, r.accuracy);
    report.metric(std::string("delivery_ratio.") + point.key, delivery_ratio);
    drop_rows.push_back({format_double(point.drop, 2), std::to_string(r.rows_generated),
                         std::to_string(r.rows_delivered), std::to_string(r.rows_lost),
                         format_double(delivery_ratio, 3), format_double(r.accuracy, 3)});
  }
  std::printf("%s\n", render_table({"drop prob", "rows generated", "rows delivered",
                                    "rows lost", "delivery ratio", "accuracy"},
                                   drop_rows)
                          .c_str());

  std::printf("shape check: rows/s should grow sublinearly with fleet size (the\n"
              "core analytics batch dominates); accuracy should degrade as the\n"
              "drop rate starves the learner of training rows.\n");

  report.metric("wall_time_s_total", report.elapsed_s());
  report.write();
  return 0;
}
