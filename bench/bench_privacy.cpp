// E-PRIV: Section I.B(iii) — "provide a lever to enforce ethical and legal
// constraints (e.g. fairness or privacy-related) within the pipeline,
// without compromising analytics quality". The lever made concrete: local
// differential-privacy noise at the device tier, swept over the privacy
// budget epsilon, measured by downstream accuracy for three analysts.

#include <cstdio>

#include "data/synthetic.hpp"
#include "learners/decision_tree.hpp"
#include "learners/knn.hpp"
#include "learners/naive_bayes.hpp"
#include "pipeline/privacy.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;

  std::printf("E-PRIV: privacy budget vs analytics quality\n");
  std::printf("(randomized response on the phone fleet's categorical record)\n\n");

  Rng rng(61);  // rng-stream: data
  data::Dataset train = data::make_phone_fleet(1200, 0.0, rng);
  data::Dataset test = data::make_phone_fleet(500, 0.0, rng);

  std::vector<std::vector<std::string>> rows;
  for (double eps : {8.0, 4.0, 2.0, 1.0, 0.5, 0.25}) {
    // The analyst only ever receives privatized records — train AND test
    // pass through the device-tier perturbation.
    data::Dataset noisy_train = train;
    data::Dataset noisy_test = test;
    Rng privacy_rng(3);  // rng-stream: privacy-noise
    pipeline::PrivacyReport report =
        pipeline::privatize(noisy_train,
                            {.epsilon = eps, .sensitivity = {}, .randomize_categories = true},
                            privacy_rng);
    pipeline::privatize(noisy_test,
                        {.epsilon = eps, .sensitivity = {}, .randomize_categories = true},
                        privacy_rng);
    const double keep = pipeline::randomized_response_keep_probability(eps, 3);

    learners::DecisionTree tree;
    tree.fit(noisy_train);
    learners::NaiveBayes nb;
    nb.fit(noisy_train);
    learners::KnnClassifier knn(7);
    knn.fit(noisy_train);

    rows.push_back({format_double(eps, 2), format_double(keep, 3),
                    std::to_string(report.categorical_cells_flipped),
                    format_double(tree.accuracy(noisy_test), 3),
                    format_double(nb.accuracy(noisy_test), 3),
                    format_double(knn.accuracy(noisy_test), 3)});
  }
  std::printf("%s\n",
              render_table({"epsilon", "P(keep)", "cells flipped", "tree",
                            "naive-bayes", "knn"},
                           rows)
                  .c_str());

  std::printf("shape check: accuracy is nearly free down to eps ~ 2 (the paper's\n"
              "'without compromising analytics quality' regime) and collapses\n"
              "toward chance as randomized response approaches the uniform channel.\n"
              "Naive Bayes, which averages over many cells, degrades most slowly.\n");
  return 0;
}
