// E-STIRLING: the combinatorial cost structure behind Section III.
//
// "Should the exploration be exhaustive, its complexity would be given by the
// sum of the level numbers - known as Stirling numbers of the second kind
// (sum ... known as Bell numbers)". This bench prints the growth of the
// lattice cone vs. the linear chain strategy, plus the paper's two-block /
// coatom counts and the LDD decomposition statistics.

#include <cstdio>

#include "combinatorics/counting.hpp"
#include "combinatorics/ldd.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::comb;

  std::printf("E-STIRLING: cost of exploring the partition lattice cone of S-K\n\n");

  std::vector<std::vector<std::string>> rows;
  for (unsigned m = 1; m <= 24; ++m) {
    rows.push_back({std::to_string(m),
                    std::to_string(bell_number(m)),          // exhaustive cone
                    std::to_string(stirling2(m, 2)),          // two-block level
                    std::to_string(m >= 2 ? stirling2(m, m - 1) : 0),  // coatoms
                    std::to_string(m)});                      // chain strategy
  }
  std::printf("%s\n", render_table({"|S-K|", "Bell (exhaustive)",
                                    "S(m,2) = 2^{m-1}-1", "S(m,m-1) = m(m-1)/2",
                                    "chain (linear)"},
                                   rows)
                          .c_str());

  std::printf("paper check: S(m,2) = 2^(m-1)-1 and S(m,m-1) = m(m-1)/2 — the\n"
              "asymmetry that rules out a complete symmetric chain decomposition\n"
              "of Pi_m for m >= 3.\n\n");

  std::printf("LDD decomposition statistics (Pi_{n+1} from B_n chains):\n");
  std::vector<std::vector<std::string>> ldd_rows;
  for (unsigned n = 1; n <= 7; ++n) {
    LddDecomposition d(n);
    std::size_t chains = d.partition_chains().size();
    ldd_rows.push_back({"Pi_" + std::to_string(n + 1),
                        std::to_string(d.covered_partitions()),
                        std::to_string(d.groups().size()),
                        std::to_string(chains),
                        std::to_string(d.symmetric_chain_count()),
                        d.symmetric_below_rank((n - 1) / 2) ? "holds" : "VIOLATED"});
  }
  std::printf("%s\n", render_table({"lattice", "partitions", "B_n chains",
                                    "partition chains", "symmetric",
                                    "LDD guarantee"},
                                   ldd_rows)
                          .c_str());
  return 0;
}
