// E-CHAOS: the fleet runtime under systematic fault injection — delivery,
// accuracy and latency as chaos intensity grows, fire-and-forget vs the
// ack/retry reliable transport under identical fault schedules. The headline
// row is the compound scenario of ISSUE acceptance: a core partition, edge
// crash-restart cycles and a 10% corruption storm at 100 devices, where the
// fault-tolerant stack (ack transport + edge checkpoints + device
// store-and-forward) must keep end-to-end delivery at >= 95% while the
// row-conservation ledger stays balanced.
//
// Every metric in BENCH_chaos.json is a pure function of (config, seed):
// the report runs in deterministic mode (measured times zeroed) and the
// bench re-runs the compound scenario to assert the FleetReport JSON is
// byte-identical — the artifact doubles as a determinism witness.
//
// IOTML_CHAOS_SMOKE=1 shrinks the fleet to CI size while keeping every
// metric key present, so the chaos-smoke job can validate the JSON shape.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool smoke_mode() {
  const char* env = std::getenv("IOTML_CHAOS_SMOKE");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && std::string(env) == "1";
}

/// The shared fleet under test; chaos and transport vary per run.
sim::FleetConfig base_config(bool smoke) {
  sim::FleetConfig config;
  config.devices = smoke ? 20 : 100;
  config.edges = smoke ? 2 : 4;
  config.duration_s = smoke ? 20.0 : 60.0;
  config.seed = 2026;
  return config;
}

/// The recovery machinery the reliable stack brings: stop-and-wait acks,
/// periodic edge checkpoints, bounded device store-and-forward.
void enable_fault_tolerance(sim::FleetConfig& config) {
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.backoff_base_s = 0.05;
  config.channel.backoff_cap_s = 1.0;
  config.channel.max_attempts = 6;
  config.checkpoint_interval_s = 2.0;
  config.device_buffer_rows = 4096;
}

struct RunResult {
  double delivery = 0.0;
  double accuracy = 0.0;
  double p95_s = 0.0;
  bool conserved = false;
  sim::FleetReport report;
};

RunResult run(const sim::FleetConfig& config) {
  sim::FleetSim fleet(config);
  RunResult r;
  r.report = fleet.run();
  r.delivery = r.report.rows_generated > 0
                   ? static_cast<double>(r.report.rows_delivered) /
                         static_cast<double>(r.report.rows_generated)
                   : 0.0;
  r.accuracy = r.report.accuracy;
  r.p95_s = r.report.latency.p95_s;
  r.conserved = r.report.rows_conserved();
  return r;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  std::printf("E-CHAOS: fault injection vs delivery/accuracy/latency%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchReport report("chaos");
  report.deterministic();
  report.note("mode", smoke ? "smoke" : "full");
  report.seed(base_config(smoke).seed);

  // ---- Intensity sweep: fire-and-forget vs ack under the same faults --------
  struct Level {
    const char* key;
    double scale;  ///< multiplies every chaos rate below
  };
  std::vector<std::vector<std::string>> rows;
  bool all_conserved = true;
  for (const Level& level : {Level{"calm", 0.0}, Level{"mild", 1.0}, Level{"severe", 3.0}}) {
    for (const bool ack : {false, true}) {
      sim::FleetConfig config = base_config(smoke);
      config.faults.edge_crashes = 0.5 * level.scale;
      config.faults.edge_downtime_mean_s = 3.0;
      config.chaos.partitions = 0.5 * level.scale;
      config.chaos.partition_mean_s = 4.0;
      config.chaos.loss_bursts = 0.5 * level.scale;
      config.chaos.burst_drop_prob = 0.4;
      config.chaos.corruption_storms = 0.5 * level.scale;
      config.chaos.storm_corrupt_prob = 0.1;
      if (ack) enable_fault_tolerance(config);

      const RunResult r = run(config);
      all_conserved = all_conserved && r.conserved;
      const std::string key =
          std::string(level.key) + "." + (ack ? "ack" : "ff");
      report.metric("delivery_ratio." + key, r.delivery);
      report.metric("accuracy." + key, r.accuracy);
      report.metric("latency_p95_s." + key, r.p95_s);
      rows.push_back({level.key, ack ? "ack-retry" : "fire-and-forget",
                      std::to_string(r.report.rows_generated),
                      std::to_string(r.report.rows_delivered),
                      format_double(r.delivery, 3), format_double(r.accuracy, 3),
                      format_double(r.p95_s, 3), r.conserved ? "yes" : "NO"});
    }
  }
  std::printf("%s\n",
              render_table({"chaos", "transport", "generated", "delivered",
                            "delivery", "accuracy", "p95 s", "ledger"},
                           rows)
                  .c_str());

  // ---- Compound acceptance scenario -----------------------------------------
  // Partition + edge crash-restart + 10% corruption storm, full recovery
  // stack on. This is the configuration the chaos tests pin down.
  auto compound_config = [&](bool ack) {
    sim::FleetConfig config = base_config(smoke);
    config.faults.edge_crashes = 1.0;
    config.faults.edge_downtime_mean_s = 3.0;
    config.chaos.partitions = 1.0;
    config.chaos.partition_mean_s = 4.0;
    config.chaos.corruption_storms = 1.0;
    config.chaos.storm_mean_s = 5.0;
    config.chaos.storm_corrupt_prob = 0.1;
    if (ack) enable_fault_tolerance(config);
    return config;
  };

  const RunResult baseline = run(compound_config(false));
  const RunResult tolerant = run(compound_config(true));
  all_conserved = all_conserved && baseline.conserved && tolerant.conserved;

  const sim::FaultLedger& ledger = tolerant.report.faults;
  report.metric("compound.delivery_ratio.ff", baseline.delivery);
  report.metric("compound.delivery_ratio.ack", tolerant.delivery);
  report.metric("compound.accuracy.ff", baseline.accuracy);
  report.metric("compound.accuracy.ack", tolerant.accuracy);
  report.metric("compound.latency_p95_s.ack", tolerant.p95_s);
  report.metric("compound.rows_corrupt_rejected", static_cast<double>(ledger.rows_corrupt_rejected));
  report.metric("compound.rows_lost_to_crash", static_cast<double>(ledger.rows_lost_to_crash));
  report.metric("compound.rows_recovered", static_cast<double>(ledger.rows_recovered));
  report.metric("compound.checkpoints_restored", static_cast<double>(ledger.checkpoints_restored));
  report.metric("compound.retransmits", static_cast<double>(tolerant.report.channels.retransmits));
  report.metric("compound.dead_letters", static_cast<double>(tolerant.report.channels.dead_letters));
  report.metric("ledger_balanced", all_conserved ? 1.0 : 0.0);
  report.metric("delivery_target_met", tolerant.delivery >= 0.95 ? 1.0 : 0.0);

  std::printf("compound scenario (partition + edge crashes + 10%% corruption):\n"
              "  fire-and-forget delivery %.3f, ack-retry delivery %.3f (target >= 0.95)\n"
              "  corrupt-rejected %zu rows, lost-to-crash %zu rows, recovered %zu rows\n\n",
              baseline.delivery, tolerant.delivery, ledger.rows_corrupt_rejected,
              ledger.rows_lost_to_crash, ledger.rows_recovered);

  // ---- Determinism witness --------------------------------------------------
  // Same seed, same config: the FleetReport JSON must be byte-identical.
  const RunResult again = run(compound_config(true));
  const bool deterministic =
      again.report.to_json() == tolerant.report.to_json();
  report.metric("determinism_ok", deterministic ? 1.0 : 0.0);
  std::printf("determinism: re-run of the compound scenario is %s\n",
              deterministic ? "byte-identical" : "DIVERGENT");

  report.write();
  return all_conserved && deterministic ? 0 : 1;
}
