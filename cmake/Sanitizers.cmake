# Sanitizer wiring for the whole tree (src/, tests/, bench/, examples/).
#
# IOTML_SANITIZE is a semicolon- or comma-separated list of sanitizers:
#
#   -DIOTML_SANITIZE=address;undefined   memory errors + UB  (~2x slowdown)
#   -DIOTML_SANITIZE=thread              data races          (~5-15x slowdown)
#
# AddressSanitizer and UBSan compose; ThreadSanitizer cannot be combined
# with address/leak (toolchain restriction). The `asan-ubsan` and `tsan`
# configure presets in CMakePresets.json are the canonical entry points,
# and the matching test presets point the runtimes at the suppression
# files under tools/sanitizers/.
#
# Every enabled sanitizer also becomes a CTest label (asan/ubsan/tsan) on
# the unit tests, so `ctest -L tsan` selects the race-relevant suite.

set(IOTML_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable: address, undefined, leak, thread")

set(IOTML_SANITIZE_LABELS "")

if(IOTML_SANITIZE)
  string(REPLACE "," ";" _iotml_san_list "${IOTML_SANITIZE}")

  set(_iotml_san_known address undefined leak thread)
  foreach(_san IN LISTS _iotml_san_list)
    if(NOT _san IN_LIST _iotml_san_known)
      message(FATAL_ERROR
        "IOTML_SANITIZE: unknown sanitizer '${_san}' (known: ${_iotml_san_known})")
    endif()
  endforeach()

  if("thread" IN_LIST _iotml_san_list AND
     ("address" IN_LIST _iotml_san_list OR "leak" IN_LIST _iotml_san_list))
    message(FATAL_ERROR
      "IOTML_SANITIZE: 'thread' cannot be combined with 'address' or 'leak'")
  endif()

  string(REPLACE ";" "," _iotml_san_flag "${_iotml_san_list}")
  message(STATUS "iotml: sanitizers enabled: ${_iotml_san_flag}")

  # -fno-sanitize-recover=all turns every UBSan diagnostic into a hard
  # failure so ctest goes red instead of scrolling warnings past.
  add_compile_options(
    -fsanitize=${_iotml_san_flag}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g)
  add_link_options(-fsanitize=${_iotml_san_flag})

  foreach(_san IN LISTS _iotml_san_list)
    if(_san STREQUAL "address")
      list(APPEND IOTML_SANITIZE_LABELS asan)
    elseif(_san STREQUAL "undefined")
      list(APPEND IOTML_SANITIZE_LABELS ubsan)
    elseif(_san STREQUAL "leak")
      list(APPEND IOTML_SANITIZE_LABELS lsan)
    elseif(_san STREQUAL "thread")
      list(APPEND IOTML_SANITIZE_LABELS tsan)
    endif()
  endforeach()

  unset(_iotml_san_list)
  unset(_iotml_san_flag)
  unset(_iotml_san_known)
endif()
