# Static-analysis gates registered as CTest tests, so `ctest` fails on
# regressions without a separate CI-only entry point:
#
#   lint.invariants  tools/lint_invariants.py — repo-specific invariants
#                    (IOTML_CHECK on documented preconditions, no naked
#                    `throw std::` outside src/util/error.*, no include
#                    cycles, no unseeded RNG outside src/util/rng.*).
#   lint.clang_tidy  run-clang-tidy over src/ with the repo .clang-tidy.
#   lint.detlint     tools/detlint — flow-aware determinism analyzer (DET0-4:
#                    unordered iteration reaching emission, rng-stream
#                    discipline, clock taint into reports, unordered float
#                    reduction).
#   lint.detlint_fixtures
#                    tests/detlint — golden-diff fixture corpus exercising
#                    every detlint rule and false-positive guard.
#
# Tools that are not installed degrade to a CTest SKIP (exit 77), never a
# hard configure failure, so minimal containers keep building.

if(NOT (IOTML_BUILD_TESTS AND BUILD_TESTING))
  return()
endif()

find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_FOUND)
  add_test(NAME lint.invariants
    COMMAND Python3::Interpreter "${CMAKE_SOURCE_DIR}/tools/lint_invariants.py"
            --root "${CMAKE_SOURCE_DIR}")
  set_tests_properties(lint.invariants PROPERTIES LABELS "lint")
  add_test(NAME lint.invariants_selftest
    COMMAND Python3::Interpreter "${CMAKE_SOURCE_DIR}/tools/lint_invariants.py"
            --self-test)
  set_tests_properties(lint.invariants_selftest PROPERTIES LABELS "lint")
else()
  message(STATUS "iotml: python3 not found; lint.invariants test not registered")
endif()

# detlint is built from this repo's own sources, so it is always available —
# no SKIP path needed.
add_test(NAME lint.detlint
  COMMAND detlint --root "${CMAKE_SOURCE_DIR}")
set_tests_properties(lint.detlint PROPERTIES LABELS "lint")

if(Python3_FOUND)
  add_test(NAME lint.detlint_fixtures
    COMMAND Python3::Interpreter "${CMAKE_SOURCE_DIR}/tests/detlint/run_fixtures.py"
            --detlint $<TARGET_FILE:detlint>
            --cases "${CMAKE_SOURCE_DIR}/tests/detlint/cases")
  set_tests_properties(lint.detlint_fixtures PROPERTIES LABELS "lint")
endif()

find_program(IOTML_CLANG_TIDY NAMES clang-tidy clang-tidy-19 clang-tidy-18
                                    clang-tidy-17 clang-tidy-16 clang-tidy-15)
find_program(IOTML_RUN_CLANG_TIDY NAMES run-clang-tidy run-clang-tidy-19
                                        run-clang-tidy-18 run-clang-tidy-17
                                        run-clang-tidy-16 run-clang-tidy-15)

if(IOTML_CLANG_TIDY AND IOTML_RUN_CLANG_TIDY AND Python3_FOUND)
  # run-clang-tidy reads compile_commands.json from the build dir (-p) and
  # filters files by the trailing regex; header diagnostics are enabled via
  # HeaderFilterRegex in .clang-tidy itself.
  add_test(NAME lint.clang_tidy
    COMMAND Python3::Interpreter "${IOTML_RUN_CLANG_TIDY}"
            -clang-tidy-binary "${IOTML_CLANG_TIDY}"
            -quiet -p "${CMAKE_BINARY_DIR}"
            "${CMAKE_SOURCE_DIR}/src/.*")
  set_tests_properties(lint.clang_tidy PROPERTIES
    LABELS "lint"
    # A full-tree tidy run is the slowest test in the suite by far.
    TIMEOUT 1800)
elseif(Python3_FOUND)
  # Keep the test visible in minimal containers: report SKIP, not silence.
  add_test(NAME lint.clang_tidy
    COMMAND Python3::Interpreter -c
            "import sys; print('clang-tidy / run-clang-tidy not installed; skipping'); sys.exit(77)")
  set_tests_properties(lint.clang_tidy PROPERTIES
    LABELS "lint"
    SKIP_RETURN_CODE 77)
else()
  message(STATUS "iotml: clang-tidy/run-clang-tidy not found; lint.clang_tidy test not registered")
endif()
