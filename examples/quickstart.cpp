// Quickstart: train the paper's IoT-friendly learning model on faceted data.
//
//   $ ./quickstart
//
// Builds a synthetic multi-sensor dataset (three facets of different
// quality), runs the partition-lattice multiple-kernel learner with the
// linear chain search, and prints the facet structure it discovered.

#include <cstdio>

#include "core/faceted_learner.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace iotml;

  // 1. Data: 3 views — a strong sensor, a weak sensor, and a noisy one.
  Rng rng(1);  // rng-stream: data
  data::FacetedData fd = data::make_faceted_gaussian(
      400,
      {{2, 3.0, 1.0, true},    // strong facet
       {2, 1.5, 1.0, true},    // weak facet
       {5, 0.0, 5.0, false}},  // high-variance noise facet
      rng);

  Rng split_rng(2);  // rng-stream: splitter
  auto split = data::train_test_split(fd.samples.size(), 0.3, split_rng);
  data::Samples train = data::select_rows(fd.samples, split.train);
  data::Samples test = data::select_rows(fd.samples, split.test);

  // 2. Learner: defaults = chain search over the partition lattice with
  //    alignment-weighted block kernels.
  core::FacetedLearner learner;
  learner.fit(train);

  // 3. Results.
  std::printf("chosen feature partition : %s\n", learner.partition().to_string().c_str());
  std::printf("search strategy          : chain (linear in |S - K|)\n");
  std::printf("partitions evaluated     : %zu\n",
              learner.search_result().partitions_evaluated);
  std::printf("block grams computed     : %zu\n",
              learner.search_result().block_grams_computed);
  std::printf("cross-validated score    : %.3f\n", learner.search_result().best_score);
  std::printf("held-out accuracy        : %.3f\n", learner.accuracy(test));

  std::printf("\nground-truth facets      : {1,2} {3,4} {5,6,7,8,9}\n");
  std::printf("(the chain walk isolates the signal features and groups the noise\n");
  std::printf("facet, improving on the single monolithic kernel it starts from)\n");
  return 0;
}
