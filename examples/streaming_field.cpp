// Streaming analytics at the periphery: an incremental classifier runs on
// the device, a drift detector watches its error rate, and the model heals
// itself when the field conditions change (a sensor is re-mounted and its
// reading polarity flips) — the paper's "conditions in the field" varying
// at run time.

#include <cstdio>

#include "learners/online.hpp"
#include "util/rng.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::learners;

  Rng rng(314);  // rng-stream: data
  AdaptiveStreamClassifier device_model(2);

  // Concept: machine "overheating" when vibration-corrected temperature is
  // high. At t = 4000 the temperature sensor is re-mounted with inverted
  // polarity — the old model becomes anti-correlated with the truth.
  std::size_t window_hits = 0, window_size = 0;
  std::printf("  t      window-acc  drifts\n");
  for (std::size_t t = 0; t < 8000; ++t) {
    const bool hot = rng.bernoulli(0.5);
    double temperature = rng.normal(hot ? 2.0 : -2.0, 1.0);
    const double vibration = rng.normal(0.0, 1.0);
    if (t >= 4000) temperature = -temperature;  // re-mounted sensor
    const int label = hot ? 1 : 0;

    const int prediction = device_model.process({temperature, vibration}, label);
    window_hits += prediction == label ? 1 : 0;
    ++window_size;
    if ((t + 1) % 1000 == 0) {
      std::printf("  %-6zu %.3f       %zu\n", t + 1,
                  static_cast<double>(window_hits) / static_cast<double>(window_size),
                  device_model.drifts_detected());
      window_hits = 0;
      window_size = 0;
    }
  }
  std::printf("\nlifetime accuracy %.3f with %zu drift(s) detected and healed\n",
              device_model.running_accuracy(), device_model.drifts_detected());
  std::printf("(a frozen model would sit near 0%% accuracy after t=4000)\n");
  return 0;
}
