// The paper's Fig. 1 as a running distributed system: a 100-device fleet
// samples noisy sensors, flushes windows over lossy links to 4 edge nodes,
// which integrate, prepare and batch-forward to the core, where the records
// are reduced and a decision tree learns the analytics concept — with link
// outages and device churn injected along the way. Everything below is
// deterministic for a given seed (virtual clock, seeded Rngs end to end).
//
// The example doubles as an end-to-end consistency check: it reconciles the
// aggregated stage totals against the raw per-run StageReports, verifies
// row conservation across the transport, and confirms every phase of the
// paper's acquisition -> integration -> preparation -> reduction -> analytics
// chain actually executed. Exit code 1 on any mismatch.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "util/strings.hpp"

namespace {

using namespace iotml;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

int main() {
  sim::FleetConfig config;
  config.devices = 100;
  config.edges = 4;
  config.duration_s = 60.0;
  config.seed = 2024;
  config.faults.link_outages = 1.0;         // expected outages per link
  config.faults.link_outage_mean_s = 4.0;
  config.faults.device_churns = 0.5;        // expected offline periods per device
  config.faults.device_offtime_mean_s = 8.0;

  std::printf("fleet_sim: %zu devices -> %zu edges -> core, %.0f s window, seed %llu\n",
              config.devices, config.edges, config.duration_s,
              static_cast<unsigned long long>(config.seed));
  std::printf("faults: ~%.1f outages/link (mean %.0f s), ~%.1f churns/device (mean %.0f s)\n\n",
              config.faults.link_outages, config.faults.link_outage_mean_s,
              config.faults.device_churns, config.faults.device_offtime_mean_s);

  sim::FleetSim fleet(config);
  const sim::FleetReport report = fleet.run();

  // ---- Per-stage totals (the paper's pipeline ledger) -------------------------
  const std::map<std::string, sim::StageTotals> totals = report.stage_totals();
  std::vector<std::vector<std::string>> stage_rows;
  for (const auto& [name, t] : totals) {
    stage_rows.push_back({name, pipeline::tier_name(t.tier), t.player,
                          std::to_string(t.runs), std::to_string(t.rows_in),
                          std::to_string(t.rows_out), format_double(t.cost, 1)});
  }
  std::printf("%s\n", render_table({"stage", "tier", "player", "runs", "rows in",
                                    "rows out", "cost"},
                                   stage_rows)
                          .c_str());

  // ---- Transport ledger -------------------------------------------------------
  net::LinkStats device_total;
  std::vector<std::vector<std::string>> link_rows;
  for (const sim::LinkReport& l : report.links) {
    if (starts_with(l.name, "dev")) {
      device_total.messages += l.stats.messages;
      device_total.bytes += l.stats.bytes;
      device_total.drops += l.stats.drops;
      device_total.duplicates += l.stats.duplicates;
      device_total.retransmits += l.stats.retransmits;
    } else {
      link_rows.push_back({l.name, std::to_string(l.stats.messages),
                           std::to_string(l.stats.bytes), std::to_string(l.stats.drops),
                           std::to_string(l.stats.duplicates),
                           std::to_string(l.stats.retransmits)});
    }
  }
  link_rows.insert(link_rows.begin(),
                   {"dev*->edge* (all)", std::to_string(device_total.messages),
                    std::to_string(device_total.bytes), std::to_string(device_total.drops),
                    std::to_string(device_total.duplicates),
                    std::to_string(device_total.retransmits)});
  std::printf("%s\n", render_table({"link", "messages", "bytes", "drops",
                                    "duplicates", "retransmits"},
                                   link_rows)
                          .c_str());

  std::printf("rows: generated=%zu delivered=%zu lost=%zu skipped(churn)=%zu stranded=%zu\n",
              report.rows_generated, report.rows_delivered, report.rows_lost,
              report.rows_skipped, report.rows_stranded);
  std::printf("messages: sent=%llu dropped=%llu duplicates-discarded=%llu | events=%llu\n",
              static_cast<unsigned long long>(report.messages_sent),
              static_cast<unsigned long long>(report.messages_dropped),
              static_cast<unsigned long long>(report.duplicates_discarded),
              static_cast<unsigned long long>(report.events));
  std::printf("end-to-end latency (virtual): mean=%.2fs p50=%.2fs p95=%.2fs max=%.2fs (n=%llu)\n",
              report.latency.mean_s, report.latency.p50_s, report.latency.p95_s,
              report.latency.max_s, static_cast<unsigned long long>(report.latency.count));
  std::printf("core analytics: accuracy=%.3f (train=%zu rows, test=%zu rows)\n\n",
              report.accuracy, report.train_rows, report.test_rows);

  // ---- Consistency checks -----------------------------------------------------
  bool ok = true;

  // Stage totals must reconcile with the raw per-run reports they summarize.
  std::map<std::string, std::size_t> runs_by_stage;
  std::map<std::string, std::size_t> rows_in_by_stage;
  for (const pipeline::StageReport& r : report.stage_reports) {
    ++runs_by_stage[r.stage_name];
    rows_in_by_stage[r.stage_name] += r.rows_in;
  }
  if (runs_by_stage.size() != totals.size()) {
    std::printf("MISMATCH: %zu stage names in raw reports vs %zu in totals\n",
                runs_by_stage.size(), totals.size());
    ok = false;
  }
  for (const auto& [name, t] : totals) {
    if (runs_by_stage[name] != t.runs || rows_in_by_stage[name] != t.rows_in) {
      std::printf("MISMATCH: stage '%s' totals (runs=%zu rows_in=%zu) vs raw "
                  "(runs=%zu rows_in=%zu)\n",
                  name.c_str(), t.runs, t.rows_in, runs_by_stage[name],
                  rows_in_by_stage[name]);
      ok = false;
    }
  }

  // Every phase of the paper's chain must have run.
  const std::vector<std::string> phases{"acquisition", "integration", "prepare(",
                                        "reduce(", "analytics(decision-tree)"};
  for (const std::string& phase : phases) {
    bool found = false;
    for (const auto& [name, t] : totals) {
      if (starts_with(name, phase)) found = true;
    }
    if (!found) {
      std::printf("MISSING PHASE: no stage named '%s*' ran\n", phase.c_str());
      ok = false;
    }
  }

  // Row conservation: the default pipeline never changes the row count, so
  // every generated row must be accounted for exactly once.
  const std::size_t accounted = report.rows_delivered + report.rows_lost +
                                report.rows_skipped + report.rows_stranded;
  if (accounted != report.rows_generated) {
    std::printf("MISMATCH: rows generated=%zu but accounted=%zu\n",
                report.rows_generated, accounted);
    ok = false;
  }

  std::printf("consistency: %s\n", ok ? "stage totals reconcile, all 5 phases ran, "
                                        "rows conserve"
                                      : "FAILED");
  return ok ? 0 : 1;
}
