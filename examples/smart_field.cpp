// Smart field: the full Fig. 1 story on a simulated agricultural sensor
// field — desynchronized noisy devices, timestamp-merge integration, edge
// preparation, and a learned "irrigation needed" concept at the core.

#include <cstdio>

#include "learners/decision_tree.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/sensors.hpp"
#include "pipeline/stage.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::pipeline;

  Rng rng(77);  // rng-stream: data

  // ---- Periphery: 6 devices measuring soil moisture and temperature -----------
  std::vector<FieldQuantity> field{
      {"moisture", composite_signal({sine_signal(40.0, 12.0, 600.0),
                                     trend_signal(0.0, -0.02)}),
       {{.name = "moist0", .period_s = 2.0, .noise_std = 1.5, .dropout_prob = 0.15},
        {.name = "moist1", .period_s = 2.6, .clock_jitter_s = 0.2, .noise_std = 2.0},
        {.name = "moist2", .period_s = 1.8, .noise_std = 1.0, .outlier_prob = 0.03}}},
      {"soil_temp", sine_signal(18.0, 7.0, 600.0),
       {{.name = "temp0", .period_s = 3.0, .noise_std = 0.5, .dropout_prob = 0.10},
        {.name = "temp1", .period_s = 2.2, .noise_std = 0.8, .bias = 0.7},
        {.name = "temp2", .period_s = 2.8, .noise_std = 0.4}}}};

  FieldAcquisition acq = acquire_field(field, 600.0, rng);
  std::size_t total = 0;
  for (const auto& s : acq.streams) total += s.readings.size();
  std::printf("acquired %zu readings from %zu devices over 10 minutes\n", total,
              acq.streams.size());

  // ---- Edge: integrate, label, repair ------------------------------------------
  IntegrationResult integ = integrate_streams(acq.streams, {.merge_tolerance_s = 0.5});
  std::printf("integration: %zu records, %.1f%% cells missing\n", integ.records.rows(),
              100.0 * integ.missing_rate);

  // Concept: irrigation needed when true moisture < 35.
  {
    std::vector<int> labels;
    for (std::size_t r = 0; r < integ.records.rows(); ++r) {
      const double t = integ.records.column(0).numeric(r);
      labels.push_back(field[0].truth(t) < 35.0 ? 1 : 0);
    }
    integ.records.set_labels(std::move(labels));
  }

  Pipeline edge;
  edge.add("hampel-outliers", [](data::Dataset& ds, Rng&) {
    std::size_t removed = 0;
    for (std::size_t f = 1; f < ds.num_columns(); ++f) {
      removed += suppress_outliers(ds, f, detect_outliers_hampel(ds.column(f), 4.0));
    }
    return static_cast<double>(removed);
  }, "edge", Tier::kEdge);
  edge.add("linear-imputation", [](data::Dataset& ds, Rng& r) {
    impute(ds, ImputeStrategy::kLinear, r);
    return 1.0;
  }, "edge", Tier::kEdge);

  data::Dataset prepared = edge.run(integ.records, rng);
  std::printf("edge preparation: missing %.1f%% -> %.1f%%\n",
              100.0 * edge.reports().front().missing_rate_in,
              100.0 * edge.reports().back().missing_rate_out);

  // ---- Core: learn and report ----------------------------------------------------
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < prepared.rows(); ++i) {
    (i % 3 == 2 ? test_idx : train_idx).push_back(i);
  }
  learners::DecisionTree tree;
  tree.fit(prepared.select_rows(train_idx));
  const double acc = tree.accuracy(prepared.select_rows(test_idx));
  std::printf("core analytics: 'irrigation needed' decision tree accuracy %.3f\n", acc);
  std::printf("(tree: %zu nodes, depth %zu)\n", tree.node_count(), tree.depth());
  return 0;
}
