// Deploying models to devices: the fleet of fleet_sim.cpp, continued past
// the learning window. After the core has learned the analytics concept it
// compiles the tree into a flat, quantized artifact, broadcasts it down the
// (lossy) edge and device links, and every device that receives it scores
// its next 30 seconds of sensing locally — uplinking one bit per row where
// it used to uplink the rows themselves.
//
// The example doubles as an end-to-end consistency check of the deploy
// ledger: artifact bytes must match a fresh encode of the same model, the
// prediction counters must reconcile (delivered <= scored, correct <=
// delivered), every deployed-or-missed device must be accounted for, and
// the byte comparison must actually favor deployment. Exit code 1 on any
// mismatch.

#include <cstdio>

#include "sim/fleet.hpp"

int main() {
  using namespace iotml;

  sim::FleetConfig config;
  config.devices = 100;
  config.edges = 4;
  config.duration_s = 60.0;
  config.seed = 2025;
  config.deploy.enabled = true;
  config.deploy.model = deploy::ModelKind::kTree;
  config.deploy.precision = deploy::Precision::kInt8;
  config.deploy.score_window_s = 30.0;
  // A little downlink adversity: the broadcast has to survive the same kind
  // of wire the uplink data did.
  config.deploy.edge_device_link.drop_prob = 0.05;

  std::printf("deploy_fleet: %zu devices -> %zu edges -> core, learn %.0f s, "
              "score %.0f s on-device, seed %llu\n\n",
              config.devices, config.edges, config.duration_s,
              config.deploy.score_window_s,
              static_cast<unsigned long long>(config.seed));

  sim::FleetSim fleet(config);
  const sim::FleetReport report = fleet.run();
  const sim::DeploySummary& d = report.deploy;

  std::printf("core analytics: accuracy=%.3f (train=%zu rows, test=%zu rows)\n",
              report.accuracy, report.train_rows, report.test_rows);
  std::printf("artifact: %s/%s, %zu bytes float32 -> %zu bytes deployed\n",
              d.model.c_str(), d.precision.c_str(), d.artifact_bytes_float32,
              d.artifact_bytes_deployed);
  std::printf("holdout: float32=%.3f deployed=%.3f (delta %+.2f points)\n",
              d.holdout_accuracy_float, d.holdout_accuracy_deployed,
              100.0 * (d.holdout_accuracy_deployed - d.holdout_accuracy_float));
  std::printf("cost/row: %llu multiply-adds, %llu comparisons, %llu lookups\n",
              static_cast<unsigned long long>(d.cost_multiply_adds),
              static_cast<unsigned long long>(d.cost_comparisons),
              static_cast<unsigned long long>(d.cost_table_lookups));
  std::printf("broadcast: %zu devices deployed, %zu missed, %llu downlink bytes\n",
              d.devices_deployed, d.devices_missed,
              static_cast<unsigned long long>(d.downlink_bytes));
  std::printf("scoring: %zu rows scored on-device, %zu predictions delivered, "
              "device accuracy=%.3f\n",
              d.rows_scored, d.predictions_delivered, d.device_accuracy);
  std::printf("uplink: %llu bytes of predictions vs %llu bytes of raw rows "
              "(%.1fx reduction)\n\n",
              static_cast<unsigned long long>(d.uplink_prediction_bytes),
              static_cast<unsigned long long>(d.uplink_raw_bytes),
              d.uplink_prediction_bytes > 0
                  ? static_cast<double>(d.uplink_raw_bytes) /
                        static_cast<double>(d.uplink_prediction_bytes)
                  : 0.0);

  // ---- Consistency checks -----------------------------------------------------
  bool ok = true;

  if (!d.enabled || d.artifact_bytes_deployed == 0) {
    std::printf("MISMATCH: deploy phase did not produce an artifact\n");
    ok = false;
  }
  if (d.devices_deployed + d.devices_missed != config.devices) {
    std::printf("MISMATCH: devices deployed=%zu + missed=%zu != fleet size %zu\n",
                d.devices_deployed, d.devices_missed, config.devices);
    ok = false;
  }
  if (d.predictions_delivered > d.rows_scored) {
    std::printf("MISMATCH: %zu predictions delivered but only %zu rows scored\n",
                d.predictions_delivered, d.rows_scored);
    ok = false;
  }
  if (d.predictions_correct > d.predictions_delivered) {
    std::printf("MISMATCH: %zu correct out of %zu delivered predictions\n",
                d.predictions_correct, d.predictions_delivered);
    ok = false;
  }
  if (d.uplink_prediction_bytes >= d.uplink_raw_bytes && d.rows_scored > 0) {
    std::printf("MISMATCH: deploy-and-score cost more uplink bytes than raw rows\n");
    ok = false;
  }
  if (d.artifact_bytes_deployed > d.artifact_bytes_float32) {
    std::printf("MISMATCH: quantized artifact (%zu B) larger than float32 (%zu B)\n",
                d.artifact_bytes_deployed, d.artifact_bytes_float32);
    ok = false;
  }
  if (d.holdout_accuracy_deployed < d.holdout_accuracy_float - 0.02) {
    std::printf("MISMATCH: quantization cost %.2f accuracy points (> 2 allowed)\n",
                100.0 * (d.holdout_accuracy_float - d.holdout_accuracy_deployed));
    ok = false;
  }

  std::printf("consistency: %s\n",
              ok ? "artifact sized, devices accounted, predictions reconcile, "
                   "deployment wins the byte comparison"
                 : "FAILED");
  return ok ? 0 : 1;
}
