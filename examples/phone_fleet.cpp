// The paper's Section III example, end to end: the 4-phone table, Pawlak
// approximations of the "available phones" concept, dynamic selection of K,
// and rough-set-anchored partition learning on a larger synthetic fleet.

#include <cstdio>

#include "data/synthetic.hpp"
#include "learners/decision_tree.hpp"
#include "roughsets/roughsets.hpp"
#include "util/strings.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::rough;

  // ---- The exact table from the paper -----------------------------------------
  data::Dataset phones = data::make_phone_fleet_paper();
  std::printf("Device ID | Battery | OS      | Available\n");
  for (std::size_t r = 0; r < phones.rows(); ++r) {
    std::printf("%9zu | %-7s | %-7s | %s\n", r + 1,
                phones.column(0).category_label(r).c_str(),
                phones.column(1).category_label(r).c_str(),
                phones.label(r) == 1 ? "Y" : "N");
  }

  IndiscernibilityRelation rel(phones, {phones.column_index("os")});
  Approximation approx = approximate_label(rel, phones.labels(), 1);
  std::printf("\nK = {OS}: ~K = %s\n", rel.to_partition().to_string().c_str());
  std::printf("lower approximation of T = {available}: rows ");
  for (std::size_t r : approx.lower_rows) std::printf("%zu ", r + 1);
  std::printf("\nupper approximation: rows ");
  for (std::size_t r : approx.upper_rows) std::printf("%zu ", r + 1);
  std::printf("\naccuracy: %.2f (granule ratio, the paper's 0.5) | %.3f (element ratio)\n",
              approx.accuracy_granules(), approx.accuracy_elements());

  // ---- Dynamic K selection on a real-sized fleet -------------------------------
  Rng rng(9);  // rng-stream: data
  data::Dataset fleet = data::make_phone_fleet(800, 0.05, rng);
  data::Dataset holdout = data::make_phone_fleet(400, 0.05, rng);

  std::printf("\nsynthetic fleet (%zu phones, 5%% label noise):\n", fleet.rows());
  // Under label noise, exact lower approximations collapse (every granule is
  // impure), so the accuracy criterion degenerates; the entropy criterion is
  // the noise-tolerant choice the paper mentions alongside it.
  const KSelection selection = select_k(fleet, 2, KScore::kNegConditionalEntropy);
  std::printf("dynamic K by conditional entropy: { ");
  for (std::size_t f : selection.features) {
    std::printf("%s ", fleet.column(f).name().c_str());
  }
  std::printf("} score=%.3f (%zu subsets evaluated)\n", selection.score,
              selection.evaluated_subsets);

  learners::DecisionTree on_k, on_all;
  on_k.fit(fleet.select_columns(selection.features));
  on_all.fit(fleet);
  std::printf("decision tree on K only : %.3f accuracy\n",
              on_k.accuracy(holdout.select_columns(selection.features)));
  std::printf("decision tree on all    : %.3f accuracy\n", on_all.accuracy(holdout));
  return 0;
}
