// Biometric multi-view identification: the paper's motivating example —
// "a person can be identified by face, finger-print, EEG brain-waves, and
// irises, each coming from a different sensor". Four synthetic biometric
// views of heterogeneous quality; compares per-view classifiers, co-training
// with few labels, and the partition-lattice MKL learner.

#include <cstdio>

#include "core/faceted_learner.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "learners/naive_bayes.hpp"
#include "multiview/cotraining.hpp"
#include "multiview/views.hpp"

int main() {
  using namespace iotml;

  Rng rng(2718);  // rng-stream: data
  // face (strong), fingerprint (strong), EEG (weak and noisy), iris (medium)
  data::FacetedData fd = data::make_faceted_gaussian(
      600, {{4, 3.0, 1.0, true},   // face
            {3, 2.5, 1.0, true},   // fingerprint
            {4, 1.0, 2.5, true},   // EEG
            {2, 2.0, 1.2, true}},  // iris
      rng);
  const char* names[] = {"face", "fingerprint", "EEG", "iris"};

  Rng split_rng(3);  // rng-stream: splitter
  auto split = data::train_test_split(fd.samples.size(), 0.33, split_rng);
  data::Samples train = data::select_rows(fd.samples, split.train);
  data::Samples test = data::select_rows(fd.samples, split.test);

  std::printf("per-view naive Bayes (full labels):\n");
  for (std::size_t v = 0; v < fd.views.size(); ++v) {
    learners::NaiveBayes nb;
    nb.fit(data::samples_to_dataset(multiview::project(train, fd.views[v])));
    std::printf("  %-12s %.3f\n", names[v],
                nb.accuracy(data::samples_to_dataset(
                    multiview::project(test, fd.views[v]))));
  }

  // Co-training from 8 labels using the two strongest views.
  {
    std::vector<std::size_t> labeled_idx;
    for (std::size_t i = 0; i < 8; ++i) labeled_idx.push_back(i);
    data::Samples labeled = data::select_rows(train, labeled_idx);
    la::Matrix unlabeled(train.size() - 8, train.dim());
    for (std::size_t r = 8; r < train.size(); ++r) {
      for (std::size_t c = 0; c < train.dim(); ++c) {
        unlabeled(r - 8, c) = train.x(r, c);
      }
    }
    multiview::CoTrainer co(fd.views[0], fd.views[1]);
    co.fit(labeled, unlabeled);
    std::printf("co-training (face+fingerprint, 8 labels): %.3f  (%zu pseudo-labels)\n",
                co.accuracy(test), co.pseudo_labeled_count());
  }

  // Partition-lattice MKL over all 13 biometric features.
  core::FacetedLearnerConfig config;
  config.strategy = core::SearchStrategy::kChain;
  core::FacetedLearner learner(config);
  learner.fit(train);
  std::printf("partition MKL (chain search): %.3f, partition %s\n",
              learner.accuracy(test), learner.partition().to_string().c_str());
  std::printf("ground-truth facets: {1-4} {5-7} {8-11} {12-13}\n");
  return 0;
}
