// Pipeline game: Section IV's many-players setting made runnable. Also
// demonstrates the extensive-form machinery on a tiny sequential game of
// imperfect information between the preprocessor and the analyst.

#include <cstdio>

#include "core/pipeline_game.hpp"
#include "data/synthetic.hpp"
#include "game/sequential.hpp"

int main() {
  using namespace iotml;
  using namespace iotml::core;

  // ---- Empirical bimatrix game over the real pipeline --------------------------
  // Oblique-boundary numeric data with missing cells and gross outliers, so
  // the analyst's best model depends on the preprocessor's diligence.
  Rng rng(55);  // rng-stream: data
  data::Samples raw =
      data::make_faceted_gaussian(900, {{6, 3.5, 1.0, true}}, rng).samples;
  data::Dataset all = data::samples_to_dataset(raw);
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < all.rows(); ++i) {
    (i % 3 == 2 ? test_idx : train_idx).push_back(i);
  }
  data::Dataset train = all.select_rows(train_idx);
  data::Dataset test = all.select_rows(test_idx);
  for (auto* ds : {&train, &test}) {
    for (std::size_t f = 0; f < ds->num_columns(); ++f) {
      for (std::size_t r = 0; r < ds->rows(); ++r) {
        if (rng.bernoulli(0.3)) {
          ds->column(f).set_missing(r);
        } else if (rng.bernoulli(0.06)) {
          ds->column(f).set_numeric(
              r, ds->column(f).numeric(r) + (rng.bernoulli(0.5) ? 40.0 : -40.0));
        }
      }
    }
  }

  PipelineGameConfig config;
  PipelineGameResult result = build_pipeline_game(train, test, config, rng);

  auto show = [&](const char* label, game::PureProfile p) {
    std::printf("%-24s prep=%-16s analyst=%-13s accuracy=%.3f\n", label,
                config.preprocessor[p.row].name.c_str(),
                config.analyst[p.col].name.c_str(), result.accuracy_at(p));
  };
  std::printf("empirical pipeline game (%.0f%% missing cells):\n",
              100.0 * train.missing_rate());
  show("single-player optimum:", result.social);
  show("Nash outcome:", result.nash);
  show("Stackelberg (prep 1st):",
       {result.stackelberg.leader_action, result.stackelberg.follower_action});

  // ---- A sequential game of imperfect information ------------------------------
  // The preprocessor privately chooses cheap (c) or thorough (t) preparation;
  // the analyst, NOT observing that choice, picks a fragile high-accuracy
  // model (f) or a robust one (r). Payoffs (prep, analyst):
  //   (c,f): (2, 0)   cheap data breaks the fragile model
  //   (c,r): (2, 2)   robust model tolerates cheap data
  //   (t,f): (0, 4)   thorough prep unlocks the fragile model's accuracy
  //   (t,r): (0, 2)   robustness wasted on clean data
  using game::GameNode;
  auto analyst_node = [&](double pf_prep_f, double pf_an_f, double pf_prep_r,
                          double pf_an_r) {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameNode::terminal(pf_prep_f, pf_an_f));
    kids.push_back(GameNode::terminal(pf_prep_r, pf_an_r));
    return GameNode::decision(1, "analyst-blind", std::move(kids));
  };
  std::vector<std::unique_ptr<GameNode>> root_kids;
  root_kids.push_back(analyst_node(2, 0, 2, 2));  // prep chose cheap
  root_kids.push_back(analyst_node(0, 4, 0, 2));  // prep chose thorough
  game::ExtensiveGame sequential(
      GameNode::decision(0, "prep-choice", std::move(root_kids)));

  game::Bimatrix normal = sequential.to_normal_form();
  std::printf("\nsequential game of imperfect information (normal form %zux%zu):\n",
              normal.rows(), normal.cols());
  const auto equilibria = game::pure_nash(normal);
  for (const auto& eq : equilibria) {
    std::printf("  pure Nash: prep=%s analyst=%s -> payoffs (%.0f, %.0f)\n",
                eq.row == 0 ? "cheap" : "thorough",
                eq.col == 0 ? "fragile" : "robust", normal.a(eq.row, eq.col),
                normal.b(eq.row, eq.col));
  }
  std::printf("(the analyst hedges with the robust model because it cannot\n"
              "observe the preparation effort — the trust gap of Section IV)\n");
  return 0;
}
