// The chaos harness and the fault-tolerant runtime it exercises: reliable
// transport, crash/recovery with checkpoints and store-and-forward, degraded
// deploy modes, and the determinism discipline every fault schedule obeys.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/faults.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "sim/chaos.hpp"
#include "sim/fleet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::sim {
namespace {

// ---- Legacy Link backoff (fire-and-forget retries) ---------------------------

// The non-ack transmit path must back off exponentially between retries: the
// incremental wire-busy time contributed by each additional retry grows with
// the attempt index until the cap bites. Total-loss links make the schedule
// observable through busy_until_s without any probabilistic slack.
TEST(LinkBackoff, RetryDelayGrowsPerAttempt) {
  net::LinkParams params;
  params.latency_s = 0.0;
  params.jitter_s = 0.0;
  params.bandwidth_bytes_per_s = 1000.0;  // 1000-byte frame = 1s on the wire
  params.drop_prob = 1.0;
  params.retry_backoff_s = 0.1;
  params.retry_backoff_cap_s = 100.0;  // effectively uncapped here

  std::vector<double> busy;
  for (std::size_t retries = 0; retries <= 4; ++retries) {
    params.max_retries = retries;
    net::Link link("l", params);
    Rng rng(7);
    const net::Delivery d = link.transmit(0.0, 1000, rng);
    EXPECT_FALSE(d.delivered);
    EXPECT_EQ(d.retransmits, retries);
    busy.push_back(link.busy_until_s());
  }
  // Retry k adds one serialization time plus min(base * 2^(k-1), cap) of
  // backoff: 1.1, 1.2, 1.4, 1.8 seconds for base 0.1.
  std::vector<double> deltas;
  for (std::size_t i = 1; i < busy.size(); ++i) deltas.push_back(busy[i] - busy[i - 1]);
  ASSERT_EQ(deltas.size(), 4u);
  EXPECT_NEAR(deltas[0], 1.1, 1e-9);
  EXPECT_NEAR(deltas[1], 1.2, 1e-9);
  EXPECT_NEAR(deltas[2], 1.4, 1e-9);
  EXPECT_NEAR(deltas[3], 1.8, 1e-9);
  for (std::size_t i = 1; i < deltas.size(); ++i) EXPECT_GT(deltas[i], deltas[i - 1]);
}

TEST(LinkBackoff, CapBoundsTheWait) {
  net::LinkParams params;
  params.latency_s = 0.0;
  params.jitter_s = 0.0;
  params.bandwidth_bytes_per_s = 1000.0;
  params.drop_prob = 1.0;
  params.max_retries = 6;
  params.retry_backoff_s = 0.1;
  params.retry_backoff_cap_s = 0.25;

  net::Link link("l", params);
  Rng rng(7);
  link.transmit(0.0, 1000, rng);
  // 7 serializations + backoffs 0.1, 0.2 then 0.25 four times (capped).
  EXPECT_NEAR(link.busy_until_s(), 7.0 + 0.1 + 0.2 + 4 * 0.25, 1e-9);
}

// ---- Ack/retry channel -------------------------------------------------------

TEST(Channel, RepairsLossTheLinkWouldDrop) {
  net::LinkParams lossy;
  lossy.drop_prob = 0.5;
  lossy.max_retries = 0;

  net::ChannelParams cp;
  cp.mode = net::ChannelMode::kAckRetry;
  cp.max_attempts = 8;

  std::size_t link_delivered = 0;
  std::size_t channel_delivered = 0;
  const std::size_t sends = 200;
  {
    net::Link link("l", lossy);
    Rng rng(11);
    for (std::size_t i = 0; i < sends; ++i) {
      if (link.transmit(static_cast<double>(i) * 10.0, 100, rng).delivered) ++link_delivered;
    }
  }
  {
    net::Link link("l", lossy);
    net::Channel channel(link, cp);
    Rng rng(11);
    for (std::size_t i = 0; i < sends; ++i) {
      if (channel.send(static_cast<double>(i) * 10.0, 100, rng).delivered) ++channel_delivered;
    }
    EXPECT_GT(channel.stats().retransmits, 0u);
    EXPECT_GT(channel.stats().acks, 0u);
  }
  EXPECT_GT(channel_delivered, link_delivered);
  EXPECT_GE(channel_delivered, sends * 95 / 100);  // >= 95% at 50% frame loss
}

TEST(Channel, CorruptionIsRejectedAndRepaired) {
  net::LinkParams params;
  params.corrupt_prob = 1.0;  // every frame arrives mangled

  net::Link ff_link("ff", params);
  net::Channel ff(ff_link, {});
  Rng rng_ff(3);
  const net::ChannelOutcome ff_out = ff.send(0.0, 100, rng_ff);
  EXPECT_FALSE(ff_out.delivered);
  EXPECT_TRUE(ff_out.corrupted);  // detected, rejected, not repaired

  net::ChannelParams cp;
  cp.mode = net::ChannelMode::kAckRetry;
  cp.max_attempts = 4;
  net::Link ack_link("ack", params);
  net::Channel ack(ack_link, cp);
  Rng rng_ack(3);
  const net::ChannelOutcome ack_out = ack.send(0.0, 100, rng_ack);
  EXPECT_FALSE(ack_out.delivered);  // nothing intact ever lands
  EXPECT_EQ(ack.stats().corrupt_rejected, cp.max_attempts);
  EXPECT_EQ(ack.stats().timeouts, cp.max_attempts);
}

TEST(Channel, BackpressureDeadLettersWhenQueueFull) {
  net::LinkParams slow;
  slow.bandwidth_bytes_per_s = 1.0;  // each frame busies the wire for ages

  net::ChannelParams cp;
  cp.mode = net::ChannelMode::kAckRetry;
  cp.max_attempts = 1;
  cp.queue_capacity = 2;

  net::Link link("l", slow);
  net::Channel channel(link, cp);
  Rng rng(5);
  EXPECT_TRUE(channel.send(0.0, 100, rng).accepted);
  EXPECT_TRUE(channel.send(0.0, 100, rng).accepted);
  const net::ChannelOutcome third = channel.send(0.0, 100, rng);
  EXPECT_FALSE(third.accepted);
  EXPECT_EQ(channel.stats().dead_letters, 1u);
  EXPECT_EQ(channel.in_flight(0.0), 2u);
}

TEST(Channel, DownLinkTimesOutImmediately) {
  net::Link link("l", {});
  link.set_up(false);
  net::ChannelParams cp;
  cp.mode = net::ChannelMode::kAckRetry;
  net::Channel channel(link, cp);
  Rng rng(1);
  const net::ChannelOutcome out = channel.send(0.0, 100, rng);
  EXPECT_TRUE(out.accepted);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(channel.stats().timeouts, 1u);
  EXPECT_EQ(link.stats().drops, 1u);
}

// ---- Fault and chaos plan determinism ----------------------------------------

TEST(ChaosPlan, DeterministicPerSeedAndPaired) {
  const net::Topology topo = net::Topology::fleet(8, 2, {}, {});
  ChaosParams params;
  params.partitions = 2.0;
  params.loss_bursts = 2.0;
  params.corruption_storms = 2.0;

  Rng rng_a(99);
  Rng rng_b(99);
  const std::vector<ChaosEvent> a = make_chaos_plan(topo, params, 60.0, rng_a);
  const std::vector<ChaosEvent> b = make_chaos_plan(topo, params, 60.0, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
  }

  // Every start has an end, and the plan is time-sorted.
  int depth_partition = 0;
  double last_t = 0.0;
  for (const ChaosEvent& e : a) {
    EXPECT_GE(e.time_s, last_t);
    last_t = e.time_s;
    if (e.kind == ChaosKind::kPartitionStart) ++depth_partition;
    if (e.kind == ChaosKind::kPartitionEnd) --depth_partition;
    EXPECT_GE(depth_partition, 0);
  }
  EXPECT_EQ(depth_partition, 0);

  Rng rng_c(100);
  const std::vector<ChaosEvent> c = make_chaos_plan(topo, params, 60.0, rng_c);
  bool identical = a.size() == c.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i].time_s == c[i].time_s && a[i].kind == c[i].kind;
  }
  EXPECT_FALSE(identical);
}

TEST(FaultPlan, CrashSchedulesDeterministicPerSeed) {
  const net::Topology topo = net::Topology::fleet(8, 2, {}, {});
  net::FaultParams params;
  params.edge_crashes = 2.0;
  params.core_crashes = 1.0;

  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = net::make_fault_plan(topo, params, 60.0, rng_a);
  const auto b = net::make_fault_plan(topo, params, 60.0, rng_b);
  ASSERT_EQ(a.size(), b.size());
  bool any_edge_crash = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    if (a[i].kind == net::FaultKind::kEdgeCrash) any_edge_crash = true;
  }
  EXPECT_TRUE(any_edge_crash);
}

TEST(ChaosPlan, Validation) {
  const net::Topology topo = net::Topology::fleet(4, 1, {}, {});
  Rng rng(1);
  ChaosParams bad;
  bad.partitions = -1.0;
  EXPECT_THROW(make_chaos_plan(topo, bad, 10.0, rng), InvalidArgument);
  bad = {};
  bad.burst_drop_prob = 1.5;
  EXPECT_THROW(make_chaos_plan(topo, bad, 10.0, rng), InvalidArgument);
  EXPECT_THROW(make_chaos_plan(topo, {}, 0.0, rng), InvalidArgument);
}

// ---- Fleet under chaos -------------------------------------------------------

FleetConfig chaos_config(std::uint64_t seed = 42) {
  FleetConfig config;
  config.devices = 20;
  config.edges = 2;
  config.duration_s = 20.0;
  config.seed = seed;
  config.faults.edge_crashes = 1.0;
  config.faults.edge_downtime_mean_s = 3.0;
  config.chaos.partitions = 1.0;
  config.chaos.partition_mean_s = 4.0;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_mean_s = 5.0;
  config.chaos.storm_corrupt_prob = 0.1;
  return config;
}

void enable_fault_tolerance(FleetConfig& config) {
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.max_attempts = 6;
  config.checkpoint_interval_s = 2.0;
  config.device_buffer_rows = 4096;
}

TEST(FleetChaos, DeterministicPerSeed) {
  // The chaos schedule, the crash/restart cycle, the ack retransmissions and
  // the recovery paths must all replay byte-exactly from the master seed.
  FleetConfig config = chaos_config();
  enable_fault_tolerance(config);
  FleetSim a(config);
  const FleetReport ra = a.run();
  FleetSim b(config);
  const FleetReport rb = b.run();
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.to_json(), rb.to_json());

  FleetConfig other = chaos_config(43);
  enable_fault_tolerance(other);
  FleetSim c(other);
  const FleetReport rc = c.run();
  EXPECT_NE(ra.to_json(), rc.to_json());
}

TEST(FleetChaos, CompoundScenarioConservesRows) {
  // Partition + edge crashes + corruption storm: every generated row must
  // land in exactly one ledger bucket (run() also asserts this internally).
  FleetConfig config = chaos_config();
  enable_fault_tolerance(config);
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_GT(r.rows_generated, 0u);
  EXPECT_EQ(r.rows_accounted(), r.rows_generated);
  EXPECT_TRUE(r.rows_conserved());
  EXPECT_GT(r.faults.edge_crashes + r.faults.partitions + r.faults.corruption_storms, 0u);
}

TEST(FleetChaos, ObservatoryFlightDumpsAreDeterministicAndBounded) {
  // Under compound chaos the fault triggers (crash, partition, dead-letter)
  // dump flight rings into the report. The dumps must replay byte-exactly
  // per seed, stay capped, and leave the event log byte-identical to an
  // observatory-off run.
  FleetConfig config = chaos_config();
  enable_fault_tolerance(config);
  config.observatory.enabled = true;
  FleetSim a(config);
  const FleetReport ra = a.run();
  FleetSim b(config);
  const FleetReport rb = b.run();
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.to_json(), rb.to_json());

  ASSERT_FALSE(ra.faults.flight_dumps.empty());
  EXPECT_LE(ra.faults.flight_dumps.size(), kMaxFlightDumps);
  for (const FlightDump& dump : ra.faults.flight_dumps) {
    EXPECT_FALSE(dump.entity.empty());
    EXPECT_TRUE(dump.trigger == "edge-crash" || dump.trigger == "core-crash" ||
                dump.trigger == "partition" || dump.trigger == "dead-letter")
        << dump.trigger;
  }
  EXPECT_NE(ra.to_json().find("\"flight_dumps\""), std::string::npos);

  FleetConfig off = chaos_config();
  enable_fault_tolerance(off);
  FleetSim c(off);
  const FleetReport rc = c.run();
  EXPECT_EQ(a.event_log(), c.event_log());
  EXPECT_TRUE(rc.faults.flight_dumps.empty());  // no observatory, no dumps
}

TEST(FleetChaos, AckModeBeatsFireAndForgetUnderFaults) {
  FleetConfig ff = chaos_config(7);
  FleetConfig ack = ff;
  enable_fault_tolerance(ack);

  FleetSim a(ff);
  const FleetReport ra = a.run();
  FleetSim b(ack);
  const FleetReport rb = b.run();
  EXPECT_TRUE(ra.rows_conserved());
  EXPECT_TRUE(rb.rows_conserved());
  EXPECT_GT(rb.rows_delivered, ra.rows_delivered);
  // Rows the fault-tolerant stack actually destroys (vs merely holds in a
  // buffer when the horizon closes mid-outage) must stay under 5%. The
  // >= 95% *delivered* acceptance runs at 100 devices in bench_chaos, where
  // end-of-run stranding is proportionally negligible.
  const std::size_t destroyed = rb.rows_lost + rb.rows_skipped +
                                rb.faults.rows_corrupt_rejected +
                                rb.faults.rows_buffer_evicted +
                                rb.faults.rows_lost_to_crash;
  EXPECT_LE(destroyed * 100, rb.rows_generated * 5);
  EXPECT_GT(rb.channels.acks, 0u);
}

TEST(FleetChaos, CorruptionStormIsDetectedNeverScored) {
  // Fire-and-forget under a permanent corruption storm: frames arrive, fail
  // their checksum and are rejected — ledgered, not silently integrated.
  FleetConfig config = chaos_config(5);
  config.faults = {};
  config.chaos = {};
  config.device_edge_link.corrupt_prob = 0.3;
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_GT(r.faults.rows_corrupt_rejected, 0u);
  EXPECT_TRUE(r.rows_conserved());
}

TEST(FleetChaos, CheckpointRestoreRecoversRows) {
  FleetConfig config = chaos_config(11);
  config.chaos = {};
  config.faults = {};
  config.faults.edge_crashes = 2.0;
  config.faults.edge_downtime_mean_s = 2.0;
  config.checkpoint_interval_s = 1.0;
  // Keep the edge buffers populated for most of the run (frequent device
  // reports, one late edge flush) so crashes land on non-empty checkpoints.
  config.device_flush_s = 2.0;
  config.edge_flush_s = 19.0;
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_GT(r.faults.checkpoints_written, 0u);
  EXPECT_GT(r.faults.edge_crashes, 0u);
  EXPECT_GT(r.faults.checkpoints_restored, 0u);
  EXPECT_LE(r.faults.checkpoints_restored, r.faults.edge_crashes);
  EXPECT_GT(r.faults.rows_recovered, 0u);
  EXPECT_TRUE(r.rows_conserved());

  // Without checkpoints the same crash schedule loses strictly more rows.
  FleetConfig bare = config;
  bare.checkpoint_interval_s = 0.0;
  FleetSim fleet_bare(bare);
  const FleetReport rb = fleet_bare.run();
  EXPECT_TRUE(rb.rows_conserved());
  EXPECT_GE(rb.faults.rows_lost_to_crash, r.faults.rows_lost_to_crash);
}

TEST(FleetChaos, StoreAndForwardDrainsAfterChurn) {
  FleetConfig offline = chaos_config(13);
  offline.chaos = {};
  offline.faults = {};
  offline.faults.device_churns = 2.0;
  offline.faults.device_offtime_mean_s = 5.0;

  FleetSim bare(offline);
  const FleetReport rb = bare.run();
  EXPECT_GT(rb.rows_skipped, 0u);  // legacy behaviour: offline windows dropped

  FleetConfig buffered = offline;
  buffered.device_buffer_rows = 4096;
  FleetSim sf(buffered);
  const FleetReport rs = sf.run();
  EXPECT_LT(rs.rows_skipped, rb.rows_skipped);
  EXPECT_GT(rs.rows_delivered, rb.rows_delivered);
  EXPECT_TRUE(rs.rows_conserved());
}

TEST(FleetChaos, RecoveryCountersLandInRegistry) {
  obs::registry().reset();
  FleetConfig config = chaos_config(17);
  enable_fault_tolerance(config);
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_EQ(obs::registry().counter("sim.recovery.checkpoints_written").value(),
            r.faults.checkpoints_written);
  EXPECT_EQ(obs::registry().counter("sim.faults.edge_crash").value(), r.faults.edge_crashes);
  EXPECT_EQ(obs::registry().counter("net.channel.acks").value(), r.channels.acks);
  EXPECT_EQ(obs::registry().counter("net.channel.retransmits").value(), r.channels.retransmits);
}

// ---- Degraded deploy modes ---------------------------------------------------

FleetConfig deploy_chaos_config(std::uint64_t seed = 42) {
  FleetConfig config;
  config.devices = 16;
  config.edges = 2;
  config.duration_s = 16.0;
  config.seed = seed;
  config.deploy.enabled = true;
  config.deploy.score_window_s = 8.0;
  config.deploy.stale_fallback = true;
  return config;
}

TEST(DeployChaos, CrashDuringBroadcastFallsBackToPriorArtifact) {
  // Edge 0 crashes at the broadcast instant: its devices never receive the
  // fresh artifact, but with stale_fallback they keep scoring on the prior
  // epoch's model instead of going dark — and the staleness is ledgered.
  FleetConfig config = deploy_chaos_config();
  config.chaos.crash_during_broadcast = true;
  config.chaos.broadcast_crash_downtime_s = 4.0;
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_TRUE(r.deploy.enabled);
  EXPECT_GT(r.deploy.devices_stale, 0u);
  EXPECT_GT(r.deploy.rows_scored_stale, 0u);
  EXPECT_EQ(r.faults.stale_model_devices, r.deploy.devices_stale);
  EXPECT_GT(r.deploy.devices_deployed, 0u);  // the other edge still deploys
  EXPECT_EQ(r.deploy.devices_deployed + r.deploy.devices_missed + r.deploy.devices_stale,
            r.devices);
  EXPECT_GT(r.faults.edge_crashes, 0u);
  EXPECT_TRUE(r.rows_conserved());
}

TEST(DeployChaos, CrashDuringBroadcastIsDeterministic) {
  FleetConfig config = deploy_chaos_config(9);
  config.chaos.crash_during_broadcast = true;
  FleetSim a(config);
  const FleetReport ra = a.run();
  FleetSim b(config);
  const FleetReport rb = b.run();
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.to_json(), rb.to_json());
}

TEST(DeployChaos, NoChaosMeansNoStaleDevices) {
  FleetSim fleet(deploy_chaos_config(3));
  const FleetReport r = fleet.run();
  EXPECT_EQ(r.deploy.devices_stale, 0u);
  EXPECT_EQ(r.faults.stale_model_devices, 0u);
}

}  // namespace
}  // namespace iotml::sim
