#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "deploy/compile.hpp"
#include "deploy/compiled_model.hpp"
#include "deploy/quantize.hpp"
#include "deploy/runtime.hpp"
#include "kernels/kernel.hpp"
#include "kernels/krr.hpp"
#include "learners/decision_tree.hpp"
#include "learners/logistic.hpp"
#include "learners/naive_bayes.hpp"
#include "sim/fleet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::deploy {
namespace {

// ---- Hand-constructed artifacts (golden fixtures, never trained) -------------
//
// The golden files pin the wire format: any byte-level change to the codec —
// field order, endianness, checksum, tensor packing — fails these tests and
// must ship as a format version bump instead.

CompiledModel golden_tree() {
  CompiledModel m;
  m.kind = ModelKind::kTree;
  m.num_classes = 2;
  m.features = {{"temp", false, {}}, {"os", true, {"android", "ios"}}};

  // root: temp <= 21.5 ? leaf(0) : split on os { android -> leaf(1), ios -> ? }
  TreeNode root;
  root.flags = 2;  // numeric split
  root.label = 0;
  root.feature = 0;
  root.child_base = 0;
  root.child_count = 2;
  root.missing_slot = 0;
  TreeNode cold;
  cold.flags = 1;  // leaf
  cold.label = 0;
  TreeNode warm;
  warm.flags = 0;  // categorical split
  warm.label = 1;  // majority fallback for unseen categories
  warm.feature = 1;
  warm.child_base = 2;
  warm.child_count = 2;
  warm.missing_slot = 1;
  TreeNode hot;
  hot.flags = 1;
  hot.label = 1;
  m.tree.nodes = {root, cold, warm, hot};
  m.tree.child_index = {1, 2, 3, kNoChild};
  m.tree.thresholds.f = {21.5F, 0.0F, 0.0F, 0.0F};
  return m;
}

CompiledModel golden_linear() {
  CompiledModel m;
  m.kind = ModelKind::kLinear;
  m.num_classes = 2;
  m.features = {{"temp", false, {}}, {"humidity", false, {}}};
  m.linear.weights.f = {0.5F, -0.25F};
  m.linear.bias = 1.25F;
  m.linear.impute.f = {20.0F, 50.0F};
  m.linear.regression = 0;
  return m;
}

CompiledModel golden_nb() {
  CompiledModel m;
  m.kind = ModelKind::kNaiveBayes;
  m.num_classes = 2;
  m.features = {{"temp", false, {}}, {"os", true, {"android", "ios"}}};
  m.nb.log_prior.f = {-0.693147F, -0.693147F};
  NaiveBayesFeature temp;
  temp.mean.f = {20.0F, 24.0F};
  temp.variance.f = {4.0F, 2.25F};
  temp.class_present = {1, 1};
  NaiveBayesFeature os;
  os.log_likelihood.f = {-0.3F, -1.2F, -0.9F, -0.5F};  // class-major [C * V]
  m.nb.features = {temp, os};
  return m;
}

CompiledModel golden_model(ModelKind kind, Precision precision) {
  CompiledModel base = kind == ModelKind::kTree     ? golden_tree()
                       : kind == ModelKind::kLinear ? golden_linear()
                                                    : golden_nb();
  return precision == Precision::kFloat32 ? base : quantize(base, precision);
}

std::string golden_path(ModelKind kind, Precision precision) {
  return std::string(IOTML_GOLDEN_DIR) + "/" + model_kind_name(kind) + "_" +
         precision_name(precision) + ".bin";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

const ModelKind kAllKinds[] = {ModelKind::kTree, ModelKind::kLinear,
                               ModelKind::kNaiveBayes};
const Precision kAllPrecisions[] = {Precision::kFloat32, Precision::kInt16,
                                    Precision::kInt8};

// ---- Golden bytes ------------------------------------------------------------

TEST(DeployGolden, BytesPinnedForEveryKindAndPrecision) {
  const char* update = std::getenv("IOTML_UPDATE_GOLDEN");  // NOLINT(concurrency-mt-unsafe)
  const bool regenerate = update != nullptr && std::string(update) == "1";

  for (ModelKind kind : kAllKinds) {
    for (Precision precision : kAllPrecisions) {
      const CompiledModel model = golden_model(kind, precision);
      const std::vector<std::uint8_t> bytes = model.encode();
      const std::string path = golden_path(kind, precision);
      SCOPED_TRACE(path);

      if (regenerate) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good());
        for (std::uint8_t b : bytes) out.put(static_cast<char>(b));
        continue;
      }

      const std::vector<std::uint8_t> pinned = read_file(path);
      ASSERT_FALSE(pinned.empty())
          << "missing golden file; regenerate with IOTML_UPDATE_GOLDEN=1";
      EXPECT_EQ(bytes, pinned)
          << "wire format drifted from the pinned bytes; if intentional, bump "
             "CompiledModel::version and regenerate with IOTML_UPDATE_GOLDEN=1";
      EXPECT_EQ(bytes.size(), model.size_bytes());
    }
  }
}

TEST(DeployGolden, RoundTripIsByteIdentical) {
  for (ModelKind kind : kAllKinds) {
    for (Precision precision : kAllPrecisions) {
      SCOPED_TRACE(model_kind_name(kind) + "/" + precision_name(precision));
      const CompiledModel model = golden_model(kind, precision);
      const std::vector<std::uint8_t> bytes = model.encode();
      const CompiledModel decoded = CompiledModel::decode(bytes);
      EXPECT_EQ(decoded.encode(), bytes);
      EXPECT_EQ(decoded.kind, model.kind);
      EXPECT_EQ(decoded.precision, model.precision);
      EXPECT_EQ(decoded.num_classes, model.num_classes);
      ASSERT_EQ(decoded.features.size(), model.features.size());
      for (std::size_t i = 0; i < model.features.size(); ++i) {
        EXPECT_EQ(decoded.features[i].name, model.features[i].name);
        EXPECT_EQ(decoded.features[i].categorical, model.features[i].categorical);
        EXPECT_EQ(decoded.features[i].categories, model.features[i].categories);
      }
    }
  }
}

TEST(DeployGolden, DecodeRejectsCorruption) {
  const std::vector<std::uint8_t> bytes = golden_tree().encode();

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(CompiledModel::decode(bad_magic), InvalidArgument);

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_THROW(CompiledModel::decode(truncated), InvalidArgument);

  std::vector<std::uint8_t> flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x40U;
  EXPECT_THROW(CompiledModel::decode(flipped), InvalidArgument);

  EXPECT_THROW(CompiledModel::decode({}), InvalidArgument);
}

TEST(DeployGolden, CostModelIsDeterministic) {
  const InferenceCost tree_cost = golden_tree().cost_per_row();
  EXPECT_GT(tree_cost.comparisons, 0u);
  const InferenceCost linear_cost = golden_linear().cost_per_row();
  EXPECT_EQ(linear_cost.multiply_adds, 2u);  // one per weight
  const InferenceCost nb_cost = golden_nb().cost_per_row();
  EXPECT_GT(nb_cost.multiply_adds + nb_cost.table_lookups, 0u);
  // Quantization changes storage, never the operation count.
  const InferenceCost q = quantize(golden_tree(), Precision::kInt8).cost_per_row();
  EXPECT_EQ(q.comparisons, tree_cost.comparisons);
  EXPECT_EQ(q.multiply_adds, tree_cost.multiply_adds);
  EXPECT_EQ(q.table_lookups, tree_cost.table_lookups);
}

// ---- Quantizer ---------------------------------------------------------------

TEST(DeployQuantize, ShrinksFootprintAndPreservesValues) {
  const CompiledModel model = golden_linear();
  const CompiledModel q8 = quantize(model, Precision::kInt8);
  EXPECT_EQ(q8.precision, Precision::kInt8);
  EXPECT_LT(q8.size_bytes(), model.size_bytes());

  // Dequantized weights stay within one quantization step of the originals.
  ASSERT_EQ(q8.linear.weights.size(), model.linear.weights.size());
  for (std::size_t i = 0; i < model.linear.weights.size(); ++i) {
    EXPECT_NEAR(q8.linear.weights.at(i), model.linear.weights.at(i),
                q8.linear.weights.scale);
  }
  EXPECT_FLOAT_EQ(q8.linear.bias, model.linear.bias);  // bias stays float

  const CompiledModel q16 = quantize(model, Precision::kInt16);
  EXPECT_LE(q16.size_bytes(), model.size_bytes());
  EXPECT_GE(q16.size_bytes(), q8.size_bytes());
}

TEST(DeployQuantize, RejectsBadSourceAndTarget) {
  const CompiledModel model = golden_tree();
  EXPECT_THROW(quantize(model, Precision::kFloat32), InvalidArgument);
  const CompiledModel q8 = quantize(model, Precision::kInt8);
  EXPECT_THROW(quantize(q8, Precision::kInt8), InvalidArgument);
}

TEST(DeployQuantize, ReportMeasuresBothArtifactsOnHoldout) {
  Rng rng(7);
  data::Dataset train = data::make_phone_fleet(200, 0.1, rng);
  data::Dataset holdout = data::make_phone_fleet(100, 0.1, rng);
  learners::DecisionTree tree;
  tree.fit(train);

  CompiledModel deployed;
  const QuantizationReport r = quantize_with_report(
      compile(tree, train), Precision::kInt8, holdout, &deployed);
  EXPECT_EQ(r.precision, Precision::kInt8);
  EXPECT_EQ(deployed.precision, Precision::kInt8);
  EXPECT_GT(r.float32_bytes, r.quantized_bytes);
  EXPECT_GT(r.footprint_ratio, 1.0);
  EXPECT_EQ(r.holdout_rows, 100u);
  EXPECT_GT(r.holdout_accuracy_float, 0.5);
  EXPECT_NEAR(r.accuracy_delta_points,
              100.0 * (r.holdout_accuracy_quantized - r.holdout_accuracy_float),
              1e-9);
}

// ---- Compile/runtime parity with the source learners -------------------------

TEST(DeployRuntime, TreePredictionsMatchSourceLearner) {
  Rng rng(11);
  data::Dataset train = data::make_phone_fleet(300, 0.1, rng);
  data::Dataset test = data::make_phone_fleet(150, 0.1, rng);
  learners::DecisionTree tree;
  tree.fit(train);

  DeviceRuntime runtime(compile(tree, train));
  runtime.bind(test);
  for (std::size_t row = 0; row < test.rows(); ++row) {
    ASSERT_EQ(runtime.predict_row(test, row), tree.predict_row(test, row))
        << "row " << row;
  }
}

TEST(DeployRuntime, LogisticPredictionsMatchSourceLearner) {
  // Scored on the training set: the source learner reads categorical cells
  // as the scoring dataset's local interned index, while the runtime remaps
  // them through the training dictionary, so exact parity is only defined
  // where the two interning orders coincide — i.e. on the fit dataset.
  Rng rng(12);
  data::Dataset train = data::make_phone_fleet(300, 0.1, rng);
  learners::LogisticRegression model;
  model.fit(train);

  DeviceRuntime runtime(compile(model, train));
  runtime.bind(train);
  for (std::size_t row = 0; row < train.rows(); ++row) {
    ASSERT_EQ(runtime.predict_row(train, row), model.predict_row(train, row))
        << "row " << row;
  }
}

TEST(DeployRuntime, NaiveBayesPredictionsMatchSourceLearner) {
  Rng rng(13);
  data::Dataset train = data::make_phone_fleet(300, 0.1, rng);
  data::Dataset test = data::make_phone_fleet(150, 0.1, rng);
  learners::NaiveBayes model;
  model.fit(train);

  DeviceRuntime runtime(compile(model, train));
  runtime.bind(test);
  for (std::size_t row = 0; row < test.rows(); ++row) {
    ASSERT_EQ(runtime.predict_row(test, row), model.predict_row(test, row))
        << "row " << row;
  }
}

TEST(DeployRuntime, LinearKrrScoresMatchSourceModel) {
  Rng rng(14);
  la::Matrix x(40, 2);
  std::vector<double> y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.normal(0.0, 1.0);
    x(i, 1) = rng.normal(0.0, 1.0);
    y[i] = 2.0 * x(i, 0) - 0.5 * x(i, 1) + rng.normal(0.0, 0.01);
  }
  kernels::KernelRidge krr(std::make_unique<kernels::LinearKernel>(), 1e-3);
  krr.fit(x, y);

  const CompiledModel model = compile(krr, {"a", "b"});
  EXPECT_EQ(model.linear.regression, 1);

  data::Dataset probe;
  auto& ca = probe.add_numeric_column("a");
  auto& cb = probe.add_numeric_column("b");
  ca.push_numeric(0.7);
  cb.push_numeric(-1.3);
  DeviceRuntime runtime(model);
  runtime.bind(probe);
  const double expected = krr.predict_one(std::vector<double>{0.7, -1.3});
  // float32 weights vs the double-precision source model.
  EXPECT_NEAR(runtime.score_row(probe, 0), expected, 1e-4);
  EXPECT_THROW(runtime.predict_row(probe, 0), InvalidArgument);  // regression head
}

TEST(DeployRuntime, BindRejectsMissingAndMismatchedColumns) {
  DeviceRuntime runtime(golden_linear());

  data::Dataset missing_column;
  missing_column.add_numeric_column("temp").push_numeric(20.0);
  EXPECT_THROW(runtime.bind(missing_column), InvalidArgument);

  data::Dataset wrong_kind;
  wrong_kind.add_numeric_column("temp").push_numeric(20.0);
  wrong_kind.add_categorical_column("humidity").push_category("high");
  EXPECT_THROW(runtime.bind(wrong_kind), InvalidArgument);

  data::Dataset probe;
  probe.add_numeric_column("temp").push_numeric(24.0);
  probe.add_numeric_column("humidity").push_numeric(50.0);
  EXPECT_THROW(runtime.predict_row(probe, 0), InvalidArgument);  // before bind
  runtime.bind(probe);
  EXPECT_EQ(runtime.predict_row(probe, 0), 1);  // 1.25 + 0.5*24 - 0.25*50 = 0.75
}

TEST(DeployRuntime, MissingCellsAndUnseenCategoriesAreHandled) {
  DeviceRuntime tree(golden_tree());
  data::Dataset probe;
  auto& temp = probe.add_numeric_column("temp");
  auto& os = probe.add_categorical_column("os");
  temp.push_numeric(25.0);
  os.push_category("harmony");  // unseen at training time
  temp.push_numeric(25.0);
  os.push_category("android");
  tree.bind(probe);
  // Unseen category falls back to the split node's majority label.
  EXPECT_EQ(tree.predict_row(probe, 0), 1);
  EXPECT_EQ(tree.predict_row(probe, 1), 1);

  DeviceRuntime linear(golden_linear());
  data::Dataset gaps;
  auto& t2 = gaps.add_numeric_column("temp");
  auto& h2 = gaps.add_numeric_column("humidity");
  t2.push_missing();
  h2.push_missing();
  linear.bind(gaps);
  // All-missing row imputes the training means: score = bias + w.impute.
  // 1.25 + 0.5*20 - 0.25*50 = -1.25 -> class 0.
  EXPECT_EQ(linear.predict_row(gaps, 0), 0);
  EXPECT_NEAR(linear.score_row(gaps, 0), -1.25, 1e-5);
}

TEST(DeployCompile, RejectsUnfittedLearners) {
  Rng rng(15);
  data::Dataset train = data::make_phone_fleet(50, 0.0, rng);
  EXPECT_THROW(compile(learners::DecisionTree(), train), InvalidArgument);
  EXPECT_THROW(compile(learners::LogisticRegression(), train), InvalidArgument);
  EXPECT_THROW(compile(learners::NaiveBayes(), train), InvalidArgument);
}

}  // namespace
}  // namespace iotml::deploy

// ---- Fleet deploy phase ------------------------------------------------------

namespace iotml::sim {
namespace {

FleetConfig deploy_config(std::uint64_t seed = 42,
                          deploy::ModelKind kind = deploy::ModelKind::kTree) {
  FleetConfig config;
  config.devices = 16;
  config.edges = 2;
  config.duration_s = 16.0;
  config.seed = seed;
  config.deploy.enabled = true;
  config.deploy.model = kind;
  config.deploy.precision = deploy::Precision::kInt8;
  config.deploy.score_window_s = 8.0;
  return config;
}

TEST(DeployFleet, DeterministicPerSeed) {
  // Byte-identical event log and report across two full runs at the same
  // seed; a different seed must diverge.
  FleetSim a(deploy_config());
  const FleetReport ra = a.run();
  FleetSim b(deploy_config());
  const FleetReport rb = b.run();
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.to_json(), rb.to_json());

  FleetSim c(deploy_config(43));
  const FleetReport rc = c.run();
  EXPECT_NE(ra.to_json(), rc.to_json());
}

TEST(DeployFleet, DeterministicUnderDownlinkDrops) {
  // The broadcast's retransmission randomness must come from the seeded
  // per-link streams, so even a lossy deploy phase replays byte-exactly.
  FleetConfig config = deploy_config();
  config.deploy.edge_device_link.drop_prob = 0.05;
  FleetSim a(config);
  const FleetReport ra = a.run();
  FleetSim b(config);
  const FleetReport rb = b.run();
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.to_json(), rb.to_json());
}

TEST(DeployFleet, SummaryAccountsForEveryDeviceAndByte) {
  FleetSim fleet(deploy_config());
  const FleetReport r = fleet.run();
  const DeploySummary& d = r.deploy;
  ASSERT_TRUE(d.enabled);
  EXPECT_GT(d.artifact_bytes_deployed, 0u);
  EXPECT_LE(d.artifact_bytes_deployed, d.artifact_bytes_float32);
  EXPECT_EQ(d.devices_deployed + d.devices_missed, 16u);
  EXPECT_LE(d.predictions_delivered, d.rows_scored);
  EXPECT_LE(d.predictions_correct, d.predictions_delivered);
  EXPECT_GT(d.downlink_bytes, 0u);
  EXPECT_LT(d.uplink_prediction_bytes, d.uplink_raw_bytes);
  EXPECT_NE(r.to_json().find("\"deploy\""), std::string::npos);
}

TEST(DeployFleet, DisabledDeployKeepsReportShape) {
  FleetConfig config = deploy_config();
  config.deploy.enabled = false;
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_FALSE(r.deploy.enabled);
  EXPECT_EQ(r.to_json().find("\"deploy\""), std::string::npos);
}

}  // namespace
}  // namespace iotml::sim
