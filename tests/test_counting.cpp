#include <gtest/gtest.h>

#include "combinatorics/counting.hpp"
#include "util/error.hpp"

namespace iotml::comb {
namespace {

TEST(Stirling2, KnownValues) {
  EXPECT_EQ(stirling2(0, 0), 1u);
  EXPECT_EQ(stirling2(1, 1), 1u);
  EXPECT_EQ(stirling2(4, 1), 1u);
  EXPECT_EQ(stirling2(4, 2), 7u);
  EXPECT_EQ(stirling2(4, 3), 6u);
  EXPECT_EQ(stirling2(4, 4), 1u);
  EXPECT_EQ(stirling2(5, 2), 15u);
  EXPECT_EQ(stirling2(5, 3), 25u);
  EXPECT_EQ(stirling2(10, 5), 42525u);
}

TEST(Stirling2, EdgeCases) {
  EXPECT_EQ(stirling2(3, 0), 0u);
  EXPECT_EQ(stirling2(3, 5), 0u);
  EXPECT_EQ(stirling2(0, 1), 0u);
}

TEST(Stirling2, PaperTwoBlockAndCoatomCounts) {
  // Paper (Section III): "there are 2^{n-1}-1 partitions of an n-set into two
  // blocks, but only n(n-1)/2 partitions of an n-set into n-1 blocks".
  for (unsigned n = 3; n <= 20; ++n) {
    EXPECT_EQ(stirling2(n, 2), (1ull << (n - 1)) - 1) << "n=" << n;
    EXPECT_EQ(stirling2(n, n - 1), static_cast<std::uint64_t>(n) * (n - 1) / 2)
        << "n=" << n;
  }
}

TEST(Stirling2, RecurrenceHolds) {
  for (unsigned n = 2; n <= 15; ++n) {
    for (unsigned k = 1; k <= n; ++k) {
      EXPECT_EQ(stirling2(n, k), k * stirling2(n - 1, k) + stirling2(n - 1, k - 1));
    }
  }
}

TEST(Stirling2, RowMatchesScalar) {
  for (unsigned n = 0; n <= 12; ++n) {
    auto row = stirling2_row(n);
    ASSERT_EQ(row.size(), n + 1);
    for (unsigned k = 0; k <= n; ++k) EXPECT_EQ(row[k], stirling2(n, k));
  }
}

TEST(Bell, KnownValues) {
  const std::uint64_t expected[] = {1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975};
  for (unsigned n = 0; n <= 10; ++n) EXPECT_EQ(bell_number(n), expected[n]) << "n=" << n;
}

TEST(Bell, IsRowSumOfStirling) {
  for (unsigned n = 0; n <= 20; ++n) {
    std::uint64_t sum = 0;
    for (unsigned k = 0; k <= n; ++k) sum += stirling2(n, k);
    EXPECT_EQ(bell_number(n), sum) << "n=" << n;
  }
}

TEST(Bell, LargeExactValue) {
  EXPECT_EQ(bell_number(25), 4638590332229999353ull);
}

TEST(Bell, TooLargeThrows) { EXPECT_THROW(bell_number(26), InvalidArgument); }

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 5), 252u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
  EXPECT_EQ(binomial(3, 7), 0u);
}

TEST(Binomial, PascalRule) {
  for (unsigned n = 1; n <= 30; ++n) {
    for (unsigned k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k) + binomial(n - 1, k - 1));
    }
  }
}

TEST(Binomial, Symmetry) {
  for (unsigned n = 0; n <= 30; ++n)
    for (unsigned k = 0; k <= n; ++k) EXPECT_EQ(binomial(n, k), binomial(n, n - k));
}

TEST(LatticeCone, SizeIsBellOfRemainder) {
  // The paper's search cone rooted at (K, S-K) has Bell(|S-K|) partitions.
  EXPECT_EQ(lattice_cone_size(0), 1u);
  EXPECT_EQ(lattice_cone_size(3), 5u);
  EXPECT_EQ(lattice_cone_size(8), 4140u);
}

}  // namespace
}  // namespace iotml::comb
