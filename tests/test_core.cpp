#include <gtest/gtest.h>

#include "combinatorics/counting.hpp"
#include "core/faceted_learner.hpp"
#include "core/lattice_search.hpp"
#include "core/partition_kernels.hpp"
#include "core/pipeline_game.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::core {
namespace {

/// A faceted dataset where the facet structure matters: a strong view, a
/// weak view, and a high-variance noise view.
data::FacetedData test_problem(std::size_t n, Rng& rng) {
  return data::make_faceted_gaussian(
      n, {{2, 3.0, 1.0, true}, {2, 2.0, 1.0, true}, {2, 0.0, 3.0, false}}, rng);
}

TEST(BlockGramCache, CachesByCanonicalBlock) {
  Rng rng(1);
  data::Samples s = data::make_blobs(30, 4, 2.0, 1.0, rng);
  BlockGramCache cache(s.x);
  const la::Matrix& a = cache.gram_for({0, 2});
  const la::Matrix& b = cache.gram_for({2, 0});  // same block, different order
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(cache.block_grams_computed(), 1u);
  EXPECT_EQ(cache.lookups(), 2u);
  cache.gram_for({1});
  EXPECT_EQ(cache.block_grams_computed(), 2u);
}

TEST(BlockGramCache, Validation) {
  Rng rng(2);
  data::Samples s = data::make_blobs(10, 2, 2.0, 1.0, rng);
  BlockGramCache cache(s.x);
  EXPECT_THROW(cache.gram_for({}), InvalidArgument);
  EXPECT_THROW(cache.gram_for({5}), InvalidArgument);
}

TEST(PartitionGram, MatchesManualCombination) {
  Rng rng(3);
  data::Samples s = data::make_blobs(25, 3, 3.0, 1.0, rng);
  BlockGramCache cache(s.x);
  auto partition = comb::SetPartition::from_blocks({{0, 1}, {2}}, 3);

  std::vector<double> weights;
  la::Matrix combined =
      partition_gram(cache, partition, s.y, WeightRule::kUniform, &weights);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 0.5);

  la::Matrix manual = cache.gram_for({0, 1}).scaled(0.5) + cache.gram_for({2}).scaled(0.5);
  EXPECT_LT(combined.max_abs_diff(manual), 1e-12);
}

TEST(PartitionGram, AlignmentWeightsFavorSignalBlock) {
  Rng rng(4);
  data::FacetedData fd = test_problem(150, rng);
  BlockGramCache cache(fd.samples.x);
  auto truth = comb::SetPartition::from_blocks(
      {fd.views[0], fd.views[1], fd.views[2]}, 6);
  std::vector<double> weights;
  partition_gram(cache, truth, fd.samples.y, WeightRule::kAlignment, &weights);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_GT(weights[0], weights[2]);  // strong signal > pure noise
}

TEST(PartitionKernelObject, AgreesWithCombinedGram) {
  Rng rng(5);
  data::Samples s = data::make_blobs(20, 3, 3.0, 1.0, rng);
  BlockGramCache cache(s.x);
  auto partition = comb::SetPartition::from_blocks({{0}, {1, 2}}, 3);
  std::vector<double> weights;
  la::Matrix combined =
      partition_gram(cache, partition, s.y, WeightRule::kUniform, &weights);
  auto kernel = partition_kernel(cache, partition, weights);
  la::Matrix direct = kernels::gram(*kernel, s.x);
  EXPECT_LT(combined.max_abs_diff(direct), 1e-10);
}

TEST(SearchCone, MakeConeAndLift) {
  SearchCone cone = make_cone(5, {1, 3});
  EXPECT_EQ(cone.rest, (std::vector<std::size_t>{0, 2, 4}));

  // rho = {{0,1},{2}} over rest positions -> features {0,2} together, {4}
  // alone, K = {1,3} one block.
  auto rho = comb::SetPartition::from_blocks({{0, 1}, {2}}, 3);
  auto lifted = lift_to_features(cone, rho);
  EXPECT_EQ(lifted.ground_size(), 5u);
  EXPECT_TRUE(lifted.together(0, 2));
  EXPECT_TRUE(lifted.together(1, 3));
  EXPECT_FALSE(lifted.together(0, 4));
  EXPECT_FALSE(lifted.together(0, 1));
  EXPECT_EQ(lifted.num_blocks(), 3u);
}

TEST(SearchCone, Validation) {
  EXPECT_THROW(make_cone(3, {5}), InvalidArgument);
  EXPECT_THROW(make_cone(3, {0, 0}), InvalidArgument);
  EXPECT_THROW(make_cone(2, {0, 1}), InvalidArgument);  // K covers everything
}

TEST(Search, ExhaustiveEvaluatesWholeCone) {
  Rng rng(6);
  data::FacetedData fd = data::make_faceted_gaussian(
      80, {{2, 3.0, 1.0, true}, {2, 0.0, 2.0, false}}, rng);
  PartitionEvaluator evaluator(fd.samples, SearchOptions{.cv_folds = 3});
  SearchCone cone = make_cone(4, {});
  SearchResult result = exhaustive_cone_search(evaluator, cone);
  EXPECT_EQ(result.partitions_evaluated, comb::bell_number(4));  // 15
  EXPECT_EQ(result.trajectory.size(), 15u);
  EXPECT_GT(result.best_score, 0.6);
}

TEST(Search, ExhaustiveRespectsGuard) {
  Rng rng(7);
  data::Samples s = data::make_blobs(40, 10, 3.0, 1.0, rng);
  SearchOptions options;
  options.max_exhaustive = 100;  // Bell(10) = 115975 >> 100
  PartitionEvaluator evaluator(s, options);
  SearchCone cone = make_cone(10, {});
  EXPECT_THROW(exhaustive_cone_search(evaluator, cone), InvalidArgument);
}

TEST(Search, GreedyStopsWhenNoImprovement) {
  Rng rng(8);
  data::FacetedData fd = test_problem(120, rng);
  PartitionEvaluator evaluator(fd.samples, SearchOptions{.cv_folds = 3});
  SearchCone cone = make_cone(6, {});
  SearchResult result = greedy_refinement_search(evaluator, cone);
  EXPECT_GE(result.trajectory.size(), 1u);
  EXPECT_GT(result.best_score, 0.6);
  // Trajectory starts at the coarsest partition (K, S-K) = one block here.
  EXPECT_EQ(result.trajectory.front().partition.num_blocks(), 1u);
}

TEST(Search, ChainIsLinearInRest) {
  Rng rng(9);
  data::Samples s = data::make_blobs(60, 8, 3.0, 1.0, rng);
  SearchOptions options;
  options.cv_folds = 3;
  options.patience = 100;  // disable early stop to observe the full chain
  PartitionEvaluator evaluator(s, options);
  SearchCone cone = make_cone(8, {});
  SearchResult result = chain_search(evaluator, cone);
  EXPECT_EQ(result.partitions_evaluated, 8u);  // exactly |R|
  // First chain element is the one-block partition, last is discrete.
  EXPECT_EQ(result.trajectory.front().partition.num_blocks(), 1u);
  EXPECT_EQ(result.trajectory.back().partition.num_blocks(), 8u);
}

TEST(Search, ChainEarlyStopsWithPatience) {
  Rng rng(10);
  data::Samples s = data::make_blobs(60, 8, 4.0, 0.8, rng);
  SearchOptions options;
  options.cv_folds = 3;
  options.patience = 1;
  PartitionEvaluator evaluator(s, options);
  SearchCone cone = make_cone(8, {});
  SearchResult result = chain_search(evaluator, cone);
  EXPECT_LE(result.partitions_evaluated, 8u);
}

TEST(Search, ChainFarCheaperThanExhaustive) {
  Rng rng(11);
  data::FacetedData fd = data::make_faceted_gaussian(
      70, {{3, 3.0, 1.0, true}, {3, 0.0, 2.0, false}}, rng);

  PartitionEvaluator ev_exhaustive(fd.samples, SearchOptions{.cv_folds = 3});
  SearchResult exhaustive =
      exhaustive_cone_search(ev_exhaustive, make_cone(6, {}));

  PartitionEvaluator ev_chain(fd.samples, SearchOptions{.cv_folds = 3});
  SearchResult chain = chain_search(ev_chain, make_cone(6, {}));

  EXPECT_EQ(exhaustive.partitions_evaluated, comb::bell_number(6));  // 203
  EXPECT_LE(chain.partitions_evaluated, 6u);
  // The chain finds a partition within a few points of the exhaustive best.
  EXPECT_GE(chain.best_score, exhaustive.best_score - 0.08);
}

TEST(FacetedLearnerTest, LearnsAndPredicts) {
  Rng rng(12);
  data::FacetedData fd = test_problem(300, rng);
  auto split_idx = [&](std::size_t from, std::size_t to) {
    std::vector<std::size_t> idx;
    for (std::size_t i = from; i < to; ++i) idx.push_back(i);
    return idx;
  };
  data::Samples train = data::select_rows(fd.samples, split_idx(0, 200));
  data::Samples test = data::select_rows(fd.samples, split_idx(200, 300));

  FacetedLearner learner;
  learner.fit(train);
  EXPECT_GE(learner.accuracy(test), 0.8);
  EXPECT_GE(learner.partition().num_blocks(), 1u);
  EXPECT_GT(learner.search_result().partitions_evaluated, 0u);
}

TEST(FacetedLearnerTest, ExhaustiveStrategyOnSmallProblem) {
  Rng rng(13);
  data::FacetedData fd = data::make_faceted_gaussian(
      160, {{2, 3.0, 1.0, true}, {2, 0.0, 3.0, false}}, rng);
  data::Samples train = data::select_rows(fd.samples, [] {
    std::vector<std::size_t> v;
    for (std::size_t i = 0; i < 120; ++i) v.push_back(i);
    return v;
  }());
  data::Samples test = data::select_rows(fd.samples, [] {
    std::vector<std::size_t> v;
    for (std::size_t i = 120; i < 160; ++i) v.push_back(i);
    return v;
  }());

  FacetedLearnerConfig config;
  config.strategy = SearchStrategy::kExhaustive;
  FacetedLearner learner(config);
  learner.fit(train);
  EXPECT_EQ(learner.search_result().partitions_evaluated, comb::bell_number(4));
  EXPECT_GE(learner.accuracy(test), 0.8);
}

TEST(FacetedLearnerTest, RoughKSelectionRuns) {
  Rng rng(14);
  data::FacetedData fd = test_problem(200, rng);
  FacetedLearnerConfig config;
  config.rough_select_k = true;
  config.strategy = SearchStrategy::kChain;
  FacetedLearner learner(config);
  learner.fit(fd.samples);
  // K selected and excluded from the explored rest.
  EXPECT_LE(learner.k_block().size(), 2u);
  EXPECT_GE(learner.accuracy(fd.samples), 0.7);  // in-sample sanity
}

TEST(FacetedLearnerTest, StrategyNames) {
  EXPECT_EQ(strategy_name(SearchStrategy::kExhaustive), "exhaustive");
  EXPECT_EQ(strategy_name(SearchStrategy::kGreedyRefinement), "greedy-refinement");
  EXPECT_EQ(strategy_name(SearchStrategy::kChain), "chain");
}

TEST(FacetedLearnerTest, Validation) {
  FacetedLearner learner;
  EXPECT_THROW(learner.partition(), InvalidArgument);
  data::Samples unlabeled;
  unlabeled.x = la::Matrix(4, 2);
  EXPECT_THROW(learner.fit(unlabeled), InvalidArgument);
}

TEST(PipelineGame, EmpiricalGameSolves) {
  Rng rng(15);
  data::Dataset train = data::make_phone_fleet(500, 0.05, rng);
  data::Dataset test = data::make_phone_fleet(250, 0.05, rng);
  // Corrupt with missing cells so preprocessing matters.
  for (auto* ds : {&train, &test}) {
    for (std::size_t f = 0; f < ds->num_columns(); ++f) {
      for (std::size_t r = 0; r < ds->rows(); ++r) {
        if (rng.bernoulli(0.2)) ds->column(f).set_missing(r);
      }
    }
  }

  PipelineGameResult result = build_pipeline_game(train, test, {}, rng);
  EXPECT_EQ(result.game.rows(), 5u);
  EXPECT_EQ(result.game.cols(), 4u);

  // All accuracies are meaningful probabilities.
  for (std::size_t i = 0; i < result.accuracy.rows(); ++i) {
    for (std::size_t j = 0; j < result.accuracy.cols(); ++j) {
      EXPECT_GE(result.accuracy(i, j), 0.3);
      EXPECT_LE(result.accuracy(i, j), 1.0);
    }
  }

  // The social optimum's welfare is >= Nash welfare (by definition).
  const double nash_welfare = game::social_welfare(result.game, result.nash);
  const double social_welfare_value = game::social_welfare(result.game, result.social);
  EXPECT_GE(social_welfare_value, nash_welfare - 1e-9);

  // The Stackelberg leader does at least as well as at the (first) Nash.
  EXPECT_GE(result.stackelberg.leader_payoff,
            result.game.a(result.nash.row, result.nash.col) - 1e-9);
}

TEST(PipelineGame, Validation) {
  Rng rng(16);
  data::Dataset labeled = data::make_phone_fleet(50, 0.0, rng);
  data::Dataset unlabeled;
  unlabeled.add_categorical_column("x").push_category("a");
  EXPECT_THROW(build_pipeline_game(labeled, unlabeled, {}, rng), InvalidArgument);
  PipelineGameConfig empty;
  empty.preprocessor.clear();
  EXPECT_THROW(build_pipeline_game(labeled, labeled, empty, rng), InvalidArgument);
}

}  // namespace
}  // namespace iotml::core
