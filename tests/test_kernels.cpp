#include <gtest/gtest.h>

#include <cmath>

#include "data/metrics.hpp"
#include "data/synthetic.hpp"
#include "kernels/kernel.hpp"
#include "kernels/krr.hpp"
#include "kernels/mkl.hpp"
#include "kernels/svm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::kernels {
namespace {

using data::make_blobs;
using data::make_circles;
using data::make_xor;

TEST(KernelFns, LinearIsDotProduct) {
  LinearKernel k;
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(k(x, y), 32.0);
}

TEST(KernelFns, LengthMismatchThrows) {
  LinearKernel k;
  std::vector<double> x{1, 2}, y{1};
  EXPECT_THROW(k(x, y), InvalidArgument);
}

TEST(KernelFns, PolynomialKnownValue) {
  PolynomialKernel k(2, 1.0, 1.0);
  std::vector<double> x{1, 1}, y{2, 0};
  EXPECT_DOUBLE_EQ(k(x, y), 9.0);  // (2 + 1)^2
  EXPECT_THROW(PolynomialKernel(0), InvalidArgument);
}

TEST(KernelFns, RbfBasics) {
  RbfKernel k(0.5);
  std::vector<double> x{1, 2}, y{1, 2}, z{3, 2};
  EXPECT_DOUBLE_EQ(k(x, y), 1.0);            // identical points
  EXPECT_DOUBLE_EQ(k(x, z), std::exp(-2.0));  // dist^2 = 4, gamma = .5
  EXPECT_THROW(RbfKernel(0.0), InvalidArgument);
}

TEST(KernelFns, RbfBlockEqualsProductOfPerFeatureRbfs) {
  // The paper's Section III block-by-multiplication semantics: an RBF over a
  // block equals the product of per-feature RBFs.
  RbfKernel block(0.7);
  std::vector<std::unique_ptr<Kernel>> factors;
  for (std::size_t f = 0; f < 3; ++f) {
    factors.push_back(
        std::make_unique<SubsetKernel>(std::make_unique<RbfKernel>(0.7),
                                       std::vector<std::size_t>{f}));
  }
  ProductKernel product(std::move(factors));
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x{rng.normal(), rng.normal(), rng.normal()};
    std::vector<double> y{rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR(block(x, y), product(x, y), 1e-12);
  }
}

TEST(KernelFns, SubsetProjects) {
  SubsetKernel k(std::make_unique<LinearKernel>(), {0, 2});
  std::vector<double> x{1, 100, 3}, y{2, -100, 4};
  EXPECT_DOUBLE_EQ(k(x, y), 14.0);  // 1*2 + 3*4, ignoring feature 1
}

TEST(KernelFns, SubsetValidation) {
  EXPECT_THROW(SubsetKernel(nullptr, {0}), InvalidArgument);
  EXPECT_THROW(SubsetKernel(std::make_unique<LinearKernel>(), {}), InvalidArgument);
  SubsetKernel k(std::make_unique<LinearKernel>(), {5});
  std::vector<double> x{1, 2};
  EXPECT_THROW(k(x, x), InvalidArgument);
}

TEST(KernelFns, SumKernelWeighted) {
  std::vector<std::unique_ptr<Kernel>> terms;
  terms.push_back(std::make_unique<LinearKernel>());
  terms.push_back(std::make_unique<LinearKernel>());
  SumKernel k(std::move(terms), {0.25, 0.75});
  std::vector<double> x{2}, y{3};
  EXPECT_DOUBLE_EQ(k(x, y), 6.0);
}

TEST(KernelFns, CloneIsDeepAndEquivalent) {
  SubsetKernel original(std::make_unique<RbfKernel>(0.3), {1});
  auto copy = original.clone();
  std::vector<double> x{0, 1}, y{0, 2};
  EXPECT_DOUBLE_EQ(original(x, y), (*copy)(x, y));
}

TEST(Gram, SymmetricAndPsd) {
  Rng rng(2);
  data::Samples s = make_blobs(40, 3, 2.0, 1.0, rng);
  la::Matrix k = gram(RbfKernel(0.5), s.x);
  EXPECT_TRUE(k.is_symmetric(1e-12));
  la::EigenResult e = la::eigen_symmetric(k);
  for (double v : e.values) EXPECT_GE(v, -1e-8);
}

TEST(Gram, CrossGramMatchesPointwise) {
  Rng rng(3);
  data::Samples a = make_blobs(10, 2, 2.0, 1.0, rng);
  data::Samples b = make_blobs(6, 2, 2.0, 1.0, rng);
  RbfKernel k(1.0);
  la::Matrix cg = cross_gram(k, a.x, b.x);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(cg(i, j), k(a.x.row_span(i), b.x.row_span(j)));
    }
  }
}

TEST(Gram, CenteringZerosRowSums) {
  Rng rng(4);
  data::Samples s = make_blobs(20, 2, 1.0, 1.0, rng);
  la::Matrix kc = center_gram(gram(LinearKernel(), s.x));
  for (std::size_t i = 0; i < kc.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < kc.cols(); ++j) row_sum += kc(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-8);
  }
}

TEST(Gram, NormalizeUnitDiagonal) {
  Rng rng(5);
  data::Samples s = make_blobs(15, 2, 1.0, 1.0, rng);
  la::Matrix kn = normalize_gram(gram(PolynomialKernel(2), s.x));
  for (std::size_t i = 0; i < kn.rows(); ++i) EXPECT_NEAR(kn(i, i), 1.0, 1e-12);
}

TEST(Alignment, SelfAlignmentIsOne) {
  Rng rng(6);
  data::Samples s = make_blobs(20, 2, 2.0, 1.0, rng);
  la::Matrix k = gram(RbfKernel(0.5), s.x);
  EXPECT_NEAR(alignment(k, k), 1.0, 1e-12);
}

TEST(Alignment, InformativeKernelAlignsBetterThanNoise) {
  Rng rng(7);
  // Features 0-1 carry the signal; features 2-3 are pure noise.
  data::FacetedData fd = data::make_faceted_gaussian(
      120, {{2, 4.0, 1.0, true}, {2, 0.0, 1.0, false}}, rng);
  la::Matrix k_signal =
      gram(SubsetKernel(std::make_unique<RbfKernel>(0.5), {0, 1}), fd.samples.x);
  la::Matrix k_noise =
      gram(SubsetKernel(std::make_unique<RbfKernel>(0.5), {2, 3}), fd.samples.x);
  EXPECT_GT(target_alignment(k_signal, fd.samples.y),
            target_alignment(k_noise, fd.samples.y) + 0.05);
}

TEST(Alignment, MedianHeuristicPositive) {
  Rng rng(8);
  data::Samples s = make_blobs(50, 4, 2.0, 1.0, rng);
  double g = median_heuristic_gamma(s.x, {0, 1, 2, 3});
  EXPECT_GT(g, 0.0);
  // Degenerate data: all points identical -> fallback.
  la::Matrix same(5, 2, 3.0);
  EXPECT_DOUBLE_EQ(median_heuristic_gamma(same, {0, 1}), 1.0);
}

TEST(Svm, SeparatesLinearlySeparableBlobs) {
  Rng rng(9);
  data::Samples train = make_blobs(80, 2, 6.0, 0.5, rng);
  data::Samples test = make_blobs(40, 2, 6.0, 0.5, rng);
  KernelSvmClassifier clf(std::make_unique<LinearKernel>());
  clf.fit(train);
  EXPECT_GE(clf.accuracy(test), 0.95);
}

TEST(Svm, RbfSolvesXor) {
  Rng rng(10);
  data::Samples train = make_xor(150, 0.0, rng);
  data::Samples test = make_xor(80, 0.0, rng);
  KernelSvmClassifier clf(std::make_unique<RbfKernel>(2.0), SvmParams{.c = 10.0});
  clf.fit(train);
  EXPECT_GE(clf.accuracy(test), 0.9);
}

TEST(Svm, LinearFailsXorButRbfDoesNot) {
  Rng rng(11);
  data::Samples train = make_xor(150, 0.0, rng);
  data::Samples test = make_xor(100, 0.0, rng);
  KernelSvmClassifier linear(std::make_unique<LinearKernel>());
  linear.fit(train);
  KernelSvmClassifier rbf(std::make_unique<RbfKernel>(2.0), SvmParams{.c = 10.0});
  rbf.fit(train);
  EXPECT_LT(linear.accuracy(test), 0.7);  // near chance
  EXPECT_GT(rbf.accuracy(test), linear.accuracy(test) + 0.15);
}

TEST(Svm, RbfSolvesCircles) {
  Rng rng(12);
  data::Samples train = make_circles(160, 1.0, 3.0, 0.1, rng);
  data::Samples test = make_circles(80, 1.0, 3.0, 0.1, rng);
  KernelSvmClassifier clf(std::make_unique<RbfKernel>(0.5), SvmParams{.c = 10.0});
  clf.fit(train);
  EXPECT_GE(clf.accuracy(test), 0.95);
}

TEST(Svm, Validation) {
  la::Matrix g{{1, 0}, {0, 1}};
  EXPECT_THROW(train_svm(g, {1, 1}), InvalidArgument);           // one class
  EXPECT_THROW(train_svm(g, {0, 2}), InvalidArgument);           // bad label
  EXPECT_THROW(train_svm(g, {0}), InvalidArgument);              // size mismatch
  EXPECT_THROW(train_svm(g, {0, 1}, SvmParams{.c = 0.0}), InvalidArgument);
  EXPECT_THROW(train_svm(la::Matrix(2, 3), {0, 1}), InvalidArgument);
}

TEST(Svm, SupportVectorsAreSubset) {
  Rng rng(13);
  data::Samples train = make_blobs(60, 2, 6.0, 0.5, rng);
  la::Matrix g = gram(LinearKernel(), train.x);
  SvmModel m = train_svm(g, train.y);
  EXPECT_GT(m.num_support_vectors(), 0u);
  // Well-separated blobs need few support vectors.
  EXPECT_LT(m.num_support_vectors(), 30u);
}

TEST(Svm, DeterministicForFixedSeed) {
  Rng rng(14);
  data::Samples train = make_blobs(40, 2, 4.0, 1.0, rng);
  la::Matrix g = gram(RbfKernel(0.5), train.x);
  SvmModel a = train_svm(g, train.y, SvmParams{.seed = 3});
  SvmModel b = train_svm(g, train.y, SvmParams{.seed = 3});
  EXPECT_EQ(a.alphas(), b.alphas());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(Mkl, CombineGramsWeightedSum) {
  la::Matrix a{{1, 0}, {0, 1}};
  la::Matrix b{{0, 2}, {2, 0}};
  la::Matrix c = combine_grams({a, b}, {0.5, 0.25});
  EXPECT_DOUBLE_EQ(c(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.5);
  EXPECT_THROW(combine_grams({a, b}, {0.5}), InvalidArgument);
  EXPECT_THROW(combine_grams({a, b}, {0.5, -0.1}), InvalidArgument);
}

TEST(Mkl, UniformWeightsSumToOne) {
  auto w = uniform_weights(4);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
}

TEST(Mkl, AlignmentWeightsFavorInformativeView) {
  Rng rng(15);
  data::FacetedData fd = data::make_faceted_gaussian(
      120, {{2, 4.0, 1.0, true}, {2, 0.0, 1.0, false}}, rng);
  std::vector<la::Matrix> grams{
      gram(SubsetKernel(std::make_unique<RbfKernel>(0.5), fd.views[0]), fd.samples.x),
      gram(SubsetKernel(std::make_unique<RbfKernel>(0.5), fd.views[1]), fd.samples.x)};
  auto w = alignment_weights(grams, fd.samples.y);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  EXPECT_GT(w[0], w[1]);
}

TEST(Mkl, OptimizedWeightsAtLeastAsAlignedAsHeuristic) {
  Rng rng(16);
  data::FacetedData fd = data::make_faceted_gaussian(
      100, {{2, 3.0, 1.0, true}, {2, 1.5, 1.0, true}, {2, 0.0, 1.0, false}}, rng);
  std::vector<la::Matrix> grams;
  for (const auto& view : fd.views) {
    grams.push_back(
        gram(SubsetKernel(std::make_unique<RbfKernel>(0.5), view), fd.samples.x));
  }
  auto w_heur = alignment_weights(grams, fd.samples.y);
  auto w_opt = optimize_alignment_weights(grams, fd.samples.y);
  const double a_heur = target_alignment(combine_grams(grams, w_heur), fd.samples.y);
  const double a_opt = target_alignment(combine_grams(grams, w_opt), fd.samples.y);
  EXPECT_GE(a_opt, a_heur - 1e-9);
}

TEST(Mkl, CvAccuracyPrecomputedReasonable) {
  Rng rng(17);
  data::Samples s = make_blobs(80, 2, 6.0, 0.5, rng);
  la::Matrix g = gram(RbfKernel(0.5), s.x);
  Rng cv_rng(1);
  double acc = cv_accuracy_precomputed(g, s.y, 5, cv_rng);
  EXPECT_GE(acc, 0.9);
}

TEST(Mkl, MultiKernelBeatsNoisyMonolithicKernel) {
  // Core claim of Sections I/III: exploiting the facet structure (one kernel
  // per view, alignment-weighted) beats a single kernel over the
  // concatenation when some views are noise.
  Rng rng(18);
  // High-variance noise facets dominate the global distance metric; the
  // per-view kernels let alignment weighting suppress them.
  data::FacetedData fd = data::make_faceted_gaussian(
      160,
      {{2, 3.0, 1.0, true}, {8, 0.0, 4.0, false}, {8, 0.0, 4.0, false}},
      rng);
  // Single kernel over everything.
  std::vector<std::size_t> all_features(fd.samples.dim());
  std::iota(all_features.begin(), all_features.end(), std::size_t{0});
  la::Matrix k_mono =
      gram(RbfKernel(median_heuristic_gamma(fd.samples.x, all_features)), fd.samples.x);

  // One kernel per view, weighted by alignment.
  std::vector<la::Matrix> grams;
  for (const auto& view : fd.views) {
    grams.push_back(gram(SubsetKernel(std::make_unique<RbfKernel>(
                                          median_heuristic_gamma(fd.samples.x, view)),
                                      view),
                         fd.samples.x));
  }
  la::Matrix k_mkl = combine_grams(grams, alignment_weights(grams, fd.samples.y));

  Rng cv1(5), cv2(5);
  const double acc_mono = cv_accuracy_precomputed(k_mono, fd.samples.y, 5, cv1);
  const double acc_mkl = cv_accuracy_precomputed(k_mkl, fd.samples.y, 5, cv2);
  EXPECT_GT(acc_mkl, acc_mono + 0.02);  // structure awareness wins...
  EXPECT_GE(acc_mkl, 0.8);              // ...and is genuinely good
}

TEST(Krr, RecoversSmoothFunction) {
  Rng rng(19);
  la::Matrix x(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.uniform(-3.0, 3.0);
    y[i] = std::sin(x(i, 0));
  }
  KernelRidge krr(std::make_unique<RbfKernel>(1.0), 1e-3);
  krr.fit(x, y);
  EXPECT_LT(krr.training_rmse(), 0.05);

  la::Matrix probe(1, 1);
  probe(0, 0) = 1.0;
  EXPECT_NEAR(krr.predict(probe)[0], std::sin(1.0), 0.1);
}

TEST(Krr, Validation) {
  EXPECT_THROW(KernelRidge(nullptr, 1.0), InvalidArgument);
  EXPECT_THROW(KernelRidge(std::make_unique<LinearKernel>(), 0.0), InvalidArgument);
  KernelRidge krr(std::make_unique<LinearKernel>(), 1.0);
  la::Matrix probe(1, 1);
  EXPECT_THROW(krr.predict(probe), InvalidArgument);  // not fitted
}

}  // namespace
}  // namespace iotml::kernels
