#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "roughsets/roughsets.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::rough {
namespace {

using data::Dataset;
using data::make_phone_fleet;
using data::make_phone_fleet_paper;

TEST(Indiscernibility, PaperPhoneExampleClasses) {
  // Paper Section III: K = {OS} yields ~K = {{1,2},{3},{4}} (1-based).
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {ds.column_index("os")});
  ASSERT_EQ(rel.num_classes(), 3u);
  EXPECT_EQ(rel.class_of(0), rel.class_of(1));
  EXPECT_NE(rel.class_of(0), rel.class_of(2));
  EXPECT_NE(rel.class_of(2), rel.class_of(3));
}

TEST(Indiscernibility, PaperPhoneExampleApproximation) {
  // T = available phones = {2, 3} (1-based). Lower = {3}; upper = {1,2,3};
  // the paper's granule-ratio accuracy = 0.5; element accuracy = 1/3.
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {ds.column_index("os")});
  Approximation a = approximate_label(rel, ds.labels(), 1);
  EXPECT_EQ(a.lower_rows, (std::vector<std::size_t>{2}));
  EXPECT_EQ(a.upper_rows, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(a.lower_granules, 1u);
  EXPECT_EQ(a.upper_granules, 2u);
  EXPECT_DOUBLE_EQ(a.accuracy_granules(), 0.5);  // the paper's value
  EXPECT_NEAR(a.accuracy_elements(), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.quality(), 0.25);
}

TEST(Indiscernibility, FullFeatureSetSeparatesPaperPhones) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {0, 1});
  EXPECT_EQ(rel.num_classes(), 4u);  // all rows distinct on (battery, os)
  Approximation a = approximate_label(rel, ds.labels(), 1);
  EXPECT_DOUBLE_EQ(a.accuracy_elements(), 1.0);  // concept becomes crisp
}

TEST(Indiscernibility, EmptyFeatureSetIsIndiscrete) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {});
  EXPECT_EQ(rel.num_classes(), 1u);
}

TEST(Indiscernibility, ToPartitionBridgesToLattice) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel_os(ds, {ds.column_index("os")});
  auto p_os = rel_os.to_partition();
  EXPECT_EQ(p_os.to_string(), "12/3/4");

  // Refinement: ~{battery, os} refines ~{os} (more features = finer classes).
  IndiscernibilityRelation rel_both(ds, {0, 1});
  EXPECT_TRUE(rel_both.to_partition().refines(p_os));
}

TEST(Indiscernibility, RefinementMonotoneProperty) {
  // For random fleets, adding features always refines the relation.
  Rng rng(17);
  Dataset ds = make_phone_fleet(120, 0.1, rng);
  IndiscernibilityRelation r1(ds, {0});
  IndiscernibilityRelation r12(ds, {0, 1});
  IndiscernibilityRelation r123(ds, {0, 1, 2});
  EXPECT_TRUE(r123.to_partition().refines(r12.to_partition()));
  EXPECT_TRUE(r12.to_partition().refines(r1.to_partition()));
}

TEST(Indiscernibility, MissingIsItsOwnValue) {
  Dataset ds;
  auto& c = ds.add_categorical_column("c");
  c.push_category("a");
  c.push_missing();
  c.push_missing();
  c.push_category("a");
  IndiscernibilityRelation rel(ds, {0});
  EXPECT_EQ(rel.num_classes(), 2u);
  EXPECT_EQ(rel.class_of(1), rel.class_of(2));
  EXPECT_EQ(rel.class_of(0), rel.class_of(3));
}

TEST(Indiscernibility, FeatureOutOfRangeThrows) {
  Dataset ds = make_phone_fleet_paper();
  EXPECT_THROW(IndiscernibilityRelation(ds, {7}), InvalidArgument);
}

TEST(Approximation, LowerSubsetOfUpperProperty) {
  Rng rng(21);
  Dataset ds = make_phone_fleet(200, 0.2, rng);
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    IndiscernibilityRelation rel(ds, {f});
    for (int c = 0; c < 2; ++c) {
      Approximation a = approximate_label(rel, ds.labels(), c);
      // lower subseteq upper, both sorted.
      EXPECT_TRUE(std::includes(a.upper_rows.begin(), a.upper_rows.end(),
                                a.lower_rows.begin(), a.lower_rows.end()));
      EXPECT_LE(a.accuracy_elements(), 1.0);
      EXPECT_GE(a.accuracy_elements(), 0.0);
    }
  }
}

TEST(Approximation, CrispConceptHasAccuracyOne) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {0, 1});
  std::vector<bool> concept_mask{true, false, false, true};
  Approximation a = approximate(rel, concept_mask);
  EXPECT_DOUBLE_EQ(a.accuracy_elements(), 1.0);
  EXPECT_DOUBLE_EQ(a.accuracy_granules(), 1.0);
}

TEST(Approximation, EmptyConceptConvention) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {0});
  Approximation a = approximate(rel, std::vector<bool>(4, false));
  EXPECT_TRUE(a.lower_rows.empty());
  EXPECT_TRUE(a.upper_rows.empty());
  EXPECT_DOUBLE_EQ(a.accuracy_elements(), 1.0);
}

TEST(Approximation, MaskSizeMismatchThrows) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation rel(ds, {0});
  EXPECT_THROW(approximate(rel, std::vector<bool>(3)), InvalidArgument);
}

TEST(Dependency, FullFeaturesDetermineNoiselessLabels) {
  Rng rng(30);
  Dataset ds = make_phone_fleet(300, 0.0, rng);
  IndiscernibilityRelation rel(ds, {0, 1, 2});
  EXPECT_DOUBLE_EQ(dependency_degree(rel, ds.labels()), 1.0);
}

TEST(Dependency, NoiseReducesDependency) {
  Rng rng(31);
  Dataset clean = make_phone_fleet(400, 0.0, rng);
  Dataset noisy = make_phone_fleet(400, 0.3, rng);
  IndiscernibilityRelation rc(clean, {0, 1, 2});
  IndiscernibilityRelation rn(noisy, {0, 1, 2});
  EXPECT_GT(dependency_degree(rc, clean.labels()),
            dependency_degree(rn, noisy.labels()));
}

TEST(Entropy, DiscretePartitionMaximal) {
  Dataset ds = make_phone_fleet_paper();
  IndiscernibilityRelation fine(ds, {0, 1});   // 4 singleton granules
  IndiscernibilityRelation coarse(ds, {});     // 1 granule
  EXPECT_NEAR(partition_entropy(fine), std::log(4.0), 1e-12);
  EXPECT_NEAR(partition_entropy(coarse), 0.0, 1e-12);
}

TEST(Entropy, ConditionalEntropyZeroWhenDetermined) {
  Rng rng(32);
  Dataset ds = make_phone_fleet(200, 0.0, rng);
  IndiscernibilityRelation rel(ds, {0, 1, 2});
  EXPECT_NEAR(conditional_entropy(rel, ds.labels()), 0.0, 1e-12);
}

TEST(Entropy, ConditionalEntropyDecreasesWithMoreFeatures) {
  Rng rng(33);
  Dataset ds = make_phone_fleet(400, 0.1, rng);
  IndiscernibilityRelation r1(ds, {0});
  IndiscernibilityRelation r123(ds, {0, 1, 2});
  EXPECT_LE(conditional_entropy(r123, ds.labels()),
            conditional_entropy(r1, ds.labels()) + 1e-12);
}

TEST(SelectK, FindsDeterminingSubset) {
  Rng rng(34);
  Dataset ds = make_phone_fleet(300, 0.0, rng);
  KSelection sel = select_k(ds, 3, KScore::kDependency);
  EXPECT_DOUBLE_EQ(sel.score, 1.0);
  EXPECT_EQ(sel.features.size(), 3u);  // all three needed for gamma = 1
}

TEST(SelectK, PrefersSmallerSubsetOnTies) {
  // Duplicate column: {0} and {0, 1} score identically; {0} must win.
  Dataset ds;
  auto& a = ds.add_categorical_column("a");
  auto& b = ds.add_categorical_column("b");
  for (int i = 0; i < 8; ++i) {
    a.push_category(i % 2 == 0 ? "u" : "v");
    b.push_category(i % 2 == 0 ? "u" : "v");
  }
  ds.set_labels({0, 1, 0, 1, 0, 1, 0, 1});
  KSelection sel = select_k(ds, 2, KScore::kDependency);
  EXPECT_EQ(sel.features.size(), 1u);
  EXPECT_DOUBLE_EQ(sel.score, 1.0);
}

TEST(SelectK, CountsEvaluations) {
  Dataset ds = make_phone_fleet_paper();
  KSelection sel = select_k(ds, 2, KScore::kMeanAccuracy);
  // Subsets of size 1 and 2 out of 2 features: 2 + 1 = 3.
  EXPECT_EQ(sel.evaluated_subsets, 3u);
}

TEST(SelectK, EntropyAndDependencyAgreeOnNoiseless) {
  Rng rng(35);
  Dataset ds = make_phone_fleet(300, 0.0, rng);
  KSelection by_gamma = select_k(ds, 3, KScore::kDependency);
  KSelection by_entropy = select_k(ds, 3, KScore::kNegConditionalEntropy);
  EXPECT_EQ(by_gamma.features, by_entropy.features);
}

TEST(SelectK, RequiresLabels) {
  Dataset ds;
  ds.add_categorical_column("a").push_category("x");
  EXPECT_THROW(select_k(ds, 1, KScore::kDependency), InvalidArgument);
}

TEST(Reducts, DropsRedundantDuplicateColumn) {
  Dataset ds;
  auto& a = ds.add_categorical_column("a");
  auto& b = ds.add_categorical_column("b");
  auto& c = ds.add_categorical_column("c");
  const char* av[] = {"x", "x", "y", "y"};
  const char* cv[] = {"p", "q", "p", "q"};
  for (int i = 0; i < 4; ++i) {
    a.push_category(av[i]);
    b.push_category(av[i]);  // duplicate of a
    c.push_category(cv[i]);
  }
  ds.set_labels({0, 0, 1, 1});  // determined by a (equivalently b)
  auto reducts = find_reducts(ds);
  // Minimal determining subsets: {a} and {b}.
  ASSERT_EQ(reducts.size(), 2u);
  EXPECT_EQ(reducts[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(reducts[1], (std::vector<std::size_t>{1}));
}

TEST(Reducts, FullSetWhenAllFeaturesNeeded) {
  Rng rng(36);
  Dataset ds = make_phone_fleet(400, 0.0, rng);
  auto reducts = find_reducts(ds);
  ASSERT_EQ(reducts.size(), 1u);
  EXPECT_EQ(reducts[0], (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace iotml::rough
