struct Rng {
  explicit Rng(unsigned seed);
};

int main() {
  Rng first(1);   // rng-stream: data
  Rng second(2);  // rng-stream: data
  (void)first;
  (void)second;
  return 0;
}
