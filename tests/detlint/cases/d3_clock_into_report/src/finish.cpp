#include <cstdint>

namespace obs {
std::int64_t now_us();
}

struct FleetReport {
  std::uint64_t wall_us = 0;
};

void finish(FleetReport& report) {
  report.wall_us = static_cast<std::uint64_t>(obs::now_us());
}
