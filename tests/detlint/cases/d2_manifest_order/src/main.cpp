struct Rng {
  explicit Rng(unsigned seed);
};

int main() {
  Rng noise(7);  // rng-stream: beta
  (void)noise;
  return 0;
}
