#pragma once
#include "a.hpp"
inline int from_b() { return 2; }
