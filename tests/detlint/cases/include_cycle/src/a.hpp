#pragma once
#include "b.hpp"
inline int from_a() { return 1; }
