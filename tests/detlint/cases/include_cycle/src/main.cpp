#include "a.hpp"

struct Rng {
  explicit Rng(unsigned seed);
};

int main() {
  Rng data(9);  // rng-stream: data
  return from_a() + from_b();
}
