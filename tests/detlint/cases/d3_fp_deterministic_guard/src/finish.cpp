#include <cstdint>

namespace obs {
std::int64_t now_us();
}

struct FleetReport {
  std::uint64_t wall_us = 0;
};

void finish(FleetReport& report, bool deterministic_mode) {
  report.wall_us = deterministic_mode ? 0 : static_cast<std::uint64_t>(obs::now_us());
}
