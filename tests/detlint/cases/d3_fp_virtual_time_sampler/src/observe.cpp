// The observatory samples on the sim's *virtual* clock: timestamps flow in
// from the scheduler as plain doubles, never from a wall-clock read, so
// recording them into a time-series or a report field must NOT trip D3.
// The last line is the control: a real obs::now_us() read into a report
// field, which must still be flagged.
#include <cstdint>

namespace obs {
std::int64_t now_us();
}

struct Sampler {
  void record(double t_s, double value);
};

struct FleetReport {
  double duration_s = 0.0;
  std::uint64_t wall_us = 0;
};

void observe(FleetReport& report, Sampler& series, double now_s, double rows) {
  series.record(now_s, rows);   // virtual time: clean
  report.duration_s = now_s;    // virtual time into a report field: clean
  report.wall_us = static_cast<std::uint64_t>(obs::now_us());  // control: D3
}
