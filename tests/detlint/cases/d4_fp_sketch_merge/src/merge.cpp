// Mergeable-sketch folds accumulate floats in loops, but over *sorted*
// std::vector shards — the reduction order is fixed by the container, so
// D4 must stay quiet. This is the shape src/approx uses when the core folds
// quantile-sketch summaries from many edges: shards arrive in edge order,
// values inside a shard are rank-sorted at build time.
#include <vector>

double fold_sketch_shards(const std::vector<std::vector<double>>& shards) {
  double total = 0.0;
  for (const std::vector<double>& shard : shards) {
    for (double v : shard) {
      total += v;  // ordered container: deterministic reduction
    }
  }
  return total;
}

double weighted_tally(const std::vector<double>& counts) {
  double sum = 0.0;
  std::size_t i = 0;
  for (double c : counts) {
    sum += c * static_cast<double>(++i);
  }
  return sum;
}
