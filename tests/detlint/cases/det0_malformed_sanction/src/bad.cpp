#include <unordered_set>

// det-sanctioned
std::unordered_set<int> ids;

bool known(int id) { return ids.count(id) != 0; }
