struct Rng {
  explicit Rng(unsigned seed);
  Rng split();
};

int main() {
  Rng data(42);
  Rng forked = data.split();
  (void)forked;
  return 0;
}
