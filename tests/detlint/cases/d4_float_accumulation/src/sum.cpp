#include <unordered_set>

double jitter_sum() {
  // det-sanctioned: membership use; this fixture targets the accumulation rule
  std::unordered_set<int> samples{1, 2, 3};
  double total = 0.0;
  for (int v : samples) {
    total += static_cast<double>(v);
  }
  return total;
}
