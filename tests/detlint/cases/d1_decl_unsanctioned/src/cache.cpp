#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> lookup_cache;

int cached(const std::string& key) { return lookup_cache.count(key) ? lookup_cache[key] : 0; }
