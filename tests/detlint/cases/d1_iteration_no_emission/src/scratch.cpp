#include <unordered_set>

int count_evens() {
  // det-sanctioned: local scratch, order-insensitive integer count
  std::unordered_set<int> s{2, 4, 6};
  int n = 0;
  for (int v : s) {
    if (v % 2 == 0) n = n + 1;
  }
  return n;
}
