struct Rng {
  explicit Rng(unsigned seed);
  Rng split();
};

int main() {
  Rng master(3);  // rng-stream: master
  // rng-stream: worker (own-line form)
  Rng worker = master.split();
  (void)worker;
  return 0;
}
