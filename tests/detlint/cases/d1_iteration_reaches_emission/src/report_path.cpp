#include <string>
#include <unordered_map>

// det-sanctioned: fixture decl — the iteration below is the finding under test
std::unordered_map<std::string, int> counters;

std::string json_escape(const std::string& s) { return s; }

std::string to_json() {
  std::string out = "{";
  for (const auto& kv : counters) {
    out += json_escape(kv.first);
  }
  return out + "}";
}
