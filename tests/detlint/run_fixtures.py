#!/usr/bin/env python3
"""Golden-diff driver for the detlint fixture corpus.

Each directory under --cases is a miniature repo root (src/, optionally
bench/, examples/ and tools/detlint/rng_streams.txt) paired with an
expected.txt holding the exact detlint stdout for that root. The driver runs
`detlint --root <case>` on every case and diffs stdout against the golden,
byte-for-byte — detlint sorts and dedupes its diagnostics precisely so these
goldens stay stable.

Usage:
  run_fixtures.py --detlint PATH --cases DIR [--update]

--update rewrites every expected.txt from the current detlint output
(review the diff before committing, same contract as --update-rng-manifest).
"""

import argparse
import difflib
import pathlib
import subprocess
import sys


def run_case(detlint: str, case: pathlib.Path, update: bool) -> bool:
    golden = case / "expected.txt"
    proc = subprocess.run(
        [detlint, "--root", str(case)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if proc.returncode not in (0, 1):
        print(f"FAIL {case.name}: detlint exited {proc.returncode}")
        sys.stdout.write(proc.stderr)
        return False
    if update:
        golden.write_text(proc.stdout)
        print(f"UPDATE {case.name}: {len(proc.stdout.splitlines())} line(s)")
        return True
    want = golden.read_text() if golden.exists() else ""
    expect_findings = bool(want.strip())
    if proc.stdout != want:
        print(f"FAIL {case.name}: output differs from expected.txt")
        sys.stdout.writelines(
            difflib.unified_diff(
                want.splitlines(keepends=True),
                proc.stdout.splitlines(keepends=True),
                fromfile=f"{case.name}/expected.txt",
                tofile=f"{case.name}/detlint-output",
            )
        )
        return False
    if expect_findings != (proc.returncode == 1):
        print(
            f"FAIL {case.name}: exit code {proc.returncode} inconsistent with "
            f"{'non-empty' if expect_findings else 'empty'} golden"
        )
        return False
    print(f"PASS {case.name}")
    return True


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--detlint", required=True, help="path to the detlint binary")
    ap.add_argument("--cases", required=True, help="fixture corpus directory")
    ap.add_argument("--update", action="store_true", help="rewrite goldens")
    args = ap.parse_args()

    cases = sorted(p for p in pathlib.Path(args.cases).iterdir() if p.is_dir())
    if not cases:
        print(f"no fixture cases found under {args.cases}")
        return 1
    failures = sum(0 if run_case(args.detlint, c, args.update) else 1 for c in cases)
    print(f"{len(cases) - failures}/{len(cases)} fixture case(s) passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
