// Robustness and failure-injection tests: degenerate inputs, extreme
// corruption, minimum sizes, and hostile configurations across the library.
// Nothing here should crash, hang, or silently return garbage — either a
// sensible result or a typed iotml::Error.

#include <gtest/gtest.h>

#include <cmath>

#include "core/faceted_learner.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "kernels/mkl.hpp"
#include "learners/decision_tree.hpp"
#include "learners/naive_bayes.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/sensors.hpp"
#include "pipeline/stages.hpp"
#include "roughsets/roughsets.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml {
namespace {

// ---- Extreme sensor corruption ---------------------------------------------------

TEST(Robustness, NinetyPercentDropoutStillIntegrates) {
  Rng rng(1);
  pipeline::SensorSpec spec{.name = "s", .period_s = 0.05, .dropout_prob = 0.9};
  auto stream = pipeline::simulate_sensor(spec, [](double) { return 1.0; }, 60.0, rng);
  EXPECT_GT(stream.readings.size(), 20u);  // ~120 of 1200 survive
  auto integ = pipeline::integrate_streams({stream});
  EXPECT_EQ(integ.records.rows(), stream.readings.size());
  EXPECT_DOUBLE_EQ(integ.missing_rate, 0.0);  // single stream: no holes
}

TEST(Robustness, SingleReadingStream) {
  pipeline::SensorStream one{.sensor_name = "x", .readings = {{5.0, 3.0}}};
  auto integ = pipeline::integrate_streams({one});
  EXPECT_EQ(integ.records.rows(), 1u);
  EXPECT_DOUBLE_EQ(integ.records.column(1).numeric(0), 3.0);
}

TEST(Robustness, AllSensorsBiasedConsensusStillDefined) {
  // Every sensor lies identically: trust scoring can't detect it (no
  // reference) but must not crash and must keep all trusts equal.
  Rng rng(2);
  std::vector<pipeline::SensorStream> streams;
  for (int i = 0; i < 3; ++i) {
    pipeline::SensorSpec spec{.name = "s" + std::to_string(i), .period_s = 1.0,
                              .noise_std = 0.1, .bias = 5.0};
    streams.push_back(
        pipeline::simulate_sensor(spec, [](double) { return 0.0; }, 30.0, rng));
  }
  auto records = pipeline::integrate_streams(streams, {.merge_tolerance_s = 0.01}).records;
  // Requires trust.hpp only transitively; direct check via preparation:
  // imputing a complete dataset is a no-op.
  Rng prep(1);
  auto report = pipeline::impute(records, pipeline::ImputeStrategy::kMean, prep);
  EXPECT_EQ(report.cells_imputed, 0u);
}

// ---- Degenerate datasets ----------------------------------------------------------

TEST(Robustness, TwoRowDatasetTrainsEverywhere) {
  data::Dataset tiny;
  auto& x = tiny.add_numeric_column("x");
  x.push_numeric(0.0);
  x.push_numeric(1.0);
  tiny.set_labels({0, 1});

  learners::DecisionTree tree(learners::DecisionTreeParams{.min_samples_leaf = 1});
  tree.fit(tiny);
  EXPECT_EQ(tree.predict_row(tiny, 0), 0);
  EXPECT_EQ(tree.predict_row(tiny, 1), 1);

  learners::NaiveBayes nb;
  nb.fit(tiny);
  EXPECT_NO_THROW(nb.predict_row(tiny, 0));
}

TEST(Robustness, ConstantFeatureDoesNotBreakAnything) {
  Rng rng(3);
  data::Samples s = data::make_blobs(60, 2, 4.0, 1.0, rng);
  // Append a constant column.
  la::Matrix with_constant(s.size(), 3);
  for (std::size_t r = 0; r < s.size(); ++r) {
    with_constant(r, 0) = s.x(r, 0);
    with_constant(r, 1) = s.x(r, 1);
    with_constant(r, 2) = 7.0;
  }
  s.x = with_constant;

  core::FacetedLearner learner;
  EXPECT_NO_THROW(learner.fit(s));
  EXPECT_GE(learner.accuracy(s), 0.9);
}

TEST(Robustness, DuplicatePointsMakeGramSingularButSvmCopes) {
  // Identical rows produce a rank-deficient Gram; SMO must still terminate.
  data::Samples s;
  s.x = la::Matrix(8, 1);
  for (std::size_t i = 0; i < 8; ++i) s.x(i, 0) = i < 4 ? 0.0 : 1.0;
  s.y = {0, 0, 0, 0, 1, 1, 1, 1};
  kernels::KernelSvmClassifier clf(std::make_unique<kernels::LinearKernel>());
  EXPECT_NO_THROW(clf.fit(s));
  EXPECT_DOUBLE_EQ(clf.accuracy(s), 1.0);
}

TEST(Robustness, HeavilyImbalancedClasses) {
  Rng rng(4);
  data::Samples s;
  s.x = la::Matrix(100, 2);
  s.y.assign(100, 0);
  for (std::size_t i = 0; i < 100; ++i) {
    const bool minority = i >= 95;
    s.y[i] = minority ? 1 : 0;
    s.x(i, 0) = rng.normal(minority ? 5.0 : -5.0, 0.5);
    s.x(i, 1) = rng.normal();
  }
  kernels::KernelSvmClassifier clf(std::make_unique<kernels::RbfKernel>(0.5));
  clf.fit(s);
  EXPECT_GE(clf.accuracy(s), 0.97);
}

TEST(Robustness, AllCellsMissingColumnSurvivesPipeline) {
  data::Dataset ds;
  auto& a = ds.add_numeric_column("dead");
  auto& b = ds.add_numeric_column("alive");
  for (int i = 0; i < 10; ++i) {
    a.push_missing();
    b.push_numeric(i);
  }
  Rng rng(5);
  auto report = pipeline::impute(ds, pipeline::ImputeStrategy::kKnn, rng);
  EXPECT_EQ(report.cells_unresolved, 10u);  // nothing to learn from
  EXPECT_DOUBLE_EQ(ds.column(1).numeric(3), 3.0);  // others untouched
  // Normalization skips the dead column without throwing.
  EXPECT_NO_THROW(pipeline::normalize(ds, pipeline::NormalizeKind::kZScore));
}

// ---- Rough sets under pathological granularity -------------------------------------

TEST(Robustness, AllRowsIdenticalSingleGranule) {
  data::Dataset ds;
  auto& c = ds.add_categorical_column("c");
  for (int i = 0; i < 6; ++i) c.push_category("same");
  ds.set_labels({0, 1, 0, 1, 0, 1});
  rough::IndiscernibilityRelation rel(ds, {0});
  EXPECT_EQ(rel.num_classes(), 1u);
  EXPECT_DOUBLE_EQ(rough::dependency_degree(rel, ds.labels()), 0.0);
  auto a = rough::approximate_label(rel, ds.labels(), 1);
  EXPECT_TRUE(a.lower_rows.empty());
  EXPECT_EQ(a.upper_rows.size(), 6u);
}

TEST(Robustness, AllRowsDistinctEveryGranuleSingleton) {
  data::Dataset ds;
  auto& c = ds.add_numeric_column("x");
  for (int i = 0; i < 8; ++i) c.push_numeric(i);
  ds.set_labels({0, 1, 0, 1, 0, 1, 0, 1});
  rough::IndiscernibilityRelation rel(ds, {0});
  EXPECT_EQ(rel.num_classes(), 8u);
  EXPECT_DOUBLE_EQ(rough::dependency_degree(rel, ds.labels()), 1.0);  // overfit
}

// ---- Stage classes and pipelines ----------------------------------------------------

TEST(Robustness, DeclarativePipelineEndToEnd) {
  Rng rng(6);
  data::Samples s = data::make_blobs(200, 4, 4.0, 1.0, rng);
  data::Dataset ds = data::samples_to_dataset(s);
  for (std::size_t f = 0; f < 4; ++f) {
    for (std::size_t r = 0; r < ds.rows(); ++r) {
      if (rng.bernoulli(0.2)) {
        ds.column(f).set_missing(r);
      } else if (rng.bernoulli(0.03)) {
        ds.column(f).set_numeric(r, 100.0);
      }
    }
  }

  pipeline::Pipeline p;
  p.add(std::make_unique<pipeline::PrivacyStage>(
      pipeline::PrivacyParams{.epsilon = 6.0, .sensitivity = {}, .randomize_categories = true}));
  p.add(std::make_unique<pipeline::OutlierStage>(4.0));
  p.add(std::make_unique<pipeline::ImputeStage>(pipeline::ImputeStrategy::kKnn));
  p.add(std::make_unique<pipeline::NormalizeStage>(pipeline::NormalizeKind::kZScore));
  p.add(std::make_unique<pipeline::FeatureSelectStage>(2));

  data::Dataset out = p.run(std::move(ds), rng);
  EXPECT_EQ(out.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(out.missing_rate(), 0.0);
  ASSERT_EQ(p.reports().size(), 5u);
  EXPECT_EQ(p.reports()[0].tier, pipeline::Tier::kDevice);
  EXPECT_GT(p.player_cost("preprocessor"), 0.0);
  EXPECT_GT(p.player_cost("device-owner"), 0.0);

  learners::DecisionTree tree;
  tree.fit(out);
  // Privacy noise + missing cells + outliers cost accuracy but the repaired
  // record remains well above chance.
  EXPECT_GE(tree.accuracy(out), 0.8);
}

TEST(Robustness, StageValidation) {
  EXPECT_THROW(pipeline::OutlierStage(0.0), InvalidArgument);
  EXPECT_THROW(pipeline::FeatureSelectStage(0), InvalidArgument);
  EXPECT_THROW(pipeline::PrivacyStage(
                   {.epsilon = 0.0, .sensitivity = {}, .randomize_categories = true}),
               InvalidArgument);
}

// ---- Search under adversarial configuration -----------------------------------------

TEST(Robustness, SearchWithTwoFeaturesOnly) {
  Rng rng(7);
  data::Samples s = data::make_blobs(80, 2, 4.0, 1.0, rng);
  for (auto strategy :
       {core::SearchStrategy::kExhaustive, core::SearchStrategy::kGreedyRefinement,
        core::SearchStrategy::kChain, core::SearchStrategy::kSmushing}) {
    core::FacetedLearnerConfig config;
    config.strategy = strategy;
    core::FacetedLearner learner(config);
    EXPECT_NO_THROW(learner.fit(s)) << core::strategy_name(strategy);
    EXPECT_GE(learner.accuracy(s), 0.9) << core::strategy_name(strategy);
  }
}

TEST(Robustness, SearchWithNearlyAllLabelsOneClass) {
  Rng rng(8);
  data::Samples s = data::make_blobs(90, 3, 5.0, 0.8, rng);
  // 80/10 imbalance, CV folds may get few minority rows; must not throw.
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.y[i] == 1 && i % 3 != 0) {
      s.y[i] = 0;
      s.x(i, 0) = rng.normal(-2.5, 0.8);
    }
  }
  core::FacetedLearner learner;
  EXPECT_NO_THROW(learner.fit(s));
}

TEST(Robustness, ImputationIdempotent) {
  Rng rng(9);
  data::Dataset ds = data::make_phone_fleet(100, 0.0, rng);
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    if (rng.bernoulli(0.3)) ds.column(0).set_missing(r);
  }
  Rng prep(1);
  pipeline::impute(ds, pipeline::ImputeStrategy::kMean, prep);
  data::Dataset once = ds;
  auto report = pipeline::impute(ds, pipeline::ImputeStrategy::kMean, prep);
  EXPECT_EQ(report.cells_imputed, 0u);  // second pass is a no-op
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    EXPECT_EQ(ds.column(0).category(r), once.column(0).category(r));
  }
}

}  // namespace
}  // namespace iotml
