#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/metrics.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace iotml::data {
namespace {

TEST(ColumnTest, NumericBasics) {
  Column c("temp", ColumnType::kNumeric);
  c.push_numeric(1.5);
  c.push_missing();
  c.push_numeric(3.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.numeric(0), 1.5);
  EXPECT_TRUE(c.is_missing(1));
  EXPECT_EQ(c.missing_count(), 1u);
  EXPECT_THROW(c.numeric(1), InvalidArgument);  // missing cell
  c.set_numeric(1, 2.0);
  EXPECT_FALSE(c.is_missing(1));
  EXPECT_DOUBLE_EQ(c.numeric(1), 2.0);
}

TEST(ColumnTest, CategoricalInterning) {
  Column c("os", ColumnType::kCategorical);
  c.push_category("Android");
  c.push_category("iOS");
  c.push_category("Android");
  EXPECT_EQ(c.categories().size(), 2u);
  EXPECT_EQ(c.category(0), c.category(2));
  EXPECT_EQ(c.category_label(1), "iOS");
}

TEST(ColumnTest, TypeMismatchThrows) {
  Column num("x", ColumnType::kNumeric);
  EXPECT_THROW(num.push_category("a"), InvalidArgument);
  Column cat("y", ColumnType::kCategorical);
  EXPECT_THROW(cat.push_numeric(1.0), InvalidArgument);
}

TEST(DatasetTest, BuildValidateSelect) {
  Dataset ds;
  auto& a = ds.add_numeric_column("a");
  auto& b = ds.add_categorical_column("b");
  for (int i = 0; i < 4; ++i) {
    a.push_numeric(i);
    b.push_category(i % 2 == 0 ? "even" : "odd");
  }
  ds.set_labels({0, 1, 0, 1});
  ds.validate();
  EXPECT_EQ(ds.rows(), 4u);
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_EQ(ds.column_index("b"), 1u);
  EXPECT_THROW(ds.column_index("zzz"), InvalidArgument);

  Dataset sub = ds.select_rows({1, 3});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.column(0).numeric(0), 1.0);
  EXPECT_EQ(sub.labels(), (std::vector<int>{1, 1}));

  Dataset cols = ds.select_columns({1});
  EXPECT_EQ(cols.num_columns(), 1u);
  EXPECT_EQ(cols.column(0).name(), "b");
  EXPECT_TRUE(cols.has_labels());
}

TEST(DatasetTest, ValidateCatchesRaggedColumns) {
  Dataset ds;
  ds.add_numeric_column("a").push_numeric(1.0);
  ds.add_numeric_column("b");  // empty
  EXPECT_THROW(ds.validate(), InvalidArgument);
}

TEST(DatasetTest, MissingRate) {
  Dataset ds;
  auto& a = ds.add_numeric_column("a");
  a.push_numeric(1);
  a.push_missing();
  a.push_missing();
  a.push_numeric(2);
  EXPECT_DOUBLE_EQ(ds.missing_rate(), 0.5);
}

TEST(DatasetTest, NegativeLabelsRejected) {
  Dataset ds;
  EXPECT_THROW(ds.set_labels({0, -1}), InvalidArgument);
}

TEST(ToSamples, ThrowPolicyOnMissing) {
  Dataset ds;
  auto& a = ds.add_numeric_column("a");
  a.push_numeric(1);
  a.push_missing();
  EXPECT_THROW(to_samples(ds), InvalidArgument);
}

TEST(ToSamples, NanAndMeanPolicies) {
  Dataset ds;
  auto& a = ds.add_numeric_column("a");
  a.push_numeric(1);
  a.push_missing();
  a.push_numeric(3);

  Samples nan = to_samples(ds, MissingPolicy::kNan);
  EXPECT_TRUE(std::isnan(nan.x(1, 0)));

  Samples mean = to_samples(ds, MissingPolicy::kColumnMean);
  EXPECT_DOUBLE_EQ(mean.x(1, 0), 2.0);
}

TEST(ToSamples, CategoricalAsIndex) {
  Dataset ds = make_phone_fleet_paper();
  Samples s = to_samples(ds);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.dim(), 2u);
  // Phones 1 and 3 share battery category AVERAGE.
  EXPECT_DOUBLE_EQ(s.x(0, 0), s.x(2, 0));
  EXPECT_EQ(s.y, (std::vector<int>{0, 1, 1, 0}));
}

TEST(ToSamples, SelectRowsView) {
  Dataset ds = make_phone_fleet_paper();
  Samples s = to_samples(ds);
  Samples sub = select_rows(s, {3, 0});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.y, (std::vector<int>{0, 0}));
  EXPECT_THROW(select_rows(s, {9}), InvalidArgument);
}

TEST(Metrics, Accuracy) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_THROW(accuracy({1}, {1, 2}), InvalidArgument);
  EXPECT_THROW(accuracy({}, {}), InvalidArgument);
}

TEST(Metrics, ConfusionMatrix) {
  la::Matrix m = confusion_matrix({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 1);
  EXPECT_DOUBLE_EQ(m(1, 0), 0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2);
  EXPECT_THROW(confusion_matrix({0, 3}, {0, 0}, 2), InvalidArgument);
}

TEST(Metrics, BinaryMetricsKnownCase) {
  // actual positives: rows 2,3; predicted positives: rows 1,3.
  BinaryMetrics m = binary_metrics({0, 0, 1, 1}, {0, 1, 0, 1}, 1);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(Metrics, BinaryMetricsDegenerate) {
  BinaryMetrics m = binary_metrics({0, 0}, {0, 0}, 1);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, MacroF1PerfectPrediction) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 1, 2, 0}, {0, 1, 2, 0}), 1.0);
}

TEST(Metrics, RmseMae) {
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(mae({0, 0}, {3, -4}), 3.5);
}

TEST(Metrics, MeanStd) {
  MeanStd ms = mean_std({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_NEAR(ms.stddev, 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(mean_std({3.0}).stddev, 0.0);
}

TEST(Split, TrainTestPartitionsIndices) {
  Rng rng(1);
  auto split = train_test_split(100, 0.25, rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(Split, TrainTestValidation) {
  Rng rng(1);
  EXPECT_THROW(train_test_split(1, 0.5, rng), InvalidArgument);
  EXPECT_THROW(train_test_split(10, 0.0, rng), InvalidArgument);
  EXPECT_THROW(train_test_split(10, 1.0, rng), InvalidArgument);
}

TEST(Split, StratifiedPreservesClassBalance) {
  Rng rng(2);
  std::vector<int> labels;
  for (int i = 0; i < 90; ++i) labels.push_back(0);
  for (int i = 0; i < 10; ++i) labels.push_back(1);
  auto split = stratified_split(labels, 0.3, rng);
  std::size_t minority_test = 0;
  for (std::size_t i : split.test) {
    if (labels[i] == 1) ++minority_test;
  }
  EXPECT_EQ(minority_test, 3u);  // 30% of 10
  EXPECT_EQ(split.train.size() + split.test.size(), 100u);
}

TEST(Split, KFoldCoversEachRowExactlyOnce) {
  Rng rng(3);
  KFold kf(23, 5, rng);
  std::set<std::size_t> tested;
  for (std::size_t f = 0; f < kf.num_folds(); ++f) {
    auto test = kf.test_indices(f);
    auto train = kf.train_indices(f);
    EXPECT_EQ(test.size() + train.size(), 23u);
    for (std::size_t idx : test) {
      EXPECT_TRUE(tested.insert(idx).second) << "row in two test folds";
    }
  }
  EXPECT_EQ(tested.size(), 23u);
}

TEST(Split, KFoldValidation) {
  Rng rng(1);
  EXPECT_THROW(KFold(5, 1, rng), InvalidArgument);
  EXPECT_THROW(KFold(3, 4, rng), InvalidArgument);
  KFold kf(10, 3, rng);
  EXPECT_THROW(kf.test_indices(3), InvalidArgument);
}

TEST(Synthetic, FacetedGaussianStructure) {
  Rng rng(4);
  FacetedData fd = make_faceted_gaussian(
      200, {{3, 3.0, 1.0, true}, {2, 2.0, 1.0, true}, {2, 0.0, 1.0, false}}, rng);
  EXPECT_EQ(fd.samples.size(), 200u);
  EXPECT_EQ(fd.samples.dim(), 7u);
  ASSERT_EQ(fd.views.size(), 3u);
  EXPECT_EQ(fd.views[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(fd.views[2], (std::vector<std::size_t>{5, 6}));
  // Balanced labels.
  int ones = 0;
  for (int y : fd.samples.y) ones += y;
  EXPECT_EQ(ones, 100);
}

TEST(Synthetic, FacetedGaussianInformativeViewSeparates) {
  Rng rng(5);
  FacetedData fd = make_faceted_gaussian(2000, {{2, 4.0, 1.0, true}}, rng);
  // Project on the difference of class means: strong separation expected.
  la::Vector mean0(2, 0.0), mean1(2, 0.0);
  int n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < fd.samples.size(); ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      (fd.samples.y[i] == 0 ? mean0 : mean1)[d] += fd.samples.x(i, d);
    }
    (fd.samples.y[i] == 0 ? n0 : n1)++;
  }
  for (std::size_t d = 0; d < 2; ++d) {
    mean0[d] /= n0;
    mean1[d] /= n1;
  }
  double dist = std::hypot(mean1[0] - mean0[0], mean1[1] - mean0[1]);
  EXPECT_NEAR(dist, 4.0, 0.3);
}

TEST(Synthetic, PhoneFleetPaperMatchesTable) {
  Dataset ds = make_phone_fleet_paper();
  EXPECT_EQ(ds.rows(), 4u);
  EXPECT_EQ(ds.column(0).category_label(3), "LOW");
  EXPECT_EQ(ds.column(1).category_label(2), "iOS");
  EXPECT_EQ(ds.labels(), (std::vector<int>{0, 1, 1, 0}));
}

TEST(Synthetic, PhoneFleetGeneratorGroundTruth) {
  Rng rng(6);
  Dataset ds = make_phone_fleet(500, 0.0, rng);
  EXPECT_EQ(ds.rows(), 500u);
  // With zero label noise the concept is deterministic in the features.
  const Column& battery = ds.column(0);
  const Column& os = ds.column(1);
  const Column& signal = ds.column(2);
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    const bool avail = battery.category_label(r) != "LOW" &&
                       os.category_label(r) != "Symbian" &&
                       signal.category_label(r) != "WEAK";
    EXPECT_EQ(ds.label(r), avail ? 1 : 0);
  }
}

TEST(Synthetic, BlobsSeparated) {
  Rng rng(7);
  Samples s = make_blobs(500, 3, 6.0, 1.0, rng);
  double m0 = 0, m1 = 0;
  int n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.y[i] == 0) {
      m0 += s.x(i, 0);
      ++n0;
    } else {
      m1 += s.x(i, 0);
      ++n1;
    }
  }
  EXPECT_NEAR(m0 / n0, -3.0, 0.3);
  EXPECT_NEAR(m1 / n1, 3.0, 0.3);
}

TEST(Synthetic, XorLabelsMatchQuadrant) {
  Rng rng(8);
  Samples s = make_xor(300, 0.0, rng);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.y[i], s.x(i, 0) * s.x(i, 1) > 0 ? 1 : 0);
  }
}

TEST(Synthetic, CirclesRadiiRespected) {
  Rng rng(9);
  Samples s = make_circles(400, 1.0, 3.0, 0.05, rng);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double r = std::hypot(s.x(i, 0), s.x(i, 1));
    EXPECT_NEAR(r, s.y[i] == 0 ? 1.0 : 3.0, 0.3);
  }
}

TEST(Csv, RoundTripNumericCategoricalMissing) {
  Dataset ds;
  auto& a = ds.add_numeric_column("a");
  auto& b = ds.add_categorical_column("b");
  a.push_numeric(1.25);
  a.push_missing();
  b.push_category("x");
  b.push_category("y");
  ds.set_labels({1, 0});

  std::stringstream buffer;
  write_csv(ds, buffer);
  Dataset back = read_csv(buffer);

  EXPECT_EQ(back.rows(), 2u);
  EXPECT_EQ(back.num_columns(), 2u);
  EXPECT_EQ(back.column(0).type(), ColumnType::kNumeric);
  EXPECT_EQ(back.column(1).type(), ColumnType::kCategorical);
  EXPECT_DOUBLE_EQ(back.column(0).numeric(0), 1.25);
  EXPECT_TRUE(back.column(0).is_missing(1));
  EXPECT_EQ(back.column(1).category_label(1), "y");
  EXPECT_EQ(back.labels(), (std::vector<int>{1, 0}));
}

TEST(Csv, ReadWithoutLabelColumn) {
  std::stringstream in("x,y\n1,2\n3,4\n");
  Dataset ds = read_csv(in);
  EXPECT_FALSE(ds.has_labels());
  EXPECT_EQ(ds.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(ds.column(1).numeric(1), 4.0);
}

TEST(Csv, RaggedRowThrows) {
  std::stringstream in("x,y\n1\n");
  EXPECT_THROW(read_csv(in), InvalidArgument);
}

TEST(Csv, EmptyInputThrows) {
  std::stringstream in("");
  EXPECT_THROW(read_csv(in), InvalidArgument);
}

}  // namespace
}  // namespace iotml::data
