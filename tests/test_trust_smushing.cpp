// Tests for sensor trust scoring and the smushing search strategy.

#include <gtest/gtest.h>

#include <cmath>

#include "combinatorics/counting.hpp"
#include "core/faceted_learner.hpp"
#include "data/metrics.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/sensors.hpp"
#include "pipeline/trust.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml {
namespace {

// ---- Sensor trust -----------------------------------------------------------------

/// Integrated record from 4 sensors on one signal; sensor 2 is biased and
/// sensor 3 is extra noisy.
data::Dataset corrupted_group(Rng& rng, double bias, double extra_noise) {
  using namespace pipeline;
  const Signal truth = sine_signal(10.0, 3.0, 30.0);
  std::vector<SensorStream> streams;
  for (int i = 0; i < 4; ++i) {
    SensorSpec spec;
    spec.name = "s" + std::to_string(i);
    spec.period_s = 0.5;
    spec.noise_std = 0.2 + (i == 3 ? extra_noise : 0.0);
    spec.bias = i == 2 ? bias : 0.0;
    streams.push_back(simulate_sensor(spec, truth, 60.0, rng));
  }
  return integrate_streams(streams, {.merge_tolerance_s = 0.01}).records;
}

TEST(SensorTrust, DetectsBiasedSensor) {
  Rng rng(1);
  data::Dataset records = corrupted_group(rng, 2.0, 0.0);
  auto scores = pipeline::score_sensor_group(records, {1, 2, 3, 4});
  ASSERT_EQ(scores.size(), 4u);
  EXPECT_NEAR(scores[2].bias_estimate, 2.0, 0.3);     // the liar
  EXPECT_NEAR(scores[0].bias_estimate, 0.0, 0.3);     // honest sensors
  EXPECT_LT(scores[2].trust, scores[0].trust - 0.2);  // punished
}

TEST(SensorTrust, DetectsNoisySensor) {
  Rng rng(2);
  data::Dataset records = corrupted_group(rng, 0.0, 1.5);
  auto scores = pipeline::score_sensor_group(records, {1, 2, 3, 4});
  EXPECT_GT(scores[3].noise_estimate, 3.0 * scores[0].noise_estimate);
  EXPECT_LT(scores[3].trust, scores[0].trust);
}

TEST(SensorTrust, AllHonestSensorsTrustedEqually) {
  Rng rng(3);
  data::Dataset records = corrupted_group(rng, 0.0, 0.0);
  auto scores = pipeline::score_sensor_group(records, {1, 2, 3, 4});
  for (const auto& s : scores) {
    EXPECT_GT(s.trust, 0.6);
    EXPECT_NEAR(s.bias_estimate, 0.0, 0.2);
  }
}

TEST(SensorTrust, ConsensusBeatsNaiveMeanUnderBias) {
  Rng rng(4);
  data::Dataset records = corrupted_group(rng, 3.0, 0.0);
  auto scores = pipeline::score_sensor_group(records, {1, 2, 3, 4});
  auto consensus = pipeline::trusted_consensus(records, {1, 2, 3, 4}, scores);

  const pipeline::Signal truth = pipeline::sine_signal(10.0, 3.0, 30.0);
  std::vector<double> truth_vals, fused_vals, naive_vals;
  for (std::size_t r = 0; r < records.rows(); ++r) {
    if (std::isnan(consensus[r])) continue;
    const double t = records.column(0).numeric(r);
    truth_vals.push_back(truth(t));
    fused_vals.push_back(consensus[r]);
    double mean = 0.0;
    int count = 0;
    for (std::size_t c = 1; c <= 4; ++c) {
      if (!records.column(c).is_missing(r)) {
        mean += records.column(c).numeric(r);
        ++count;
      }
    }
    naive_vals.push_back(mean / count);
  }
  EXPECT_LT(data::rmse(truth_vals, fused_vals),
            0.5 * data::rmse(truth_vals, naive_vals));
}

TEST(SensorTrust, Validation) {
  Rng rng(5);
  data::Dataset records = corrupted_group(rng, 0.0, 0.0);
  EXPECT_THROW(pipeline::score_sensor_group(records, {1}), InvalidArgument);
  EXPECT_THROW(pipeline::score_sensor_group(records, {1, 99}), InvalidArgument);
  auto scores = pipeline::score_sensor_group(records, {1, 2});
  EXPECT_THROW(pipeline::trusted_consensus(records, {1, 2, 3}, scores),
               InvalidArgument);
}

// ---- Smushing search ----------------------------------------------------------------

TEST(SmushingSearch, MergesCorrelatedFeaturesFirst) {
  // Features 0-1 duplicate each other (view 1) and 2-3 duplicate each other
  // (view 2): the first smush must join within a view, not across.
  Rng rng(6);
  const std::size_t n = 160;
  data::Samples s;
  s.x = la::Matrix(n, 4);
  s.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    s.y[i] = label;
    const double u = rng.normal(label == 1 ? 1.0 : -1.0, 1.0);
    const double v = rng.normal(label == 1 ? 1.0 : -1.0, 1.0);
    s.x(i, 0) = u;
    s.x(i, 1) = u + rng.normal(0.0, 0.05);
    s.x(i, 2) = v;
    s.x(i, 3) = v + rng.normal(0.0, 0.05);
  }
  core::SearchOptions options;
  options.cv_folds = 3;
  options.patience = 10;  // walk the whole chain
  core::PartitionEvaluator evaluator(s, options);
  core::SearchResult result =
      core::smushing_search(evaluator, core::make_cone(4, {}));

  // Trajectory: discrete -> first merge. The first merge must be {0,1} or
  // {2,3}.
  ASSERT_GE(result.trajectory.size(), 2u);
  const auto& second = result.trajectory[1].partition;
  EXPECT_EQ(second.num_blocks(), 3u);
  EXPECT_TRUE(second.together(0, 1) || second.together(2, 3));
  EXPECT_FALSE(second.together(0, 2));
  EXPECT_FALSE(second.together(1, 3));
}

TEST(SmushingSearch, LinearEvaluationCount) {
  Rng rng(7);
  data::Samples s = data::make_blobs(80, 7, 3.0, 1.0, rng);
  core::SearchOptions options;
  options.cv_folds = 3;
  options.patience = 100;
  core::PartitionEvaluator evaluator(s, options);
  core::SearchResult result =
      core::smushing_search(evaluator, core::make_cone(7, {}));
  EXPECT_EQ(result.partitions_evaluated, 7u);  // one per lattice level
  EXPECT_EQ(result.trajectory.front().partition.num_blocks(), 7u);  // discrete
  EXPECT_EQ(result.trajectory.back().partition.num_blocks(), 1u);   // smushed to top
}

TEST(SmushingSearch, RespectsConeKBlock) {
  Rng rng(8);
  data::Samples s = data::make_blobs(60, 5, 3.0, 1.0, rng);
  core::PartitionEvaluator evaluator(s, core::SearchOptions{.cv_folds = 3});
  core::SearchResult result =
      core::smushing_search(evaluator, core::make_cone(5, {1, 3}));
  // K = {1, 3} stays one block in every trajectory element.
  for (const auto& step : result.trajectory) {
    EXPECT_TRUE(step.partition.together(1, 3));
  }
}

TEST(SmushingSearch, FacetedLearnerIntegration) {
  Rng rng(9);
  data::FacetedData fd = data::make_faceted_gaussian(
      300, {{2, 3.0, 1.0, true}, {2, 0.0, 4.0, false}}, rng);
  Rng split_rng(1);
  auto split = data::train_test_split(fd.samples.size(), 0.3, split_rng);

  core::FacetedLearnerConfig config;
  config.strategy = core::SearchStrategy::kSmushing;
  core::FacetedLearner learner(config);
  learner.fit(data::select_rows(fd.samples, split.train));
  EXPECT_GE(learner.accuracy(data::select_rows(fd.samples, split.test)), 0.85);
  EXPECT_EQ(core::strategy_name(core::SearchStrategy::kSmushing), "smushing");
}

TEST(SmushingSearch, ComparableToExhaustiveOnSmallProblems) {
  Rng rng(10);
  data::FacetedData fd = data::make_faceted_gaussian(
      120, {{2, 3.0, 1.0, true}, {3, 0.0, 3.0, false}}, rng);

  core::PartitionEvaluator ev1(fd.samples, core::SearchOptions{.cv_folds = 3});
  auto exhaustive = core::exhaustive_cone_search(ev1, core::make_cone(5, {}));
  core::PartitionEvaluator ev2(fd.samples, core::SearchOptions{.cv_folds = 3});
  auto smushed = core::smushing_search(ev2, core::make_cone(5, {}));

  EXPECT_EQ(exhaustive.partitions_evaluated, comb::bell_number(5));  // 52
  EXPECT_LE(smushed.partitions_evaluated, 5u);
  EXPECT_GE(smushed.best_score, exhaustive.best_score - 0.1);
}

}  // namespace
}  // namespace iotml
