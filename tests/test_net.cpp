#include <gtest/gtest.h>

#include "net/faults.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::net {
namespace {

// ---- Link --------------------------------------------------------------------

TEST(Link, ReliableDeliveryTiming) {
  Link link("l", {.latency_s = 0.5, .jitter_s = 0.0, .bandwidth_bytes_per_s = 1000.0});
  Rng rng(1);
  Delivery d = link.transmit(0.0, 500, rng);  // 0.5 s serialization + 0.5 s latency
  EXPECT_TRUE(d.delivered);
  EXPECT_DOUBLE_EQ(d.arrival_s, 1.0);
  EXPECT_FALSE(d.duplicated);
  EXPECT_EQ(link.stats().messages, 1u);
  EXPECT_EQ(link.stats().bytes, 500u);
  EXPECT_EQ(link.stats().drops, 0u);
}

TEST(Link, SerialWireQueuesBehindEarlierTransmissions) {
  Link link("l", {.latency_s = 0.0, .bandwidth_bytes_per_s = 1000.0});
  Rng rng(1);
  Delivery first = link.transmit(0.0, 1000, rng);  // wire busy [0, 1]
  EXPECT_DOUBLE_EQ(first.arrival_s, 1.0);
  Delivery second = link.transmit(0.5, 1000, rng);  // must wait for the wire
  EXPECT_DOUBLE_EQ(second.arrival_s, 2.0);
  EXPECT_DOUBLE_EQ(link.busy_until_s(), 2.0);
}

TEST(Link, DownLinkDropsEverything) {
  Link link("l", {});
  link.set_up(false);
  Rng rng(1);
  Delivery d = link.transmit(0.0, 10, rng);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(link.stats().drops, 1u);
  link.set_up(true);
  EXPECT_TRUE(link.transmit(0.0, 10, rng).delivered);
}

TEST(Link, DropRateMatchesParameterWithoutRetries) {
  Link link("l", {.drop_prob = 0.3, .max_retries = 0});
  Rng rng(2);
  int delivered = 0;
  const int sends = 2000;
  for (int i = 0; i < sends; ++i) {
    if (link.transmit(0.0, 10, rng).delivered) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / sends, 0.7, 0.05);
  EXPECT_EQ(link.stats().messages + link.stats().drops,
            static_cast<std::uint64_t>(sends));
  EXPECT_EQ(link.stats().retransmits, 0u);
}

TEST(Link, RetransmitsRecoverMostDrops) {
  Link link("l", {.drop_prob = 0.5, .max_retries = 8});
  Rng rng(3);
  int delivered = 0;
  for (int i = 0; i < 500; ++i) {
    if (link.transmit(0.0, 10, rng).delivered) ++delivered;
  }
  EXPECT_GE(delivered, 495);  // survival = 1 - 0.5^9
  EXPECT_GT(link.stats().retransmits, 0u);
}

TEST(Link, RetransmitDelaysArrivalByBackoff) {
  // drop_prob 1 burns every attempt; with p=0 after we can't force exactly one
  // failure, so use a deterministic check instead: max_retries=0 + drop_prob=1
  // never delivers, and retransmit accounting shows in the delivery struct.
  Link always_drops("l", {.drop_prob = 1.0, .max_retries = 3});
  Rng rng(4);
  Delivery d = always_drops.transmit(0.0, 10, rng);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.retransmits, 3u);
  EXPECT_EQ(always_drops.stats().retransmits, 3u);
  EXPECT_EQ(always_drops.stats().drops, 1u);
}

TEST(Link, DuplicateIsALateStraggler) {
  Link link("l", {.latency_s = 0.1, .duplicate_prob = 1.0});
  Rng rng(5);
  Delivery d = link.transmit(0.0, 10, rng);
  EXPECT_TRUE(d.delivered);
  EXPECT_TRUE(d.duplicated);
  EXPECT_NEAR(d.duplicate_arrival_s, d.arrival_s + 0.1, 1e-12);
  EXPECT_EQ(link.stats().duplicates, 1u);
}

TEST(Link, JitterStaysWithinBound) {
  Link link("l", {.latency_s = 1.0, .jitter_s = 0.5, .bandwidth_bytes_per_s = 1e9});
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    Delivery d = link.transmit(0.0, 1, rng);
    EXPECT_GE(d.arrival_s, 1.0);
    EXPECT_LT(d.arrival_s, 1.5 + 1e-6);
  }
}

TEST(Link, Validation) {
  EXPECT_THROW(Link("l", {.bandwidth_bytes_per_s = 0.0}), InvalidArgument);
  EXPECT_THROW(Link("l", {.latency_s = -1.0}), InvalidArgument);
  EXPECT_THROW(Link("l", {.drop_prob = 1.5}), InvalidArgument);
  EXPECT_THROW(Link("l", {.duplicate_prob = -0.1}), InvalidArgument);
  EXPECT_THROW(Link("", {}), InvalidArgument);
}

// ---- Wire size ---------------------------------------------------------------

TEST(WireSize, CountsCellsBitmapAndNames) {
  data::Dataset ds;
  auto& a = ds.add_numeric_column("a");
  auto& c = ds.add_categorical_column("cat");
  a.push_numeric(1.0);
  a.push_missing();
  a.push_numeric(2.0);
  c.push_category("x");
  c.push_category("y");
  c.push_missing();
  // 8 (counts) + "a": 1+2 name/tag, 1 bitmap, 2*8 present numeric = 20
  //            + "cat": 3+2, 1 bitmap, 2*2 present categorical = 10
  EXPECT_EQ(wire_size_bytes(ds), 8u + 20u + 10u);

  ds.set_labels({0, 1, 1});
  EXPECT_EQ(wire_size_bytes(ds), 8u + 20u + 10u + 3u);
}

TEST(WireSize, MissingCellsCostOnlyBitmapBits) {
  data::Dataset full;
  auto& f = full.add_numeric_column("v");
  for (int i = 0; i < 16; ++i) f.push_numeric(1.0);
  data::Dataset holes;
  auto& h = holes.add_numeric_column("v");
  for (int i = 0; i < 16; ++i) {
    if (i % 2 == 0) {
      h.push_numeric(1.0);
    } else {
      h.push_missing();
    }
  }
  EXPECT_EQ(wire_size_bytes(full) - wire_size_bytes(holes), 8u * 8u);
}

TEST(WireSize, MessageAddsHeaderAndOrigins) {
  Message m;
  m.origin_s = {1.0, 2.0, 3.0};
  EXPECT_EQ(wire_size_bytes(m),
            kMessageHeaderBytes + wire_size_bytes(m.payload) + 24u);
}

// ---- Topology ----------------------------------------------------------------

TEST(Topology, FleetShape) {
  Topology topo = Topology::fleet(7, 3, {}, {});
  EXPECT_EQ(topo.num_devices(), 7u);
  EXPECT_EQ(topo.num_edges(), 3u);
  EXPECT_EQ(topo.num_nodes(), 11u);
  EXPECT_EQ(topo.num_links(), 10u);  // 7 device uplinks + 3 edge uplinks
  EXPECT_EQ(topo.core(), 10u);
  EXPECT_EQ(topo.node(topo.core()).tier, pipeline::Tier::kCore);
  EXPECT_EQ(topo.node(topo.device(0)).name, "dev0");
  EXPECT_EQ(topo.node(topo.edge(2)).name, "edge2");
}

TEST(Topology, DevicesBalanceAcrossEdgesRoundRobin) {
  Topology topo = Topology::fleet(6, 2, {}, {});
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(topo.next_hop(topo.device(i)), topo.edge(i % 2));
  }
  EXPECT_EQ(topo.next_hop(topo.edge(0)), topo.core());
  EXPECT_EQ(topo.uplink(topo.device(3)).name(), "dev3->edge1");
  EXPECT_EQ(topo.uplink(topo.edge(1)).name(), "edge1->core");
}

TEST(Topology, CoreHasNoUplink) {
  Topology topo = Topology::fleet(2, 1, {}, {});
  EXPECT_THROW(topo.uplink(topo.core()), InvalidArgument);
  EXPECT_THROW(topo.next_hop(topo.core()), InvalidArgument);
}

TEST(Topology, Validation) {
  EXPECT_THROW(Topology::fleet(0, 1, {}, {}), InvalidArgument);
  EXPECT_THROW(Topology::fleet(2, 0, {}, {}), InvalidArgument);
  EXPECT_THROW(Topology::fleet(2, 3, {}, {}), InvalidArgument);
  Topology topo = Topology::fleet(2, 1, {}, {});
  EXPECT_THROW(topo.device(2), InvalidArgument);
  EXPECT_THROW(topo.edge(1), InvalidArgument);
  EXPECT_THROW(topo.node(99), InvalidArgument);
  EXPECT_THROW(topo.link(99), InvalidArgument);
}

// ---- Fault plans -------------------------------------------------------------

TEST(Faults, PlanIsSortedAndPaired) {
  Topology topo = Topology::fleet(20, 4, {}, {});
  Rng rng(7);
  FaultParams params{.link_outages = 1.5, .link_outage_mean_s = 3.0,
                     .device_churns = 1.0, .device_offtime_mean_s = 5.0};
  std::vector<Fault> plan = make_fault_plan(topo, params, 60.0, rng);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.size() % 2, 0u);  // every down paired with an up

  std::size_t downs = 0;
  std::size_t ups = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i > 0) EXPECT_GE(plan[i].time_s, plan[i - 1].time_s);
    EXPECT_GE(plan[i].time_s, 0.0);
    const bool is_down = plan[i].kind == FaultKind::kLinkDown ||
                         plan[i].kind == FaultKind::kDeviceDown;
    (is_down ? downs : ups) += 1;
    if (is_down) EXPECT_LT(plan[i].time_s, 60.0);  // downs start inside the window
  }
  EXPECT_EQ(downs, ups);
}

TEST(Faults, PlanIsReproduciblePerSeed) {
  Topology topo = Topology::fleet(10, 2, {}, {});
  FaultParams params{.link_outages = 2.0, .device_churns = 1.0};
  Rng a(42);
  Rng b(42);
  Rng c(43);
  std::vector<Fault> plan_a = make_fault_plan(topo, params, 30.0, a);
  std::vector<Fault> plan_b = make_fault_plan(topo, params, 30.0, b);
  std::vector<Fault> plan_c = make_fault_plan(topo, params, 30.0, c);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan_a[i].time_s, plan_b[i].time_s);
    EXPECT_EQ(plan_a[i].kind, plan_b[i].kind);
    EXPECT_EQ(plan_a[i].target, plan_b[i].target);
  }
  bool differs = plan_a.size() != plan_c.size();
  for (std::size_t i = 0; !differs && i < plan_a.size(); ++i) {
    differs = plan_a[i].time_s != plan_c[i].time_s;
  }
  EXPECT_TRUE(differs);
}

TEST(Faults, ZeroRatesInjectNothing) {
  Topology topo = Topology::fleet(5, 1, {}, {});
  Rng rng(8);
  EXPECT_TRUE(make_fault_plan(topo, {}, 10.0, rng).empty());
}

TEST(Faults, Validation) {
  Topology topo = Topology::fleet(2, 1, {}, {});
  Rng rng(9);
  EXPECT_THROW(make_fault_plan(topo, {}, 0.0, rng), InvalidArgument);
  EXPECT_THROW(make_fault_plan(topo, {.link_outages = -1.0}, 10.0, rng), InvalidArgument);
}

TEST(Faults, KindNames) {
  EXPECT_EQ(fault_kind_name(FaultKind::kLinkDown), "link-down");
  EXPECT_EQ(fault_kind_name(FaultKind::kDeviceUp), "device-up");
}

}  // namespace
}  // namespace iotml::net
