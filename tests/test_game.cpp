#include <gtest/gtest.h>

#include <cmath>

#include "game/bimatrix.hpp"
#include "game/matrix_game.hpp"
#include "game/pareto.hpp"
#include "game/sequential.hpp"
#include "game/stackelberg.hpp"
#include "util/error.hpp"

namespace iotml::game {
namespace {

// ---- Zero-sum matrix games ----------------------------------------------------

TEST(ZeroSum, PureSaddlePointDetected) {
  // Entry (1,1)=2 is min of its row {5,2} -> no wait; check a classic:
  la::Matrix payoff{{4, 2, 5}, {3, 1, 6}, {9, 2, 7}};
  // No saddle here? row mins: 2,1,2; maxmin = 2 (rows 0 and 2). col maxes:
  // 9,2,7; minmax = 2 at col 1. Entries (0,1) and (2,1) both equal 2 ->
  // saddle points exist.
  auto saddle = pure_saddle_point(payoff);
  ASSERT_TRUE(saddle.has_value());
  EXPECT_EQ(saddle->second, 1u);
  EXPECT_DOUBLE_EQ(payoff(saddle->first, saddle->second), 2.0);
}

TEST(ZeroSum, NoSaddleInMatchingPennies) {
  la::Matrix pennies{{1, -1}, {-1, 1}};
  EXPECT_FALSE(pure_saddle_point(pennies).has_value());
}

TEST(ZeroSum, MatchingPenniesValueZeroHalfHalf) {
  la::Matrix pennies{{1, -1}, {-1, 1}};
  ZeroSumSolution sol = solve_zero_sum(pennies, 1e-3);
  EXPECT_NEAR(sol.value, 0.0, 1e-2);
  EXPECT_NEAR(sol.row_strategy[0], 0.5, 0.05);
  EXPECT_NEAR(sol.col_strategy[0], 0.5, 0.05);
  EXPECT_LE(sol.gap, 1e-3);
}

TEST(ZeroSum, RockPaperScissorsUniform) {
  la::Matrix rps{{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}};
  ZeroSumSolution sol = solve_zero_sum(rps, 1e-3);
  EXPECT_NEAR(sol.value, 0.0, 1e-2);
  for (double p : sol.row_strategy) EXPECT_NEAR(p, 1.0 / 3.0, 0.05);
}

TEST(ZeroSum, KnownNonTrivialValue) {
  // Game with value 1/3: [[2,-1],[-1,1]] -> p = (2/5, 3/5)? Solve: row mix p:
  // payoff vs col0: 2p - (1-p) = 3p-1; vs col1: -p + (1-p) = 1-2p.
  // Equal: 3p-1 = 1-2p -> p = 2/5; value = 3(0.4)-1 = 0.2.
  la::Matrix g{{2, -1}, {-1, 1}};
  ZeroSumSolution sol = solve_zero_sum(g, 5e-4);
  EXPECT_NEAR(sol.value, 0.2, 5e-3);
  EXPECT_NEAR(sol.row_strategy[0], 0.4, 0.05);
}

TEST(ZeroSum, SaddleSolvedExactly) {
  la::Matrix g{{3, 1}, {0, 1}};  // (0,1) is a saddle: value 1
  ZeroSumSolution sol = solve_zero_sum(g);
  EXPECT_DOUBLE_EQ(sol.value, 1.0);
  EXPECT_DOUBLE_EQ(sol.gap, 0.0);
}

TEST(ZeroSum, BestResponseValuesBoundValue) {
  la::Matrix g{{0, 2, -1}, {-2, 0, 3}, {1, -3, 0}};
  ZeroSumSolution sol = solve_zero_sum(g, 1e-3);
  const double lower = col_best_response_value(g, sol.row_strategy);
  const double upper = row_best_response_value(g, sol.col_strategy);
  EXPECT_LE(lower, sol.value + 1e-9);
  EXPECT_GE(upper, sol.value - 1e-9);
  EXPECT_LE(upper - lower, 1e-3 + 1e-9);
}

TEST(ZeroSum, ExpectedPayoffMatchesManual) {
  la::Matrix g{{1, 0}, {0, 1}};
  EXPECT_DOUBLE_EQ(expected_payoff(g, {0.5, 0.5}, {0.5, 0.5}), 0.5);
  EXPECT_THROW(expected_payoff(g, {1.0}, {0.5, 0.5}), InvalidArgument);
}

// ---- Bimatrix ------------------------------------------------------------------

Bimatrix prisoners_dilemma() {
  // (cooperate, defect) payoffs; defect strictly dominates.
  return {la::Matrix{{-1, -3}, {0, -2}}, la::Matrix{{-1, 0}, {-3, -2}}};
}

Bimatrix battle_of_sexes() {
  return {la::Matrix{{2, 0}, {0, 1}}, la::Matrix{{1, 0}, {0, 2}}};
}

TEST(BimatrixTest, PrisonersDilemmaUniqueNash) {
  auto eq = pure_nash(prisoners_dilemma());
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], (PureProfile{1, 1}));  // defect/defect
}

TEST(BimatrixTest, BattleOfSexesTwoPureNash) {
  auto eq = pure_nash(battle_of_sexes());
  ASSERT_EQ(eq.size(), 2u);
  EXPECT_EQ(eq[0], (PureProfile{0, 0}));
  EXPECT_EQ(eq[1], (PureProfile{1, 1}));
}

TEST(BimatrixTest, MatchingPenniesHasNoPureNash) {
  Bimatrix pennies{la::Matrix{{1, -1}, {-1, 1}}, la::Matrix{{-1, 1}, {1, -1}}};
  EXPECT_TRUE(pure_nash(pennies).empty());
}

TEST(BimatrixTest, BestResponseDynamicsConvergesInDominanceSolvable) {
  auto result = best_response_dynamics(prisoners_dilemma(), {0, 0});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.profile, (PureProfile{1, 1}));
}

TEST(BimatrixTest, MixedNashBattleOfSexes) {
  // Known mixed equilibrium: row plays A with 2/3, col plays A with 1/3.
  auto eq = mixed_nash(battle_of_sexes(), 2);
  bool found_mixed = false;
  for (const auto& e : eq) {
    if (e.row[0] > 0.01 && e.row[0] < 0.99) {
      found_mixed = true;
      EXPECT_NEAR(e.row[0], 2.0 / 3.0, 1e-6);
      EXPECT_NEAR(e.col[0], 1.0 / 3.0, 1e-6);
      EXPECT_NEAR(e.row_payoff, 2.0 / 3.0, 1e-6);
    }
  }
  EXPECT_TRUE(found_mixed);
  // Pure equilibria also found via support size 1.
  EXPECT_GE(eq.size(), 3u);
}

TEST(BimatrixTest, MixedNashMatchingPennies) {
  Bimatrix pennies{la::Matrix{{1, -1}, {-1, 1}}, la::Matrix{{-1, 1}, {1, -1}}};
  auto eq = mixed_nash(pennies, 2);
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_NEAR(eq[0].row[0], 0.5, 1e-9);
  EXPECT_NEAR(eq[0].col[0], 0.5, 1e-9);
}

TEST(BimatrixTest, SocialOptimumVsNash) {
  // The PD's dilemma: Nash (defect,defect) has welfare -4, social optimum
  // (cooperate,cooperate) has -2.
  Bimatrix pd = prisoners_dilemma();
  PureProfile opt = social_optimum(pd);
  EXPECT_EQ(opt, (PureProfile{0, 0}));
  EXPECT_GT(social_welfare(pd, opt), social_welfare(pd, {1, 1}));
}

TEST(BimatrixTest, Validation) {
  Bimatrix bad{la::Matrix(2, 2), la::Matrix(2, 3)};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  EXPECT_THROW(pure_nash(Bimatrix{}), InvalidArgument);
}

// ---- Stackelberg ---------------------------------------------------------------

TEST(Stackelberg, CommitmentCanBeatNash) {
  // Classic commitment-advantage game: row gains by committing to the
  // strategy that would be dominated in simultaneous play.
  Bimatrix g{la::Matrix{{1, 3}, {0, 2}}, la::Matrix{{1, 0}, {0, 1}}};
  // Simultaneous: row's strategy 0 dominates (1>0, 3>2). Col best-responds 0.
  // Nash = (0,0) with payoffs (1,1).
  auto nash = pure_nash(g);
  ASSERT_EQ(nash.size(), 1u);
  EXPECT_EQ(nash[0], (PureProfile{0, 0}));

  // Commitment to row 1 makes the follower pick col 1 -> leader gets 2 > 1.
  StackelbergSolution s = solve_stackelberg(g);
  EXPECT_EQ(s.leader_action, 1u);
  EXPECT_EQ(s.follower_action, 1u);
  EXPECT_DOUBLE_EQ(s.leader_payoff, 2.0);
}

TEST(Stackelberg, OptimisticVsPessimisticTieBreak) {
  // Follower indifferent between cols; optimistic gives leader 5, pessimistic 1.
  Bimatrix g{la::Matrix{{5, 1}}, la::Matrix{{7, 7}}};
  EXPECT_DOUBLE_EQ(solve_stackelberg(g, true).leader_payoff, 5.0);
  EXPECT_DOUBLE_EQ(solve_stackelberg(g, false).leader_payoff, 1.0);
}

TEST(Stackelberg, ColumnLeaderRolesSwap) {
  Bimatrix g{la::Matrix{{2, 0}, {0, 1}}, la::Matrix{{1, 0}, {0, 2}}};
  StackelbergSolution s = solve_stackelberg_column_leader(g);
  // Column player commits to col 1 (its favourite equilibrium), row follows.
  EXPECT_EQ(s.leader_action, 1u);   // column index
  EXPECT_EQ(s.follower_action, 1u); // row index
  EXPECT_DOUBLE_EQ(s.leader_payoff, 2.0);
  EXPECT_DOUBLE_EQ(s.follower_payoff, 1.0);
}

// ---- Extensive form ------------------------------------------------------------

TEST(Extensive, PerfectInfoSequentialGame) {
  // P0 chooses L/R; after L, P1 chooses l/r.
  std::vector<std::unique_ptr<GameNode>> p1_kids;
  p1_kids.push_back(GameNode::terminal(3, 1));
  p1_kids.push_back(GameNode::terminal(0, 2));
  std::vector<std::unique_ptr<GameNode>> root_kids;
  root_kids.push_back(GameNode::decision(1, "p1-after-L", std::move(p1_kids)));
  root_kids.push_back(GameNode::terminal(2, 2));
  ExtensiveGame game(GameNode::decision(0, "p0-root", std::move(root_kids)));

  EXPECT_EQ(game.num_pure_strategies(0), 2u);
  EXPECT_EQ(game.num_pure_strategies(1), 2u);

  // P1 prefers r after L (2 > 1), so P0 should choose R (2 > 0).
  Bimatrix normal = game.to_normal_form();
  auto eq = pure_nash(normal);
  bool found = false;
  for (const auto& e : eq) {
    const auto payoff = std::make_pair(normal.a(e.row, e.col), normal.b(e.row, e.col));
    if (std::abs(payoff.first - 2.0) < 1e-12 && std::abs(payoff.second - 2.0) < 1e-12) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Extensive, InformationSetsMergeNodes) {
  // P0 moves, then P1 moves WITHOUT observing P0 (both P1 nodes share an
  // information set) — simultaneous matching pennies in extensive form.
  auto make_p1 = [](double a, double b, double c, double d) {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameNode::terminal(a, -a));
    kids.push_back(GameNode::terminal(b, -b));
    (void)c;
    (void)d;
    return kids;
  };
  std::vector<std::unique_ptr<GameNode>> root_kids;
  root_kids.push_back(GameNode::decision(1, "p1-blind", make_p1(1, -1, 0, 0)));
  root_kids.push_back(GameNode::decision(1, "p1-blind", make_p1(-1, 1, 0, 0)));
  ExtensiveGame game(GameNode::decision(0, "p0", std::move(root_kids)));

  // One information set for P1 despite two nodes.
  EXPECT_EQ(game.information_sets(1).size(), 1u);
  EXPECT_EQ(game.num_pure_strategies(1), 2u);

  ZeroSumSolution sol = game.solve_zero_sum_game(1e-3);
  EXPECT_NEAR(sol.value, 0.0, 1e-2);
  EXPECT_NEAR(sol.row_strategy[0], 0.5, 0.05);
}

TEST(Extensive, PerfectVsImperfectInformationValueDiffers) {
  // Same payoffs; when P1 observes P0's move it can always counter, driving
  // P0's value to the min; blind, the game is worth 0.
  auto terminal_pair = [](double a, double b) {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameNode::terminal(a, -a));
    kids.push_back(GameNode::terminal(b, -b));
    return kids;
  };

  std::vector<std::unique_ptr<GameNode>> blind_kids;
  blind_kids.push_back(GameNode::decision(1, "same", terminal_pair(1, -1)));
  blind_kids.push_back(GameNode::decision(1, "same", terminal_pair(-1, 1)));
  ExtensiveGame blind(GameNode::decision(0, "p0", std::move(blind_kids)));

  std::vector<std::unique_ptr<GameNode>> seeing_kids;
  seeing_kids.push_back(GameNode::decision(1, "after-L", terminal_pair(1, -1)));
  seeing_kids.push_back(GameNode::decision(1, "after-R", terminal_pair(-1, 1)));
  ExtensiveGame seeing(GameNode::decision(0, "p0", std::move(seeing_kids)));

  EXPECT_NEAR(blind.solve_zero_sum_game(1e-3).value, 0.0, 1e-2);
  EXPECT_NEAR(seeing.solve_zero_sum_game(1e-3).value, -1.0, 1e-2);
}

TEST(Extensive, ChanceNodesAverage) {
  // Coin flip then P0 picks; expected payoff mixes branches.
  auto pick = [](double a, double b) {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameNode::terminal(a, 0));
    kids.push_back(GameNode::terminal(b, 0));
    return GameNode::decision(0, "pick", std::move(kids));
  };
  std::vector<std::unique_ptr<GameNode>> outcomes;
  outcomes.push_back(pick(10, 0));
  outcomes.push_back(pick(0, 4));
  ExtensiveGame game(GameNode::chance({0.5, 0.5}, std::move(outcomes)));

  // One info set, same action at both chance outcomes: action 0 -> E=5,
  // action 1 -> E=2.
  auto payoff_0 = game.expected_payoffs({0}, {});
  auto payoff_1 = game.expected_payoffs({1}, {});
  EXPECT_DOUBLE_EQ(payoff_0[0], 5.0);
  EXPECT_DOUBLE_EQ(payoff_1[0], 2.0);
}

TEST(Extensive, Validation) {
  EXPECT_THROW(GameNode::chance({0.5, 0.6}, {}), InvalidArgument);
  EXPECT_THROW(GameNode::decision(2, "x", {}), InvalidArgument);
  std::vector<std::unique_ptr<GameNode>> one;
  one.push_back(GameNode::terminal(0, 0));
  EXPECT_THROW(GameNode::decision(0, "", std::move(one)), InvalidArgument);

  // Inconsistent action counts in one information set must be rejected.
  auto two_kids = [] {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameNode::terminal(0, 0));
    kids.push_back(GameNode::terminal(0, 0));
    return kids;
  };
  auto three_kids = [] {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameNode::terminal(0, 0));
    kids.push_back(GameNode::terminal(0, 0));
    kids.push_back(GameNode::terminal(0, 0));
    return kids;
  };
  std::vector<std::unique_ptr<GameNode>> root_kids;
  root_kids.push_back(GameNode::decision(1, "shared", two_kids()));
  root_kids.push_back(GameNode::decision(1, "shared", three_kids()));
  EXPECT_THROW(ExtensiveGame(GameNode::decision(0, "p0", std::move(root_kids))),
               InvalidArgument);
}

// ---- Pareto ----------------------------------------------------------------------

TEST(Pareto, DominanceBasics) {
  EXPECT_TRUE(dominates({2, 2}, {1, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2}));  // not strict
  EXPECT_FALSE(dominates({3, 0}, {0, 3}));  // incomparable
  EXPECT_THROW(dominates({1}, {1, 2}), InvalidArgument);
}

TEST(Pareto, FrontExtraction) {
  std::vector<std::vector<double>> points{
      {1, 5}, {3, 3}, {5, 1}, {2, 2}, {0, 0}, {3, 3}};
  auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2, 5}));
}

TEST(Pareto, WeightedSumPicksExtreme) {
  std::vector<std::vector<double>> points{{1, 5}, {3, 3}, {5, 1}};
  EXPECT_EQ(weighted_sum_best(points, {1.0, 0.0}), 2u);
  EXPECT_EQ(weighted_sum_best(points, {0.0, 1.0}), 0u);
  EXPECT_EQ(weighted_sum_best(points, {1.0, 1.0}), 0u);  // ties -> first max
}

TEST(Pareto, ChebyshevReachesNonConvexFront) {
  // Middle point is on the front but never optimal for any weighted sum
  // (below the line between the extremes); Chebyshev can select it.
  std::vector<std::vector<double>> points{{0, 10}, {4, 4}, {10, 0}};
  bool weighted_can_find_middle = false;
  for (double w = 0.0; w <= 1.0; w += 0.01) {
    if (weighted_sum_best(points, {w, 1.0 - w}) == 1u) weighted_can_find_middle = true;
  }
  EXPECT_FALSE(weighted_can_find_middle);
  EXPECT_EQ(chebyshev_best(points, {1.0, 1.0}), 1u);
}

}  // namespace
}  // namespace iotml::game
