#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/placement.hpp"
#include "sim/scheduler.hpp"
#include "util/error.hpp"

namespace iotml::sim {
namespace {

using pipeline::Tier;

// ---- Scheduler ---------------------------------------------------------------

TEST(Scheduler, PopsInTimeOrderFifoOnTies) {
  Scheduler s;
  s.push(2.0, EventKind::kDeviceFlush, 1);
  s.push(1.0, EventKind::kEdgeFlush, 2);
  s.push(1.0, EventKind::kArrival, 3, 7);

  Event e1 = s.pop();
  EXPECT_EQ(e1.kind, EventKind::kEdgeFlush);  // earliest time wins
  Event e2 = s.pop();
  EXPECT_EQ(e2.kind, EventKind::kArrival);  // tie broken by push order
  EXPECT_EQ(e2.message, 7u);
  Event e3 = s.pop();
  EXPECT_EQ(e3.kind, EventKind::kDeviceFlush);

  EXPECT_DOUBLE_EQ(s.now_s(), 2.0);
  EXPECT_EQ(s.processed(), 3u);
  EXPECT_TRUE(s.empty());

  ASSERT_EQ(s.log().size(), 3u);
  EXPECT_EQ(s.log()[0], "t=1.000000 #1 edge-flush target=2");
  EXPECT_EQ(s.log()[1], "t=1.000000 #2 arrival target=3 msg=7");
  EXPECT_EQ(s.log()[2], "t=2.000000 #0 device-flush target=1");
}

TEST(Scheduler, RejectsPastEventsAndEmptyPop) {
  Scheduler s;
  s.push(1.0, EventKind::kDeviceFlush, 0);
  s.pop();
  EXPECT_THROW(s.push(0.5, EventKind::kDeviceFlush, 0), InvalidArgument);
  s.push(1.0, EventKind::kDeviceFlush, 0);  // same instant is allowed
  s.pop();
  EXPECT_THROW(s.pop(), InvalidArgument);
}

TEST(Scheduler, EventKindNames) {
  EXPECT_EQ(event_kind_name(EventKind::kDeviceFlush), "device-flush");
  EXPECT_EQ(event_kind_name(EventKind::kArrival), "arrival");
  EXPECT_EQ(event_kind_name(EventKind::kLinkUp), "link-up");
}

// ---- Tier placement ----------------------------------------------------------

TEST(Placement, SplitByTierPreservesOrderWithinTier) {
  auto noop = [](data::Dataset&, Rng&) { return 0.0; };
  pipeline::Pipeline full;
  full.add("d1", noop, "p", Tier::kDevice);
  full.add("c1", noop, "p", Tier::kCore);
  full.add("d2", noop, "p", Tier::kDevice);
  full.add("e1", noop, "p", Tier::kEdge);

  TierPipelines tiers = split_by_tier(std::move(full));
  EXPECT_EQ(tiers.device.size(), 2u);
  EXPECT_EQ(tiers.edge.size(), 1u);
  EXPECT_EQ(tiers.core.size(), 1u);

  data::Dataset ds;
  ds.add_numeric_column("x").push_numeric(1.0);
  Rng rng(1);
  tiers.device.run(std::move(ds), rng);
  ASSERT_EQ(tiers.device.reports().size(), 2u);
  EXPECT_EQ(tiers.device.reports()[0].stage_name, "d1");
  EXPECT_EQ(tiers.device.reports()[1].stage_name, "d2");
}

// ---- Fleet simulation --------------------------------------------------------

FleetConfig small_config(std::uint64_t seed = 42) {
  FleetConfig config;
  config.devices = 20;
  config.edges = 2;
  config.duration_s = 20.0;
  config.seed = seed;
  config.faults.link_outages = 1.0;
  config.faults.link_outage_mean_s = 2.0;
  config.faults.device_churns = 0.5;
  config.faults.device_offtime_mean_s = 4.0;
  return config;
}

TEST(Fleet, DeterministicPerSeed) {
  // Two complete runs in one process: same seed must give a byte-identical
  // event log and report; a different seed must not.
  FleetSim a(small_config());
  const FleetReport ra = a.run();
  FleetSim b(small_config());
  const FleetReport rb = b.run();
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.to_json(), rb.to_json());

  FleetSim c(small_config(43));
  const FleetReport rc = c.run();
  EXPECT_NE(ra.to_json(), rc.to_json());
}

TEST(Fleet, ObservatoryDoesNotPerturbTheRun) {
  // The observatory must be purely observational: same seed, observatory on
  // vs off, byte-identical event log and report (this config fires no fault
  // trigger, so no flight dumps enter the report either way).
  FleetSim off(small_config());
  const FleetReport r_off = off.run();
  FleetConfig on_config = small_config();
  on_config.observatory.enabled = true;
  FleetSim on(on_config);
  const FleetReport r_on = on.run();
  EXPECT_EQ(off.event_log(), on.event_log());
  EXPECT_EQ(r_off.to_json(), r_on.to_json());
  EXPECT_EQ(off.observatory(), nullptr);
  ASSERT_NE(on.observatory(), nullptr);
}

TEST(Fleet, ObservatoryRecordsJourneysSeriesAndFlight) {
  FleetConfig config = small_config();
  config.observatory.enabled = true;
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  const obs::Observatory* obsy = fleet.observatory();
  ASSERT_NE(obsy, nullptr);

  const auto records = obsy->journeys().snapshot();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(obsy->journeys().dropped(), 0u);
  std::size_t origins = 0;
  std::size_t origin_rows = 0;
  std::size_t accepted_at_core = 0;
  for (const obs::HopRecord& rec : records) {
    if (rec.kind == obs::HopKind::kOrigin) {
      ++origins;
      origin_rows += rec.rows;
      EXPECT_TRUE(rec.parents.empty());
    }
    if (rec.kind == obs::HopKind::kArrive && rec.hop == 1 &&
        std::string(rec.outcome) == "accepted") {
      ++accepted_at_core;
    }
    if (rec.kind == obs::HopKind::kSend) EXPECT_GE(rec.attempts, 0u);
  }
  EXPECT_GT(origins, 0u);
  // Every flushed window gets an origin record; flushed rows can exceed the
  // delivered count (losses) but never the generated count.
  EXPECT_LE(origin_rows, r.rows_generated);
  EXPECT_GE(origin_rows, r.rows_delivered);
  EXPECT_GT(accepted_at_core, 0u);

  EXPECT_GT(obsy->flight().noted(), 0u);
  EXPECT_GT(obsy->series().series_count(), 0u);
  EXPECT_GT(obsy->series().samples_total(), 0u);
}

TEST(Fleet, LatencyTiersMirrorSummaryAndStayBounded) {
  // Per-tier breakdowns are always on (fixed-memory histograms, not the
  // observatory) and "end-to-end" must mirror the flat latency summary.
  FleetSim fleet(small_config());
  const FleetReport r = fleet.run();
  ASSERT_EQ(r.latency_tiers.count("device-edge"), 1u);
  ASSERT_EQ(r.latency_tiers.count("edge-core"), 1u);
  ASSERT_EQ(r.latency_tiers.count("end-to-end"), 1u);
  const LatencyBreakdown& e2e = r.latency_tiers.at("end-to-end");
  EXPECT_EQ(e2e.summary.count, r.latency.count);
  EXPECT_DOUBLE_EQ(e2e.summary.mean_s, r.latency.mean_s);
  EXPECT_DOUBLE_EQ(e2e.summary.p95_s, r.latency.p95_s);
  for (const auto& [tier, breakdown] : r.latency_tiers) {
    EXPECT_EQ(breakdown.counts.size(), breakdown.bounds_s.size() + 1) << tier;
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t c : breakdown.counts) bucket_sum += c;
    EXPECT_EQ(bucket_sum, breakdown.summary.count) << tier;
  }
}

TEST(Fleet, RowConservation) {
  FleetSim fleet(small_config());
  const FleetReport r = fleet.run();
  EXPECT_GT(r.rows_generated, 0u);
  EXPECT_GT(r.rows_delivered, 0u);
  EXPECT_EQ(r.rows_generated,
            r.rows_delivered + r.rows_lost + r.rows_skipped + r.rows_stranded);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.messages_sent, 0u);
}

TEST(Fleet, StageTotalsReconcileWithRawReports) {
  FleetSim fleet(small_config());
  const FleetReport r = fleet.run();

  std::size_t raw_runs = 0;
  std::size_t raw_rows_in = 0;
  double raw_cost = 0.0;
  for (const pipeline::StageReport& report : r.stage_reports) {
    ++raw_runs;
    raw_rows_in += report.rows_in;
    raw_cost += report.cost;
  }
  std::size_t total_runs = 0;
  std::size_t total_rows_in = 0;
  double total_cost = 0.0;
  for (const auto& [name, t] : r.stage_totals()) {
    total_runs += t.runs;
    total_rows_in += t.rows_in;
    total_cost += t.cost;
  }
  EXPECT_EQ(total_runs, raw_runs);
  EXPECT_EQ(total_rows_in, raw_rows_in);
  EXPECT_NEAR(total_cost, raw_cost, 1e-9);

  // Every phase of the paper's chain must appear.
  const auto totals = r.stage_totals();
  EXPECT_EQ(totals.count("acquisition"), 1u);
  EXPECT_EQ(totals.count("integration"), 1u);
  EXPECT_EQ(totals.count("prepare(impute-linear)"), 1u);
  EXPECT_EQ(totals.count("prepare(normalize-zscore)"), 1u);
  EXPECT_EQ(totals.count("clean(hampel)"), 1u);
  EXPECT_EQ(totals.count("analytics(decision-tree)"), 1u);
}

TEST(Fleet, LatencyAndAccuracyPopulated) {
  FleetSim fleet(small_config());
  const FleetReport r = fleet.run();
  EXPECT_GT(r.latency.count, 0u);
  EXPECT_GT(r.latency.mean_s, 0.0);
  EXPECT_GE(r.latency.max_s, r.latency.p95_s);
  EXPECT_GE(r.latency.p95_s, r.latency.p50_s);
  EXPECT_GT(r.train_rows, 0u);
  EXPECT_GT(r.test_rows, 0u);
  EXPECT_GT(r.accuracy, 0.5);  // far above chance on the comfort concept
}

TEST(Fleet, DropRateStarvesDelivery) {
  FleetConfig reliable = small_config(7);
  reliable.faults = {};
  reliable.device_edge_link.drop_prob = 0.0;
  reliable.device_edge_link.max_retries = 0;
  FleetConfig lossy = reliable;
  lossy.device_edge_link.drop_prob = 0.3;

  FleetSim a(reliable);
  const FleetReport ra = a.run();
  FleetSim b(lossy);
  const FleetReport rb = b.run();
  EXPECT_EQ(ra.rows_lost, 0u);
  EXPECT_GT(rb.rows_lost, 0u);
  EXPECT_LT(rb.rows_delivered, ra.rows_delivered);
}

TEST(Fleet, ChurnSkipsRows) {
  FleetConfig config = small_config(9);
  config.faults = {};
  config.faults.device_churns = 3.0;  // heavy churn
  config.faults.device_offtime_mean_s = 6.0;
  FleetSim fleet(config);
  const FleetReport r = fleet.run();
  EXPECT_GT(r.rows_skipped, 0u);
}

TEST(Fleet, CustomPipelineIsPlacedByTier) {
  FleetConfig config;
  config.devices = 5;
  config.edges = 1;
  config.duration_s = 10.0;
  config.faults = {};
  pipeline::Pipeline custom;
  custom.add("edge-tag", [](data::Dataset&, Rng&) { return 1.0; },
             "edge-operator", Tier::kEdge);
  FleetSim fleet(config, std::move(custom));
  const FleetReport r = fleet.run();
  const auto totals = r.stage_totals();
  EXPECT_EQ(totals.count("edge-tag"), 1u);
  EXPECT_EQ(totals.at("edge-tag").tier, Tier::kEdge);
  // Synthesized phases still frame the custom stage.
  EXPECT_EQ(totals.count("acquisition"), 1u);
  EXPECT_EQ(totals.count("integration"), 1u);
}

TEST(Fleet, RunIsOneShot) {
  FleetConfig config;
  config.devices = 2;
  config.edges = 1;
  config.duration_s = 5.0;
  config.faults = {};
  FleetSim fleet(config);
  fleet.run();
  EXPECT_THROW(fleet.run(), InvalidArgument);
}

TEST(Fleet, Validation) {
  FleetConfig bad = small_config();
  bad.duration_s = 0.0;
  EXPECT_THROW(FleetSim{bad}, InvalidArgument);

  FleetConfig more_edges = small_config();
  more_edges.edges = more_edges.devices + 1;
  EXPECT_THROW(FleetSim{more_edges}, InvalidArgument);

  FleetConfig bad_flush = small_config();
  bad_flush.device_flush_s = 0.0;
  EXPECT_THROW(FleetSim{bad_flush}, InvalidArgument);
}

}  // namespace
}  // namespace iotml::sim
