#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "combinatorics/counting.hpp"
#include "combinatorics/ldd.hpp"

namespace iotml::comb {
namespace {

TEST(LddEncoding, MatchesPaperTableI) {
  // Table I column c(S) for n = 3.
  EXPECT_EQ(ldd_encoding(0b000, 3), (std::vector<unsigned>{1, 1, 1, 1}));  // emptyset
  EXPECT_EQ(ldd_encoding(0b001, 3), (std::vector<unsigned>{0, 2, 1, 1}));  // {1}
  EXPECT_EQ(ldd_encoding(0b011, 3), (std::vector<unsigned>{0, 0, 3, 1}));  // {1,2}
  EXPECT_EQ(ldd_encoding(0b111, 3), (std::vector<unsigned>{0, 0, 0, 4}));  // {1,2,3}
  EXPECT_EQ(ldd_encoding(0b010, 3), (std::vector<unsigned>{1, 0, 2, 1}));  // {2}
  EXPECT_EQ(ldd_encoding(0b110, 3), (std::vector<unsigned>{1, 0, 0, 3}));  // {2,3}
  EXPECT_EQ(ldd_encoding(0b100, 3), (std::vector<unsigned>{1, 1, 0, 2}));  // {3}
  EXPECT_EQ(ldd_encoding(0b101, 3), (std::vector<unsigned>{0, 2, 0, 2}));  // {1,3}
}

TEST(LddEncoding, WeightsAlwaysSumToNPlusOne) {
  for (unsigned n = 1; n <= 10; ++n) {
    for (Subset s = 0; s < (Subset{1} << n); ++s) {
      unsigned total = 0;
      for (unsigned w : ldd_encoding(s, n)) total += w;
      EXPECT_EQ(total, n + 1);
    }
  }
}

TEST(LddType, MatchesPaperTableI) {
  // Table I arrow column: type = reversed nonzero digits of c(S).
  EXPECT_EQ(ldd_type(0b000, 3), (std::vector<std::size_t>{1, 1, 1, 1}));
  EXPECT_EQ(ldd_type(0b001, 3), (std::vector<std::size_t>{1, 1, 2}));
  EXPECT_EQ(ldd_type(0b011, 3), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(ldd_type(0b111, 3), (std::vector<std::size_t>{4}));
  EXPECT_EQ(ldd_type(0b010, 3), (std::vector<std::size_t>{1, 2, 1}));
  EXPECT_EQ(ldd_type(0b110, 3), (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(ldd_type(0b100, 3), (std::vector<std::size_t>{2, 1, 1}));
  EXPECT_EQ(ldd_type(0b101, 3), (std::vector<std::size_t>{2, 2}));
}

TEST(LddType, IsBijectionOntoCompositions) {
  // S -> type(S) must be injective over B_n and always a composition of n+1.
  for (unsigned n = 1; n <= 10; ++n) {
    std::set<std::vector<std::size_t>> seen;
    for (Subset s = 0; s < (Subset{1} << n); ++s) {
      auto type = ldd_type(s, n);
      std::size_t sum = 0;
      for (std::size_t part : type) {
        EXPECT_GE(part, 1u);
        sum += part;
      }
      EXPECT_EQ(sum, n + 1);
      EXPECT_TRUE(seen.insert(type).second) << "type collision at n=" << n;
    }
    EXPECT_EQ(seen.size(), std::size_t{1} << n);  // all 2^n compositions of n+1
  }
}

TEST(LddType, NumberOfBlocksTracksSetSize) {
  // Adding an element merges two weight slots: |type(S)| = n + 1 - |S|.
  for (unsigned n = 1; n <= 8; ++n) {
    for (Subset s = 0; s < (Subset{1} << n); ++s) {
      unsigned bits = 0;
      for (unsigned e = 0; e < n; ++e) bits += (s >> e) & 1u;
      EXPECT_EQ(ldd_type(s, n).size(), n + 1 - bits);
    }
  }
}

TEST(DigitsToString, CompactAndWide) {
  EXPECT_EQ(digits_to_string(std::vector<unsigned>{1, 0, 2, 1}), "1021");
  EXPECT_EQ(digits_to_string(std::vector<std::size_t>{1, 2, 1}), "121");
  EXPECT_EQ(digits_to_string(std::vector<std::size_t>{11, 2}), "11.2");
}

TEST(LddDecomposition, TableIGroupsExactly) {
  // Reproduce the full Table I structure for n = 3 (Pi_4).
  LddDecomposition d(3);
  ASSERT_EQ(d.groups().size(), 3u);

  const auto& g1 = d.groups()[0];
  ASSERT_EQ(g1.rows.size(), 4u);
  EXPECT_EQ(digits_to_string(g1.rows[0].encoding), "1111");
  EXPECT_EQ(digits_to_string(g1.rows[1].encoding), "0211");
  EXPECT_EQ(digits_to_string(g1.rows[2].encoding), "0031");
  EXPECT_EQ(digits_to_string(g1.rows[3].encoding), "0004");
  EXPECT_EQ(g1.rows[0].partitions.size(), 1u);
  EXPECT_EQ(g1.rows[0].partitions[0].to_string(), "1/2/3/4");
  EXPECT_EQ(g1.rows[1].partitions[0].to_string(), "1/2/34");
  EXPECT_EQ(g1.rows[2].partitions[0].to_string(), "1/234");
  EXPECT_EQ(g1.rows[3].partitions[0].to_string(), "1234");

  const auto& g2 = d.groups()[1];
  ASSERT_EQ(g2.rows.size(), 2u);
  EXPECT_EQ(digits_to_string(g2.rows[0].encoding), "1021");
  std::set<std::string> row0;
  for (const auto& p : g2.rows[0].partitions) row0.insert(p.to_string());
  EXPECT_EQ(row0, (std::set<std::string>{"1/23/4", "1/24/3"}));
  std::set<std::string> row1;
  for (const auto& p : g2.rows[1].partitions) row1.insert(p.to_string());
  EXPECT_EQ(row1, (std::set<std::string>{"123/4", "124/3", "134/2"}));

  const auto& g3 = d.groups()[2];
  ASSERT_EQ(g3.rows.size(), 2u);
  std::set<std::string> row20;
  for (const auto& p : g3.rows[0].partitions) row20.insert(p.to_string());
  EXPECT_EQ(row20, (std::set<std::string>{"12/3/4", "13/2/4", "14/2/3"}));
  std::set<std::string> row21;
  for (const auto& p : g3.rows[1].partitions) row21.insert(p.to_string());
  EXPECT_EQ(row21, (std::set<std::string>{"12/34", "13/24", "14/23"}));
}

class LddParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(LddParam, RowsTileTheWholeLattice) {
  const unsigned n = GetParam();
  LddDecomposition d(n);
  std::unordered_set<SetPartition, SetPartitionHash> seen;
  for (const auto& g : d.groups()) {
    for (const auto& row : g.rows) {
      for (const auto& p : row.partitions) {
        EXPECT_EQ(p.ground_size(), n + 1);
        EXPECT_TRUE(seen.insert(p).second) << "duplicate partition";
      }
    }
  }
  EXPECT_EQ(seen.size(), bell_number(n + 1));
  EXPECT_EQ(d.covered_partitions(), bell_number(n + 1));
}

TEST_P(LddParam, PartitionChainsAreSaturatedAndDisjoint) {
  const unsigned n = GetParam();
  LddDecomposition d(n);
  std::unordered_set<SetPartition, SetPartitionHash> seen;
  std::size_t total = 0;
  for (const auto& chain : d.partition_chains()) {
    ASSERT_FALSE(chain.partitions.empty());
    for (std::size_t i = 1; i < chain.partitions.size(); ++i) {
      EXPECT_TRUE(chain.partitions[i - 1].covered_by(chain.partitions[i]))
          << chain.partitions[i - 1].to_string() << " !< " << chain.partitions[i].to_string();
    }
    for (const auto& p : chain.partitions) {
      EXPECT_TRUE(seen.insert(p).second);
      ++total;
    }
  }
  EXPECT_EQ(total, bell_number(n + 1));
}

TEST_P(LddParam, LddSymmetricCoverageGuarantee) {
  // [11]: the collection includes all partitions of rank <= floor((n-1)/2)
  // on symmetric chains.
  const unsigned n = GetParam();
  LddDecomposition d(n);
  EXPECT_TRUE(d.symmetric_below_rank((n - 1) / 2)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SmallN, LddParam, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(LddDecomposition, Pi4ChainStatistics) {
  LddDecomposition d(3);
  // From the analysis of Table I: one rank-0..3 chain, plus length-2 chains,
  // with a single unmatched rank-2 leftover; 15 partitions total.
  EXPECT_EQ(d.covered_partitions(), 15u);
  EXPECT_EQ(d.lattice_rank(), 3u);
  EXPECT_GE(d.symmetric_chain_count(), 6u);
}

}  // namespace
}  // namespace iotml::comb
