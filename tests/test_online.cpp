// Tests for the streaming extensions: incremental naive Bayes, DDM drift
// detection, and the self-healing adaptive classifier.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "learners/naive_bayes.hpp"
#include "learners/online.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::learners {
namespace {

std::vector<double> row_of(const data::Samples& s, std::size_t r) {
  std::vector<double> out(s.dim());
  for (std::size_t c = 0; c < s.dim(); ++c) out[c] = s.x(r, c);
  return out;
}

TEST(IncrementalNb, MatchesBatchNaiveBayesAccuracy) {
  Rng rng(1);
  data::Samples train = data::make_blobs(400, 3, 5.0, 1.0, rng);
  data::Samples test = data::make_blobs(200, 3, 5.0, 1.0, rng);

  IncrementalNaiveBayes online(3);
  for (std::size_t r = 0; r < train.size(); ++r) {
    online.observe(row_of(train, r), train.y[r]);
  }
  std::size_t online_hits = 0;
  for (std::size_t r = 0; r < test.size(); ++r) {
    if (online.predict(row_of(test, r)) == test.y[r]) ++online_hits;
  }
  const double online_acc = static_cast<double>(online_hits) / test.size();

  NaiveBayes batch;
  batch.fit(data::samples_to_dataset(train));
  const double batch_acc = batch.accuracy(data::samples_to_dataset(test));

  EXPECT_NEAR(online_acc, batch_acc, 0.03);
  EXPECT_GE(online_acc, 0.95);
}

TEST(IncrementalNb, WelfordStatsAreExact) {
  // Mean/variance from streaming updates must match closed form.
  Rng rng(2);
  IncrementalNaiveBayes nb(1);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(4.0, 2.0);
    values.push_back(v);
    nb.observe({v}, 0);
  }
  // Recover the learned Gaussian through the posterior: peak at the mean.
  double best_x = 0.0, best_lp = -1e18;
  for (double x = 0.0; x < 8.0; x += 0.01) {
    const double lp = nb.log_posterior({x})[0];
    if (lp > best_lp) {
      best_lp = lp;
      best_x = x;
    }
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  EXPECT_NEAR(best_x, mean, 0.02);
}

TEST(IncrementalNb, ResetForgets) {
  IncrementalNaiveBayes nb(1);
  nb.observe({0.0}, 0);
  nb.observe({1.0}, 1);
  EXPECT_EQ(nb.num_classes(), 2u);
  nb.reset();
  EXPECT_EQ(nb.num_classes(), 0u);
  EXPECT_EQ(nb.observations(), 0u);
  EXPECT_THROW(nb.predict({0.0}), InvalidArgument);
}

TEST(IncrementalNb, Validation) {
  EXPECT_THROW(IncrementalNaiveBayes(0), InvalidArgument);
  IncrementalNaiveBayes nb(2);
  EXPECT_THROW(nb.observe({1.0}, 0), InvalidArgument);
  EXPECT_THROW(nb.observe({1.0, 2.0}, -1), InvalidArgument);
}

TEST(Ddm, StableOnConstantErrorRate) {
  Rng rng(3);
  DriftDetector ddm;
  DriftDetector::State worst = DriftDetector::State::kStable;
  for (int i = 0; i < 2000; ++i) {
    const auto state = ddm.observe(rng.bernoulli(0.1));
    if (state == DriftDetector::State::kDrift) worst = state;
  }
  EXPECT_NE(worst, DriftDetector::State::kDrift);
  EXPECT_NEAR(ddm.error_rate(), 0.1, 0.03);
}

TEST(Ddm, DetectsErrorRateJump) {
  Rng rng(4);
  DriftDetector ddm;
  bool drifted = false;
  std::size_t drift_at = 0;
  for (std::size_t i = 0; i < 3000 && !drifted; ++i) {
    const double p = i < 1000 ? 0.05 : 0.5;  // concept breaks at 1000
    if (ddm.observe(rng.bernoulli(p)) == DriftDetector::State::kDrift) {
      drifted = true;
      drift_at = i;
    }
  }
  EXPECT_TRUE(drifted);
  EXPECT_GT(drift_at, 1000u);      // not before the change
  EXPECT_LT(drift_at, 1200u);      // reasonably fast after it
}

TEST(Ddm, WarningPrecedesDrift) {
  Rng rng(5);
  DriftDetector ddm;
  bool warned_before_drift = false, drifted = false;
  bool warned = false;
  for (std::size_t i = 0; i < 3000 && !drifted; ++i) {
    const double p = i < 500 ? 0.05 : 0.35;
    const auto state = ddm.observe(rng.bernoulli(p));
    if (state == DriftDetector::State::kWarning) warned = true;
    if (state == DriftDetector::State::kDrift) {
      drifted = true;
      warned_before_drift = warned;
    }
  }
  EXPECT_TRUE(drifted);
  EXPECT_TRUE(warned_before_drift);
}

TEST(Ddm, Validation) {
  EXPECT_THROW(DriftDetector(3.0, 2.0), InvalidArgument);
  EXPECT_THROW(DriftDetector(2.0, 3.0, 2), InvalidArgument);
}

TEST(Adaptive, RecoversFromConceptFlip) {
  // Concept: sign of feature 0; flips at t = 1500. The adaptive classifier
  // must detect the drift and recover; a frozen model would sit at ~0 %%
  // accuracy after the flip.
  Rng rng(6);
  AdaptiveStreamClassifier adaptive(2);
  IncrementalNaiveBayes frozen(2);

  std::size_t adaptive_hits_after = 0, frozen_hits_after = 0, after = 0;
  for (std::size_t t = 0; t < 3000; ++t) {
    std::vector<double> x{rng.normal(rng.bernoulli(0.5) ? 2.0 : -2.0, 1.0),
                          rng.normal()};
    const bool flipped = t >= 1500;
    const int label = (x[0] > 0.0) != flipped ? 1 : 0;

    const int p = adaptive.process(x, label);
    if (t < 1500) {
      frozen.observe(x, label);  // frozen trains only on the old concept
    } else {
      ++after;
      if (p == label) ++adaptive_hits_after;
      if (frozen.predict(x) == label) ++frozen_hits_after;
    }
  }
  EXPECT_GE(adaptive.drifts_detected(), 1u);
  const double adaptive_after = static_cast<double>(adaptive_hits_after) / after;
  const double frozen_after = static_cast<double>(frozen_hits_after) / after;
  EXPECT_LT(frozen_after, 0.2);    // frozen model is now anti-correlated
  EXPECT_GT(adaptive_after, 0.8);  // adaptive relearns
}

TEST(Adaptive, NoSpuriousDriftOnStationaryStream) {
  Rng rng(7);
  AdaptiveStreamClassifier adaptive(2);
  for (std::size_t t = 0; t < 4000; ++t) {
    std::vector<double> x{rng.normal(rng.bernoulli(0.5) ? 3.0 : -3.0, 1.0),
                          rng.normal()};
    const int label = x[0] > 0.0 ? 1 : 0;
    adaptive.process(x, label);
  }
  EXPECT_EQ(adaptive.drifts_detected(), 0u);
  EXPECT_GE(adaptive.running_accuracy(), 0.95);
}

}  // namespace
}  // namespace iotml::learners
