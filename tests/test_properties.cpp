// Deeper property-based tests on the library's mathematical invariants,
// parameterized across kernels, lattice sizes, and solver inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "combinatorics/counting.hpp"
#include "combinatorics/partition_lattice.hpp"
#include "data/synthetic.hpp"
#include "game/matrix_game.hpp"
#include "kernels/kernel.hpp"
#include "kernels/svm.hpp"
#include "util/rng.hpp"

namespace iotml {
namespace {

// ---- Kernel PSD property across all kernel types ---------------------------------

using KernelFactory = std::function<std::unique_ptr<kernels::Kernel>()>;

struct NamedKernel {
  std::string name;
  KernelFactory make;
};

class KernelPsd : public ::testing::TestWithParam<int> {};

std::vector<NamedKernel> kernel_zoo() {
  std::vector<NamedKernel> zoo;
  zoo.push_back({"linear", [] { return std::make_unique<kernels::LinearKernel>(); }});
  zoo.push_back({"poly2", [] { return std::make_unique<kernels::PolynomialKernel>(2); }});
  zoo.push_back({"poly3", [] { return std::make_unique<kernels::PolynomialKernel>(3, 0.5, 2.0); }});
  zoo.push_back({"rbf", [] { return std::make_unique<kernels::RbfKernel>(0.7); }});
  zoo.push_back({"subset-rbf", [] {
                   return std::make_unique<kernels::SubsetKernel>(
                       std::make_unique<kernels::RbfKernel>(0.5),
                       std::vector<std::size_t>{0, 2});
                 }});
  zoo.push_back({"product", [] {
                   std::vector<std::unique_ptr<kernels::Kernel>> factors;
                   factors.push_back(std::make_unique<kernels::RbfKernel>(0.4));
                   factors.push_back(std::make_unique<kernels::LinearKernel>());
                   // linear * rbf is PSD only if linear gram is PSD (it is).
                   return std::make_unique<kernels::ProductKernel>(std::move(factors));
                 }});
  zoo.push_back({"sum", [] {
                   std::vector<std::unique_ptr<kernels::Kernel>> terms;
                   terms.push_back(std::make_unique<kernels::RbfKernel>(0.4));
                   terms.push_back(std::make_unique<kernels::PolynomialKernel>(2));
                   return std::make_unique<kernels::SumKernel>(
                       std::move(terms), std::vector<double>{0.3, 0.7});
                 }});
  return zoo;
}

TEST_P(KernelPsd, GramIsSymmetricPsdAndCloneConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  data::Samples s = data::make_blobs(24, 3, 2.0, 1.0, rng);
  for (const NamedKernel& nk : kernel_zoo()) {
    auto kernel = nk.make();
    la::Matrix g = kernels::gram(*kernel, s.x);
    EXPECT_TRUE(g.is_symmetric(1e-9)) << nk.name;
    la::EigenResult e = la::eigen_symmetric(g);
    for (double v : e.values) {
      EXPECT_GE(v, -1e-6 * std::max(1.0, std::fabs(e.values[0]))) << nk.name;
    }
    // Clones evaluate identically.
    auto clone = kernel->clone();
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t i = rng.index(s.size()), j = rng.index(s.size());
      EXPECT_DOUBLE_EQ((*kernel)(s.x.row_span(i), s.x.row_span(j)),
                       (*clone)(s.x.row_span(i), s.x.row_span(j)))
          << nk.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPsd, ::testing::Values(1, 2, 3, 4));

// ---- SMO optimality: KKT conditions --------------------------------------------

class SvmKkt : public ::testing::TestWithParam<int> {};

TEST_P(SvmKkt, SolutionsSatisfyKktWithinTolerance) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  data::Samples s = data::make_blobs(60, 2, 3.0, 1.0, rng);
  const double c = 1.0;
  la::Matrix g = kernels::gram(kernels::RbfKernel(0.5), s.x);
  kernels::SvmParams params;
  params.c = c;
  params.tol = 1e-3;
  params.max_passes = 20;
  params.max_iterations = 200000;
  kernels::SvmModel model = kernels::train_svm(g, s.y, params);

  // KKT: alpha=0 -> y f(x) >= 1 - tol; 0<alpha<C -> y f(x) ~ 1; alpha=C ->
  // y f(x) <= 1 + tol. Allow a modest violation fraction (SMO stops at
  // approximate stationarity).
  std::size_t violations = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::vector<double> k_row(s.size());
    for (std::size_t j = 0; j < s.size(); ++j) k_row[j] = g(i, j);
    const double f = model.decision(k_row);
    const double y = s.y[i] == 1 ? 1.0 : -1.0;
    const double margin = y * f;
    const double alpha = model.alphas()[i];
    const double tol = 0.05;
    if (alpha < 1e-9) {
      if (margin < 1.0 - tol) ++violations;
    } else if (alpha > c - 1e-9) {
      if (margin > 1.0 + tol) ++violations;
    } else {
      if (std::fabs(margin - 1.0) > tol) ++violations;
    }
  }
  EXPECT_LE(violations, s.size() / 10);

  // Dual feasibility: 0 <= alpha <= C and sum alpha_i y_i = 0.
  double balance = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(model.alphas()[i], -1e-12);
    EXPECT_LE(model.alphas()[i], c + 1e-12);
    balance += model.alphas()[i] * (s.y[i] == 1 ? 1.0 : -1.0);
  }
  EXPECT_NEAR(balance, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmKkt, ::testing::Values(1, 2, 3, 4, 5));

// ---- Partition lattice structural invariants -------------------------------------

class LatticeInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LatticeInvariants, RankFunctionGradedByCovers) {
  comb::PartitionLattice lattice(GetParam());
  for (std::size_t id = 0; id < lattice.size(); ++id) {
    for (std::size_t up : lattice.covers_above(id)) {
      EXPECT_EQ(lattice.element(up).rank(), lattice.element(id).rank() + 1);
    }
  }
}

TEST_P(LatticeInvariants, MeetJoinIdempotentAndMonotone) {
  comb::PartitionLattice lattice(GetParam());
  const auto& elements = lattice.elements();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto& a = elements[rng.index(elements.size())];
    const auto& b = elements[rng.index(elements.size())];
    const auto& c = elements[rng.index(elements.size())];
    EXPECT_EQ(a.meet(a), a);
    EXPECT_EQ(a.join(a), a);
    // Monotonicity: b <= c implies a^b <= a^c and avb <= avc.
    if (b.refines(c)) {
      EXPECT_TRUE(a.meet(b).refines(a.meet(c)));
      EXPECT_TRUE(a.join(b).refines(a.join(c)));
    }
  }
}

TEST_P(LatticeInvariants, ComplementsExist) {
  // Pi_n is a complemented lattice: every partition has a complement x with
  // meet = bottom and join = top.
  const std::size_t n = GetParam();
  comb::PartitionLattice lattice(n);
  const auto bottom = comb::SetPartition::discrete(n);
  const auto top = comb::SetPartition::indiscrete(n);
  for (const auto& p : lattice.elements()) {
    bool found = false;
    for (const auto& q : lattice.elements()) {
      if (p.meet(q) == bottom && p.join(q) == top) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no complement for " << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, LatticeInvariants, ::testing::Values(3u, 4u, 5u));

// ---- Zero-sum solver: minimax = maximin on random games --------------------------

class ZeroSumRandom : public ::testing::TestWithParam<int> {};

TEST_P(ZeroSumRandom, DualityGapCertified) {
  Rng rng(static_cast<std::uint64_t>(200 + GetParam()));
  const std::size_t m = 2 + rng.index(5);
  const std::size_t n = 2 + rng.index(5);
  la::Matrix payoff(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) payoff(i, j) = rng.uniform(-3.0, 3.0);
  }
  game::ZeroSumSolution sol = game::solve_zero_sum(payoff, 1e-3);
  EXPECT_LE(sol.gap, 1e-3 + 1e-9);
  // Strategies are distributions.
  double row_sum = 0.0, col_sum = 0.0;
  for (double p : sol.row_strategy) {
    EXPECT_GE(p, -1e-12);
    row_sum += p;
  }
  for (double p : sol.col_strategy) {
    EXPECT_GE(p, -1e-12);
    col_sum += p;
  }
  EXPECT_NEAR(row_sum, 1.0, 1e-9);
  EXPECT_NEAR(col_sum, 1.0, 1e-9);
  // Value within the min/max entries.
  double lo = payoff(0, 0), hi = payoff(0, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lo = std::min(lo, payoff(i, j));
      hi = std::max(hi, payoff(i, j));
    }
  }
  EXPECT_GE(sol.value, lo - 1e-9);
  EXPECT_LE(sol.value, hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroSumRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---- Bell-number identity through the enumerator ---------------------------------

TEST(CountingProperty, EnumeratorRanksMatchStirlingRows) {
  for (std::size_t n = 2; n <= 8; ++n) {
    std::vector<std::size_t> by_blocks(n + 1, 0);
    comb::PartitionEnumerator e(n);
    while (e.has_next()) ++by_blocks[e.next().num_blocks()];
    const auto row = comb::stirling2_row(static_cast<unsigned>(n));
    for (std::size_t k = 1; k <= n; ++k) {
      EXPECT_EQ(by_blocks[k], row[k]) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace iotml
