#include <gtest/gtest.h>

#include "combinatorics/counting.hpp"
#include "combinatorics/partition_lattice.hpp"
#include "util/error.hpp"

namespace iotml::comb {
namespace {

TEST(PartitionLattice, Pi4MatchesFigure2) {
  // Fig. 2: the lattice of partitions of a 4-element set has 15 elements in
  // ranks 0..3 with level sizes 1, 6, 7, 1.
  PartitionLattice lat(4);
  EXPECT_EQ(lat.size(), 15u);
  EXPECT_EQ(lat.rank(), 3u);
  EXPECT_EQ(lat.level(0).size(), 1u);
  EXPECT_EQ(lat.level(1).size(), 6u);
  EXPECT_EQ(lat.level(2).size(), 7u);
  EXPECT_EQ(lat.level(3).size(), 1u);
}

class LatticeParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LatticeParam, LevelSizesAreStirlingNumbers) {
  const std::size_t n = GetParam();
  PartitionLattice lat(n);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(lat.level(r).size(),
              stirling2(static_cast<unsigned>(n), static_cast<unsigned>(n - r)))
        << "rank " << r;
  }
}

TEST_P(LatticeParam, CoverEdgesConsistent) {
  const std::size_t n = GetParam();
  PartitionLattice lat(n);
  std::size_t up_edges = 0, down_edges = 0;
  for (std::size_t id = 0; id < lat.size(); ++id) {
    up_edges += lat.covers_above(id).size();
    down_edges += lat.covers_below(id).size();
    for (std::size_t above : lat.covers_above(id)) {
      EXPECT_TRUE(lat.element(id).covered_by(lat.element(above)));
    }
  }
  EXPECT_EQ(up_edges, down_edges);
  EXPECT_EQ(up_edges, lat.edge_count());
}

TEST_P(LatticeParam, UpwardCoverCountFormula) {
  // A partition with b blocks has exactly b(b-1)/2 upward covers.
  const std::size_t n = GetParam();
  PartitionLattice lat(n);
  for (std::size_t id = 0; id < lat.size(); ++id) {
    const std::size_t b = lat.element(id).num_blocks();
    EXPECT_EQ(lat.covers_above(id).size(), b * (b - 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, LatticeParam, ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(PartitionLattice, IdRoundTrip) {
  PartitionLattice lat(5);
  for (std::size_t id = 0; id < lat.size(); ++id) {
    EXPECT_EQ(lat.id_of(lat.element(id)), id);
  }
}

TEST(PartitionLattice, IdOfForeignPartitionThrows) {
  PartitionLattice lat(4);
  EXPECT_THROW(lat.id_of(SetPartition::discrete(5)), InvalidArgument);
}

TEST(PartitionLattice, BoundsChecked) {
  PartitionLattice lat(4);
  EXPECT_THROW(lat.level(4), InvalidArgument);
  EXPECT_THROW(lat.covers_above(lat.size()), InvalidArgument);
  EXPECT_THROW(PartitionLattice(0), InvalidArgument);
  EXPECT_THROW(PartitionLattice(11), InvalidArgument);
}

TEST(PartitionLattice, Pi4HasseEdgeCount) {
  // Down-degrees of Pi_4: each partition with blocks of sizes t has
  // sum over blocks of (2^{t-1} - 1) downward covers.
  PartitionLattice lat(4);
  std::size_t expected = 0;
  for (std::size_t id = 0; id < lat.size(); ++id) {
    for (std::size_t size : lat.element(id).type()) {
      expected += (std::size_t{1} << (size - 1)) - 1;
    }
  }
  EXPECT_EQ(lat.edge_count(), expected);
}

}  // namespace
}  // namespace iotml::comb
