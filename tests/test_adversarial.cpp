#include <gtest/gtest.h>

#include <cmath>

#include "adversarial/gan.hpp"
#include "adversarial/perturbation.hpp"
#include "adversarial/training.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::adversarial {
namespace {

TEST(Perturbation, LabelFlipRate) {
  Rng rng(1);
  data::Samples s = data::make_blobs(2000, 2, 2.0, 1.0, rng);
  const std::vector<int> before = s.y;
  const std::size_t flips = flip_labels(s, 0.25, rng);
  EXPECT_NEAR(static_cast<double>(flips) / 2000.0, 0.25, 0.03);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < s.y.size(); ++i) {
    if (s.y[i] != before[i]) ++changed;
  }
  EXPECT_EQ(changed, flips);
}

TEST(Perturbation, FeatureNoiseChangesValues) {
  Rng rng(2);
  data::Samples s = data::make_blobs(100, 2, 2.0, 1.0, rng);
  data::Samples noisy = s;
  add_feature_noise(noisy, 1.0, rng);
  double total_shift = 0.0;
  for (std::size_t r = 0; r < s.size(); ++r) {
    for (std::size_t c = 0; c < s.dim(); ++c) {
      total_shift += std::fabs(noisy.x(r, c) - s.x(r, c));
    }
  }
  EXPECT_GT(total_shift / (100.0 * 2.0), 0.5);  // E|N(0,1)| ~ 0.8
}

TEST(Perturbation, KnockoutZeroesCells) {
  Rng rng(3);
  data::Samples s = data::make_blobs(500, 4, 2.0, 1.0, rng);
  const std::size_t knocked = knock_out_features(s, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(knocked) / 2000.0, 0.3, 0.04);
}

TEST(Perturbation, LinfAttackExactOnLinearModel) {
  // Decision f(x) = x0 - x1. True label 1 -> attack reduces f by eps per
  // coordinate: x0 - eps, x1 + eps.
  DecisionFn f = [](std::span<const double> x) { return x[0] - x[1]; };
  std::vector<double> x{1.0, 0.0};
  auto attacked = linf_attack(f, x, 1, 0.25);
  EXPECT_DOUBLE_EQ(attacked[0], 0.75);
  EXPECT_DOUBLE_EQ(attacked[1], 0.25);
  // Label 0: attack *increases* f.
  auto attacked0 = linf_attack(f, x, 0, 0.25);
  EXPECT_DOUBLE_EQ(attacked0[0], 1.25);
  EXPECT_DOUBLE_EQ(attacked0[1], -0.25);
}

TEST(Perturbation, ZeroEpsilonIsIdentity) {
  DecisionFn f = [](std::span<const double> x) { return x[0]; };
  std::vector<double> x{3.0, 4.0};
  EXPECT_EQ(linf_attack(f, x, 1, 0.0), x);
}

TEST(Perturbation, RobustAccuracyDecreasesWithBudget) {
  Rng rng(4);
  data::Samples train = data::make_blobs(150, 2, 3.0, 1.0, rng);
  data::Samples test = data::make_blobs(100, 2, 3.0, 1.0, rng);
  kernels::KernelSvmClassifier clf(std::make_unique<kernels::LinearKernel>());
  clf.fit(train);

  // Decision closure over the trained SVM.
  DecisionFn f = [&](std::span<const double> x) {
    std::vector<double> k_row(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      k_row[i] = kernels::LinearKernel()(train.x.row_span(i), x);
    }
    return clf.model().decision(k_row);
  };
  const double clean = robust_accuracy(f, test, 0.0);
  const double small = robust_accuracy(f, test, 0.3);
  const double large = robust_accuracy(f, test, 1.5);
  EXPECT_GE(clean, small - 1e-9);
  EXPECT_GE(small, large - 1e-9);
  EXPECT_LT(large, clean);
}

TEST(AdversarialTraining, ImprovesRobustness) {
  // RBF on concentric circles: the clean boundary hugs the inner class, so
  // adversarial training has real geometry to fix.
  Rng rng(5);
  data::Samples all = data::make_circles(360, 1.0, 2.2, 0.18, rng);
  data::Samples train = data::select_rows(all, [] {
    std::vector<std::size_t> v;
    for (std::size_t i = 0; i < 240; ++i) v.push_back(i);
    return v;
  }());
  data::Samples test = data::select_rows(all, [] {
    std::vector<std::size_t> v;
    for (std::size_t i = 240; i < 360; ++i) v.push_back(i);
    return v;
  }());
  const double eps = 0.3;
  const kernels::SvmParams svm{.c = 10.0};

  AdversarialTrainer plain(
      std::make_unique<kernels::RbfKernel>(1.0),
      AdversarialTrainingParams{.epsilon = eps, .rounds = 1, .svm = svm});
  plain.fit(train);
  AdversarialTrainer robust(
      std::make_unique<kernels::RbfKernel>(1.0),
      AdversarialTrainingParams{.epsilon = eps, .rounds = 6, .svm = svm});
  robust.fit(train);

  // Evaluate beyond the training budget, where the geometry gap is widest.
  const double plain_robust = plain.attacked_accuracy(test, 0.5);
  const double hardened_robust = robust.attacked_accuracy(test, 0.5);
  EXPECT_GT(hardened_robust, plain_robust + 0.05);  // genuine improvement
  // Clean accuracy stays high.
  EXPECT_GE(robust.clean_accuracy(test), 0.9);
  // History recorded one entry per round, training set grew.
  EXPECT_EQ(robust.history().size(), 6u);
  EXPECT_GT(robust.history().back().training_size,
            robust.history().front().training_size);
}

TEST(AdversarialTraining, Validation) {
  EXPECT_THROW(AdversarialTrainer(nullptr), InvalidArgument);
  AdversarialTrainer t(std::make_unique<kernels::LinearKernel>());
  EXPECT_THROW(t.decision(), InvalidArgument);  // not fitted
}

TEST(Gan, ConvergesToTargetGaussian) {
  Rng rng(6);
  ToyGan gan(GanParams{.iterations = 1500, .init_mu = -4.0, .init_sigma = 0.5});
  gan.fit(3.0, 1.5, rng);
  EXPECT_NEAR(gan.mu(), 3.0, 0.5);
  EXPECT_NEAR(gan.sigma(), 1.5, 0.5);
}

TEST(Gan, DiscriminatorConfusedAtConvergence) {
  Rng rng(7);
  ToyGan gan(GanParams{.iterations = 600, .init_mu = -2.0, .init_sigma = 0.7});
  gan.fit(1.0, 1.0, rng);
  const GanTrace& last = gan.history().back();
  // At equilibrium D cannot separate real from fake: both means near 0.5.
  EXPECT_NEAR(last.discriminator_real_mean, 0.5, 0.15);
  EXPECT_NEAR(last.discriminator_fake_mean, 0.5, 0.15);
}

TEST(Gan, SamplesFollowLearnedDistribution) {
  Rng rng(8);
  ToyGan gan(GanParams{.iterations = 400});
  gan.fit(0.0, 2.0, rng);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = gan.sample(rng);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, gan.mu(), 0.05);
  EXPECT_NEAR(std::sqrt(var), gan.sigma(), 0.05);
}

TEST(Gan, HistoryShowsProgressTowardTarget) {
  Rng rng(9);
  ToyGan gan(GanParams{.iterations = 500, .init_mu = -5.0});
  gan.fit(2.0, 1.0, rng);
  const auto& h = gan.history();
  ASSERT_GE(h.size(), 100u);
  const double early_error = std::fabs(h[10].mu - 2.0);
  const double late_error = std::fabs(h.back().mu - 2.0);
  EXPECT_LT(late_error, early_error);
}

TEST(Gan, Validation) {
  Rng rng(10);
  EXPECT_THROW(ToyGan(GanParams{.iterations = 0}), InvalidArgument);
  ToyGan gan;
  EXPECT_THROW(gan.fit(0.0, 0.0, rng), InvalidArgument);
}

}  // namespace
}  // namespace iotml::adversarial
