#include <gtest/gtest.h>

#include <cmath>

#include "data/metrics.hpp"
#include "obs/clock.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/reduction.hpp"
#include "pipeline/sensors.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/uncertainty.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::pipeline {
namespace {

using data::Dataset;

// ---- Sensors ----------------------------------------------------------------

TEST(Sensors, PerfectSensorReproducesSignal) {
  Rng rng(1);
  SensorSpec spec{.name = "t0", .period_s = 0.5};
  Signal truth = sine_signal(20.0, 5.0, 60.0);
  SensorStream s = simulate_sensor(spec, truth, 10.0, rng);
  ASSERT_EQ(s.readings.size(), 20u);
  EXPECT_EQ(s.dropped, 0u);
  for (const Reading& r : s.readings) {
    EXPECT_NEAR(r.value, truth(r.timestamp), 1e-12);
  }
}

TEST(Sensors, NoiseHasExpectedScale) {
  Rng rng(2);
  SensorSpec spec{.period_s = 0.01, .noise_std = 2.0};
  Signal truth = [](double) { return 5.0; };
  SensorStream s = simulate_sensor(spec, truth, 100.0, rng);
  std::vector<double> errors;
  for (const Reading& r : s.readings) errors.push_back(r.value - 5.0);
  auto ms = data::mean_std(errors);
  EXPECT_NEAR(ms.mean, 0.0, 0.1);
  EXPECT_NEAR(ms.stddev, 2.0, 0.2);
}

TEST(Sensors, DropoutLosesReadings) {
  Rng rng(3);
  SensorSpec spec{.period_s = 0.01, .dropout_prob = 0.3};
  SensorStream s = simulate_sensor(spec, [](double) { return 0.0; }, 50.0, rng);
  const double kept = static_cast<double>(s.readings.size()) /
                      static_cast<double>(s.readings.size() + s.dropped);
  EXPECT_NEAR(kept, 0.7, 0.05);
}

TEST(Sensors, BiasAndDriftApplied) {
  Rng rng(4);
  SensorSpec spec{.period_s = 1.0, .drift_per_s = 0.1, .bias = 3.0};
  SensorStream s = simulate_sensor(spec, [](double) { return 0.0; }, 10.0, rng);
  // At t = 0: bias only. At t = 9: bias + 0.9.
  EXPECT_NEAR(s.readings.front().value, 3.0, 1e-12);
  EXPECT_NEAR(s.readings.back().value, 3.9, 1e-12);
}

TEST(Sensors, JitterKeepsTimestampsSortedAndNonNegative) {
  Rng rng(5);
  SensorSpec spec{.period_s = 0.1, .clock_jitter_s = 0.2};
  SensorStream s = simulate_sensor(spec, [](double) { return 0.0; }, 20.0, rng);
  for (std::size_t i = 0; i < s.readings.size(); ++i) {
    EXPECT_GE(s.readings[i].timestamp, 0.0);
    if (i > 0) {
      EXPECT_GE(s.readings[i].timestamp, s.readings[i - 1].timestamp);
    }
  }
}

TEST(Sensors, OutliersInjected) {
  Rng rng(6);
  SensorSpec spec{.period_s = 0.01, .noise_std = 0.1, .outlier_prob = 0.05,
                  .outlier_scale = 50.0};
  SensorStream s = simulate_sensor(spec, [](double) { return 0.0; }, 50.0, rng);
  std::size_t gross = 0;
  for (const Reading& r : s.readings) {
    if (std::fabs(r.value) > 2.0) ++gross;
  }
  const double rate = static_cast<double>(gross) / static_cast<double>(s.readings.size());
  EXPECT_NEAR(rate, 0.05, 0.02);
}

TEST(Sensors, FieldAcquisitionShapes) {
  Rng rng(7);
  std::vector<FieldQuantity> field{
      {"temperature", sine_signal(20, 3, 60), {{.name = "t0"}, {.name = "t1"}}},
      {"humidity", trend_signal(50, 0.1), {{.name = "h0"}}}};
  FieldAcquisition acq = acquire_field(field, 5.0, rng);
  ASSERT_EQ(acq.streams.size(), 3u);
  EXPECT_EQ(acq.quantity_of_stream[0], "temperature");
  EXPECT_EQ(acq.quantity_of_stream[2], "humidity");
}

TEST(Sensors, Validation) {
  Rng rng(8);
  EXPECT_THROW(simulate_sensor({.period_s = 0.0}, [](double) { return 0.0; }, 1.0, rng),
               InvalidArgument);
  EXPECT_THROW(simulate_sensor({.dropout_prob = 1.0}, [](double) { return 0.0; }, 1.0, rng),
               InvalidArgument);
  EXPECT_THROW(acquire_field({}, 1.0, rng), InvalidArgument);
  EXPECT_THROW(sine_signal(0, 1, 0), InvalidArgument);
}

// ---- Integration ---------------------------------------------------------------

TEST(Integration, SynchronizedStreamsProduceCompleteRecords) {
  Rng rng(9);
  SensorSpec a{.name = "a", .period_s = 1.0};
  SensorSpec b{.name = "b", .period_s = 1.0};
  Signal zero = [](double) { return 0.0; };
  auto sa = simulate_sensor(a, zero, 10.0, rng);
  auto sb = simulate_sensor(b, zero, 10.0, rng);
  IntegrationResult res = integrate_streams({sa, sb});
  EXPECT_EQ(res.records.rows(), 10u);
  EXPECT_EQ(res.records.num_columns(), 3u);  // timestamp + 2 sensors
  EXPECT_DOUBLE_EQ(res.missing_rate, 0.0);
}

TEST(Integration, DesynchronizedStreamsCreateMissingValues) {
  // The paper's Section IV example: unsynchronized sensors -> merged
  // timestamp list -> records plagued by missing values.
  Rng rng(10);
  SensorSpec a{.name = "a", .period_s = 1.0};
  SensorSpec b{.name = "b", .period_s = 0.7};
  Signal zero = [](double) { return 0.0; };
  auto sa = simulate_sensor(a, zero, 20.0, rng);
  auto sb = simulate_sensor(b, zero, 20.0, rng);
  IntegrationResult res = integrate_streams({sa, sb});
  EXPECT_GT(res.missing_rate, 0.3);  // most stamps only carry one sensor
  EXPECT_GT(res.records.rows(), 20u);
}

TEST(Integration, ToleranceMergesNearbyStamps) {
  SensorStream a{.sensor_name = "a", .readings = {{0.0, 1.0}, {1.0, 2.0}}};
  SensorStream b{.sensor_name = "b", .readings = {{0.05, 10.0}, {1.04, 20.0}}};
  IntegrationResult strict = integrate_streams({a, b}, {.merge_tolerance_s = 0.0});
  EXPECT_EQ(strict.records.rows(), 4u);
  EXPECT_NEAR(strict.missing_rate, 0.5, 1e-12);

  IntegrationResult merged = integrate_streams({a, b}, {.merge_tolerance_s = 0.1});
  EXPECT_EQ(merged.records.rows(), 2u);
  EXPECT_DOUBLE_EQ(merged.missing_rate, 0.0);
  EXPECT_EQ(merged.merged_timestamps, 2u);
}

TEST(Integration, DuplicateHandlingAverageVsLast) {
  SensorStream a{.sensor_name = "a", .readings = {{0.0, 1.0}, {0.01, 3.0}}};
  IntegrationResult avg = integrate_streams({a}, {.merge_tolerance_s = 0.1});
  EXPECT_DOUBLE_EQ(avg.records.column(1).numeric(0), 2.0);
  IntegrationResult last = integrate_streams(
      {a}, {.merge_tolerance_s = 0.1, .average_duplicates = false});
  EXPECT_DOUBLE_EQ(last.records.column(1).numeric(0), 3.0);
}

TEST(Integration, Validation) {
  EXPECT_THROW(integrate_streams({}), InvalidArgument);
  SensorStream empty{.sensor_name = "e", .readings = {}, .dropped = 0};
  EXPECT_THROW(integrate_streams({empty}), InvalidArgument);
}

// ---- Preparation ------------------------------------------------------------------

Dataset column_with(const std::vector<double>& values, const std::vector<bool>& missing) {
  Dataset ds;
  auto& c = ds.add_numeric_column("x");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (missing[i]) {
      c.push_missing();
    } else {
      c.push_numeric(values[i]);
    }
  }
  return ds;
}

TEST(Imputation, MeanFillsWithColumnMean) {
  Rng rng(11);
  Dataset ds = column_with({1, 0, 3, 0}, {false, true, false, true});
  auto report = impute(ds, ImputeStrategy::kMean, rng);
  EXPECT_EQ(report.cells_imputed, 2u);
  EXPECT_EQ(report.cells_unresolved, 0u);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(1), 2.0);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(3), 2.0);
}

TEST(Imputation, MedianRobustToOutlier) {
  Rng rng(12);
  Dataset ds = column_with({1, 2, 3, 1000, 0}, {false, false, false, false, true});
  impute(ds, ImputeStrategy::kMedian, rng);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(4), 2.5);  // median of {1,2,3,1000}
}

TEST(Imputation, LocfCarriesForwardAndBackfillsHead) {
  Rng rng(13);
  Dataset ds = column_with({0, 7, 0, 0, 9}, {true, false, true, true, false});
  impute(ds, ImputeStrategy::kLocf, rng);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(0), 7.0);  // backfilled head
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(2), 7.0);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(3), 7.0);
}

TEST(Imputation, LinearInterpolatesGaps) {
  Rng rng(14);
  Dataset ds = column_with({0, 0, 0, 9, 0}, {false, true, true, false, true});
  impute(ds, ImputeStrategy::kLinear, rng);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(1), 3.0);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(2), 6.0);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(4), 9.0);  // trailing extension
}

TEST(Imputation, HotDeckUsesExistingValues) {
  Rng rng(15);
  Dataset ds = column_with({5, 8, 0, 0}, {false, false, true, true});
  impute(ds, ImputeStrategy::kHotDeck, rng);
  for (std::size_t r = 2; r < 4; ++r) {
    const double v = ds.column(0).numeric(r);
    EXPECT_TRUE(std::abs(v - 5.0) < 1e-12 || std::abs(v - 8.0) < 1e-12);
  }
}

TEST(Imputation, KnnUsesSimilarRows) {
  Rng rng(16);
  // Two clusters in feature "a"; target "b" equals the cluster value.
  Dataset ds;
  auto& a = ds.add_numeric_column("a");
  auto& b = ds.add_numeric_column("b");
  for (int i = 0; i < 10; ++i) {
    a.push_numeric(i < 5 ? 0.0 : 100.0);
    if (i == 0 || i == 9) {
      b.push_missing();
    } else {
      b.push_numeric(i < 5 ? 1.0 : 2.0);
    }
  }
  impute(ds, ImputeStrategy::kKnn, rng, 3);
  EXPECT_NEAR(ds.column(1).numeric(0), 1.0, 1e-9);
  EXPECT_NEAR(ds.column(1).numeric(9), 2.0, 1e-9);
}

TEST(Imputation, CategoricalModeForOrderFreeStrategies) {
  Rng rng(17);
  Dataset ds;
  auto& c = ds.add_categorical_column("c");
  c.push_category("x");
  c.push_category("x");
  c.push_category("y");
  c.push_missing();
  impute(ds, ImputeStrategy::kMean, rng);
  EXPECT_EQ(ds.column(0).category_label(3), "x");
}

TEST(Imputation, EntirelyMissingColumnIsUnresolved) {
  Rng rng(18);
  Dataset ds = column_with({0, 0}, {true, true});
  auto report = impute(ds, ImputeStrategy::kMean, rng);
  EXPECT_EQ(report.cells_imputed, 0u);
  EXPECT_EQ(report.cells_unresolved, 2u);
}

TEST(Imputation, LowerRmseThanNothingOnSmoothSignal) {
  // Linear interpolation should reconstruct a smooth sensor signal well.
  Rng rng(19);
  SensorSpec spec{.name = "s", .period_s = 0.1, .noise_std = 0.05, .dropout_prob = 0.3};
  Signal truth = sine_signal(0.0, 2.0, 10.0);
  SensorStream s = simulate_sensor(spec, truth, 30.0, rng);

  // Build a complete time grid, mark dropped samples missing.
  IntegrationResult res = integrate_streams({s});
  Dataset ds = res.records;
  impute(ds, ImputeStrategy::kLinear, rng);

  std::vector<double> actual, predicted;
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    actual.push_back(truth(ds.column(0).numeric(r)));
    predicted.push_back(ds.column(1).numeric(r));
  }
  EXPECT_LT(data::rmse(actual, predicted), 0.15);
}

TEST(Outliers, ZscoreFlagsGrossValues) {
  Dataset ds = column_with({1, 2, 1, 2, 1, 2, 1, 2, 50}, std::vector<bool>(9, false));
  auto flags = detect_outliers_zscore(ds.column(0), 2.0);
  EXPECT_TRUE(flags[8]);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(flags[i]);
}

TEST(Outliers, HampelMoreRobustThanZscoreToMassiveOutliers) {
  // Two huge outliers inflate the stddev enough that z-score misses a third,
  // milder one; Hampel (median/MAD) still catches it.
  std::vector<double> values{1, 1.1, 0.9, 1, 1.05, 0.95, 1, 6, 1000, 1000};
  Dataset ds = column_with(values, std::vector<bool>(values.size(), false));
  auto z = detect_outliers_zscore(ds.column(0), 3.0);
  auto h = detect_outliers_hampel(ds.column(0), 3.0);
  EXPECT_FALSE(z[7]);  // masked by the 1000s
  EXPECT_TRUE(h[7]);
  EXPECT_TRUE(h[8]);
  EXPECT_TRUE(h[9]);
}

TEST(Outliers, SuppressTurnsFlagsIntoMissing) {
  Dataset ds = column_with({1, 2, 99}, {false, false, false});
  std::size_t n = suppress_outliers(ds, 0, {false, false, true});
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(ds.column(0).is_missing(2));
}

TEST(Normalize, MinMaxToUnitInterval) {
  Dataset ds = column_with({2, 4, 6}, {false, false, false});
  normalize(ds, NormalizeKind::kMinMax);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(0), 0.0);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(1), 0.5);
  EXPECT_DOUBLE_EQ(ds.column(0).numeric(2), 1.0);
}

TEST(Normalize, ZScoreStandardizes) {
  Rng rng(20);
  Dataset ds;
  auto& c = ds.add_numeric_column("x");
  for (int i = 0; i < 500; ++i) c.push_numeric(rng.normal(10.0, 3.0));
  normalize(ds, NormalizeKind::kZScore);
  std::vector<double> values;
  for (std::size_t r = 0; r < ds.rows(); ++r) values.push_back(ds.column(0).numeric(r));
  auto ms = data::mean_std(values);
  EXPECT_NEAR(ms.mean, 0.0, 1e-9);
  EXPECT_NEAR(ms.stddev, 1.0, 1e-9);
}

// ---- Reduction -------------------------------------------------------------------

TEST(Reduction, VarianceFilterDropsConstants) {
  Dataset ds;
  auto& a = ds.add_numeric_column("constant");
  auto& b = ds.add_numeric_column("varies");
  for (int i = 0; i < 10; ++i) {
    a.push_numeric(5.0);
    b.push_numeric(i);
  }
  auto keep = select_by_variance(ds, 0.01);
  EXPECT_EQ(keep, (std::vector<std::size_t>{1}));
}

TEST(Reduction, MutualInformationRanksInformativeFirst) {
  Rng rng(21);
  Dataset ds;
  auto& signal = ds.add_numeric_column("signal");
  auto& noise = ds.add_numeric_column("noise");
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    const int y = i % 2;
    signal.push_numeric(y == 1 ? rng.normal(3.0, 0.5) : rng.normal(-3.0, 0.5));
    noise.push_numeric(rng.normal(0.0, 1.0));
    labels.push_back(y);
  }
  ds.set_labels(labels);
  EXPECT_GT(mutual_information(ds, 0), mutual_information(ds, 1) + 0.1);
  EXPECT_EQ(select_by_mutual_information(ds, 1), (std::vector<std::size_t>{0}));
}

TEST(Reduction, SampleRowsShapes) {
  Rng rng(22);
  auto rows = sample_rows(100, 30, rng);
  EXPECT_EQ(rows.size(), 30u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_THROW(sample_rows(5, 10, rng), InvalidArgument);
}

TEST(Reduction, StratifiedSampleKeepsProportions) {
  Rng rng(23);
  std::vector<int> labels(100, 0);
  for (int i = 80; i < 100; ++i) labels[i] = 1;
  auto rows = stratified_sample_rows(labels, 50, rng);
  std::size_t minority = 0;
  for (std::size_t r : rows) {
    if (labels[r] == 1) ++minority;
  }
  EXPECT_EQ(minority, 10u);
}

TEST(Discretize, EqualWidthBins) {
  Dataset ds = column_with({0, 1, 2, 3, 4, 5, 6, 7}, std::vector<bool>(8, false));
  std::size_t bins = discretize_column(ds, 0, DiscretizeKind::kEqualWidth, 4);
  EXPECT_EQ(bins, 4u);
  EXPECT_EQ(ds.column(0).type(), data::ColumnType::kCategorical);
  EXPECT_EQ(ds.column(0).category_label(0), "bin0");
  EXPECT_EQ(ds.column(0).category_label(7), "bin3");
}

TEST(Discretize, EqualFrequencyBalancesCounts) {
  Rng rng(24);
  Dataset ds;
  auto& c = ds.add_numeric_column("x");
  for (int i = 0; i < 400; ++i) c.push_numeric(rng.exponential(1.0));  // skewed
  discretize_column(ds, 0, DiscretizeKind::kEqualFrequency, 4);
  std::map<std::string, int> counts;
  for (std::size_t r = 0; r < ds.rows(); ++r) ++counts[ds.column(0).category_label(r)];
  for (const auto& [label, count] : counts) {
    EXPECT_NEAR(count, 100, 10);
  }
}

TEST(Discretize, EntropyMdlFindsTrueBoundary) {
  // Labels flip exactly at x = 0; MDL should produce ~2 bins around it.
  Rng rng(25);
  Dataset ds;
  auto& c = ds.add_numeric_column("x");
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    c.push_numeric(v);
    labels.push_back(v > 0 ? 1 : 0);
  }
  ds.set_labels(labels);
  std::size_t bins = discretize_column(ds, 0, DiscretizeKind::kEntropyMdl);
  EXPECT_GE(bins, 2u);
  EXPECT_LE(bins, 4u);
  // The discretized feature must now determine the labels almost exactly.
  std::map<std::string, std::pair<int, int>> purity;
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    auto& p = purity[ds.column(0).category_label(r)];
    (ds.label(r) == 1 ? p.first : p.second)++;
  }
  for (const auto& [label, p] : purity) {
    EXPECT_TRUE(p.first == 0 || p.second == 0) << "impure bin " << label;
  }
}

TEST(Discretize, PreservesMissingCells) {
  Dataset ds = column_with({1, 0, 3}, {false, true, false});
  discretize_column(ds, 0, DiscretizeKind::kEqualWidth, 2);
  EXPECT_TRUE(ds.column(0).is_missing(1));
}

TEST(Discretize, Validation) {
  Dataset ds = column_with({1, 2}, {false, false});
  EXPECT_THROW(discretize_column(ds, 0, DiscretizeKind::kEqualWidth, 1), InvalidArgument);
  EXPECT_THROW(discretize_column(ds, 0, DiscretizeKind::kEntropyMdl), InvalidArgument);
  Dataset cat;
  cat.add_categorical_column("c").push_category("a");
  EXPECT_THROW(discretize_column(cat, 0, DiscretizeKind::kEqualWidth), InvalidArgument);
}

// ---- Uncertainty --------------------------------------------------------------------

TEST(Uncertainty, ArithmeticPropagation) {
  UncertainValue a(2.0, 0.25), b(3.0, 0.75);
  auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum.mean, 5.0);
  EXPECT_DOUBLE_EQ(sum.variance, 1.0);
  auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff.variance, 1.0);
  auto scaled = a.scaled(2.0);
  EXPECT_DOUBLE_EQ(scaled.variance, 1.0);
  EXPECT_THROW(UncertainValue(0.0, -1.0), InvalidArgument);
}

TEST(Uncertainty, ProductVarianceExactForIndependent) {
  UncertainValue a(2.0, 0.5), b(4.0, 0.25);
  auto prod = a * b;
  EXPECT_DOUBLE_EQ(prod.mean, 8.0);
  EXPECT_DOUBLE_EQ(prod.variance, 0.5 * 0.25 + 0.5 * 16.0 + 0.25 * 4.0);
}

TEST(Uncertainty, MeanShrinksVariance) {
  std::vector<UncertainValue> vs(4, UncertainValue(1.0, 1.0));
  auto m = uncertain_mean(vs);
  EXPECT_DOUBLE_EQ(m.mean, 1.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.25);
}

TEST(Uncertainty, FusionWeightsByPrecision) {
  UncertainValue precise(10.0, 0.01), vague(20.0, 100.0);
  auto fused = fuse({precise, vague});
  EXPECT_NEAR(fused.mean, 10.0, 0.01);
  EXPECT_LT(fused.variance, 0.01);
}

TEST(Uncertainty, MonteCarloAgreesWithPropagation) {
  // Empirical check of the propagation rules (the core of bench_uncertainty).
  Rng rng(26);
  UncertainValue a(1.0, 0.49), b(2.0, 0.09);
  auto predicted = a * b;
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(rng.normal(a.mean, a.stddev()) * rng.normal(b.mean, b.stddev()));
  }
  auto ms = data::mean_std(samples);
  EXPECT_NEAR(ms.mean, predicted.mean, 0.02);
  EXPECT_NEAR(ms.stddev * ms.stddev, predicted.variance, 0.05);
}

TEST(Uncertainty, MapBasics) {
  UncertaintyMap map(3, 2, 1.0);
  EXPECT_DOUBLE_EQ(map.mean_variance(), 1.0);
  map.set_variance(0, 0, 5.0);
  EXPECT_DOUBLE_EQ(map.variance(0, 0), 5.0);
  map.scale_column(1, 2.0);
  EXPECT_DOUBLE_EQ(map.variance(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(map.column_mean_variance(1), 4.0);
  EXPECT_THROW(map.variance(3, 0), InvalidArgument);
}

// ---- Stage framework ----------------------------------------------------------------

TEST(StageFramework, ReportsTrackMissingRates) {
  Rng rng(27);
  Pipeline p;
  p.add("inject", [](Dataset& ds, Rng& r) {
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      if (r.bernoulli(0.5)) ds.column(0).set_missing(i);
    }
    return 1.0;
  });
  p.add("repair", [](Dataset& ds, Rng& r) {
    impute(ds, ImputeStrategy::kMean, r);
    return 2.5;
  }, "preprocessor");

  Dataset ds = column_with({1, 2, 3, 4, 5, 6, 7, 8}, std::vector<bool>(8, false));
  Dataset out = p.run(std::move(ds), rng);

  ASSERT_EQ(p.reports().size(), 2u);
  EXPECT_DOUBLE_EQ(p.reports()[0].missing_rate_in, 0.0);
  EXPECT_GT(p.reports()[0].missing_rate_out, 0.0);
  EXPECT_DOUBLE_EQ(p.reports()[1].missing_rate_out, 0.0);
  EXPECT_DOUBLE_EQ(p.total_cost(), 3.5);
  EXPECT_DOUBLE_EQ(p.player_cost("preprocessor"), 2.5);
  EXPECT_DOUBLE_EQ(out.missing_rate(), 0.0);
}

TEST(StageFramework, TierNames) {
  EXPECT_EQ(tier_name(Tier::kDevice), "device");
  EXPECT_EQ(tier_name(Tier::kEdge), "edge");
  EXPECT_EQ(tier_name(Tier::kCore), "core");
}

TEST(StageFramework, TierNameRoundTripsExhaustively) {
  for (Tier t : {Tier::kDevice, Tier::kEdge, Tier::kCore}) {
    EXPECT_EQ(tier_from_name(tier_name(t)), t);
  }
  EXPECT_THROW(tier_from_name("cloud"), InvalidArgument);
  EXPECT_THROW(tier_from_name("Device"), InvalidArgument);  // case-sensitive
  EXPECT_THROW(tier_from_name(""), InvalidArgument);
  EXPECT_THROW(tier_from_name("edge "), InvalidArgument);
}

TEST(StageFramework, StagesMeasureWallTimeOutsidePipelineRun) {
  // wall_time_us used to stay 0 unless Pipeline::run filled it; concrete
  // stages now measure their own body, so a direct apply() reports time too.
  Rng rng(29);
  LambdaStage stage("busy", [](Dataset&, Rng&) {
    const std::int64_t start = obs::now_us();
    while (obs::now_us() - start < 1000) {  // spin ~1 ms of real time
    }
    return 0.0;
  });
  Dataset ds = column_with({1, 2, 3}, {false, false, false});
  StageReport report = stage.apply(ds, rng);
  EXPECT_GE(report.wall_time_us, 1000u);
}

TEST(StageFramework, TakeStagesEmptiesThePipeline) {
  Pipeline p;
  p.add("a", [](Dataset&, Rng&) { return 0.0; }, "op", Tier::kDevice);
  p.add("b", [](Dataset&, Rng&) { return 0.0; }, "op", Tier::kCore);
  auto stages = p.take_stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.reports().empty());
  EXPECT_EQ(stages[0]->name(), "a");
  EXPECT_EQ(stages[0]->tier(), Tier::kDevice);
  EXPECT_EQ(stages[1]->tier(), Tier::kCore);
}

TEST(StageFramework, Validation) {
  Pipeline p;
  EXPECT_THROW(p.add(nullptr), InvalidArgument);
  EXPECT_THROW(LambdaStage("", [](Dataset&, Rng&) { return 0.0; }), InvalidArgument);
  EXPECT_THROW(LambdaStage("x", nullptr), InvalidArgument);
}

TEST(StageFramework, EndToEndFieldPipeline) {
  // Miniature Fig. 1: acquire -> integrate -> clean -> impute -> normalize.
  Rng rng(28);
  std::vector<FieldQuantity> field{
      {"temp", sine_signal(20, 5, 60),
       {{.name = "t0", .period_s = 0.5, .noise_std = 0.3, .dropout_prob = 0.1},
        {.name = "t1", .period_s = 0.7, .noise_std = 0.3, .outlier_prob = 0.02}}}};
  FieldAcquisition acq = acquire_field(field, 30.0, rng);
  IntegrationResult integ = integrate_streams(acq.streams, {.merge_tolerance_s = 0.05});

  Pipeline p;
  p.add("outliers", [](Dataset& ds, Rng&) {
    for (std::size_t f = 1; f < ds.num_columns(); ++f) {
      suppress_outliers(ds, f, detect_outliers_hampel(ds.column(f), 4.0));
    }
    return 1.0;
  }, "preprocessor", Tier::kEdge);
  p.add("impute", [](Dataset& ds, Rng& r) {
    impute(ds, ImputeStrategy::kLinear, r);
    return 1.0;
  }, "preprocessor", Tier::kEdge);

  Dataset cleaned = p.run(integ.records, rng);
  EXPECT_DOUBLE_EQ(cleaned.missing_rate(), 0.0);
  EXPECT_EQ(cleaned.rows(), integ.records.rows());
}

}  // namespace
}  // namespace iotml::pipeline
