// Cross-module integration tests: complete flows through several subsystems
// at once, the way a downstream user would compose them.

#include <gtest/gtest.h>

#include <sstream>

#include "core/faceted_learner.hpp"
#include "core/pipeline_game.hpp"
#include "data/csv.hpp"
#include "data/encoding.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "kernels/multiclass.hpp"
#include "learners/decision_tree.hpp"
#include "learners/pattern_ensemble.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/privacy.hpp"
#include "pipeline/reduction.hpp"
#include "pipeline/sensors.hpp"
#include "roughsets/roughsets.hpp"
#include "util/rng.hpp"

namespace iotml {
namespace {

TEST(EndToEnd, SensorsToFacetedLearner) {
  // Acquire two quantities from desynchronized sensors, integrate, impute,
  // label by ground truth, and run the partition-MKL learner on the numeric
  // record — every tier of Fig. 1 in one test.
  Rng rng(1);
  std::vector<pipeline::FieldQuantity> field{
      {"a", pipeline::sine_signal(0.0, 3.0, 40.0),
       {{.name = "a0", .period_s = 1.0, .noise_std = 0.3, .dropout_prob = 0.1},
        {.name = "a1", .period_s = 1.3, .noise_std = 0.3}}},
      {"b", pipeline::sine_signal(0.0, 3.0, 25.0),
       {{.name = "b0", .period_s = 0.9, .noise_std = 0.3},
        {.name = "b1", .period_s = 1.1, .noise_std = 0.3, .dropout_prob = 0.2}}}};
  auto acq = pipeline::acquire_field(field, 180.0, rng);
  auto integ = pipeline::integrate_streams(acq.streams, {.merge_tolerance_s = 0.2});
  pipeline::impute(integ.records, pipeline::ImputeStrategy::kLinear, rng);
  ASSERT_DOUBLE_EQ(integ.records.missing_rate(), 0.0);

  // Concept: quantity a's truth is positive.
  std::vector<int> labels;
  for (std::size_t r = 0; r < integ.records.rows(); ++r) {
    labels.push_back(field[0].truth(integ.records.column(0).numeric(r)) > 0 ? 1 : 0);
  }
  integ.records.set_labels(labels);

  // Drop the timestamp column (it trivially determines the concept).
  std::vector<std::size_t> sensor_cols;
  for (std::size_t c = 1; c < integ.records.num_columns(); ++c) {
    sensor_cols.push_back(c);
  }
  data::Samples samples = data::to_samples(integ.records.select_columns(sensor_cols));

  Rng split_rng(2);
  auto split = data::train_test_split(samples.size(), 0.3, split_rng);
  core::FacetedLearner learner;
  learner.fit(data::select_rows(samples, split.train));
  EXPECT_GE(learner.accuracy(data::select_rows(samples, split.test)), 0.9);
}

TEST(EndToEnd, PrivatizedFleetThroughPatternEnsemble) {
  // Privacy noise at the device, missing cells from flaky links, pattern
  // ensemble at the core: the composition still learns.
  Rng rng(3);
  data::Dataset train = data::make_phone_fleet(900, 0.0, rng);
  data::Dataset test = data::make_phone_fleet(400, 0.0, rng);
  Rng privacy_rng(5);
  pipeline::privatize(train, {.epsilon = 3.0, .sensitivity = {}, .randomize_categories = true},
                      privacy_rng);
  pipeline::privatize(test, {.epsilon = 3.0, .sensitivity = {}, .randomize_categories = true},
                      privacy_rng);
  for (auto* ds : {&train, &test}) {
    for (std::size_t f = 0; f < ds->num_columns(); ++f) {
      for (std::size_t r = 0; r < ds->rows(); ++r) {
        if (rng.bernoulli(0.15)) ds->column(f).set_missing(r);
      }
    }
  }
  learners::PatternEnsemble ensemble(
      [] { return std::make_unique<learners::DecisionTree>(); }, 10);
  ensemble.fit(train);
  EXPECT_GE(ensemble.accuracy(test), 0.75);
  EXPECT_GT(ensemble.num_models(), 1u);
}

TEST(EndToEnd, RoughSetsAnchorLatticeSearch) {
  // Rough-set K on discretized numeric data feeds the cone construction;
  // the resulting partition must keep K as one block.
  Rng rng(7);
  data::FacetedData fd = data::make_faceted_gaussian(
      240, {{2, 3.0, 1.0, true}, {2, 0.0, 2.0, false}, {2, 1.5, 1.0, true}}, rng);
  core::FacetedLearnerConfig config;
  config.rough_select_k = true;
  config.rough_max_k = 2;
  core::FacetedLearner learner(config);
  learner.fit(fd.samples);

  const auto& k = learner.k_block();
  if (k.size() >= 2) {
    // All K features in one block of the final partition.
    for (std::size_t i = 1; i < k.size(); ++i) {
      EXPECT_TRUE(learner.partition().together(k[0], k[i]));
    }
  }
  EXPECT_GE(learner.accuracy(fd.samples), 0.75);
}

TEST(EndToEnd, CsvRoundTripPreservesLearnedAccuracy) {
  // Persist a corrupted dataset to CSV, reload, and get the same model
  // behaviour — the serialization layer is faithful.
  Rng rng(9);
  data::Dataset train = data::make_phone_fleet(500, 0.05, rng);
  for (std::size_t f = 0; f < train.num_columns(); ++f) {
    for (std::size_t r = 0; r < train.rows(); ++r) {
      if (rng.bernoulli(0.1)) train.column(f).set_missing(r);
    }
  }
  data::Dataset test = data::make_phone_fleet(200, 0.05, rng);

  std::stringstream buffer;
  data::write_csv(train, buffer);
  data::Dataset reloaded = data::read_csv(buffer);

  learners::DecisionTree original, roundtripped;
  original.fit(train);
  roundtripped.fit(reloaded);
  EXPECT_EQ(original.predict(test), roundtripped.predict(test));
}

TEST(EndToEnd, OneHotPlusMulticlassSvmOnFleetSegments) {
  // 3-way device segmentation: classify the battery level from the other
  // attributes' one-hot encoding with the one-vs-one SVM (weak concept;
  // asserts mechanics, not accuracy).
  Rng rng(11);
  data::Dataset fleet = data::make_phone_fleet(400, 0.0, rng);
  std::vector<int> battery_labels;
  for (std::size_t r = 0; r < fleet.rows(); ++r) {
    battery_labels.push_back(static_cast<int>(fleet.column(0).category(r)));
  }
  data::Dataset features = fleet.select_columns({1, 2});
  features.set_labels(battery_labels);
  data::Samples samples = data::to_samples(data::one_hot_encode(features));

  kernels::OneVsOneSvm svm(std::make_unique<kernels::RbfKernel>(1.0));
  svm.fit(samples);
  EXPECT_EQ(svm.num_classes(), 3u);
  auto predictions = svm.predict(samples.x);
  EXPECT_EQ(predictions.size(), samples.size());
  for (int p : predictions) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(EndToEnd, DiscretizedPipelineFeedsRoughSets) {
  // Numeric sensor record -> entropy-MDL discretization -> indiscernibility
  // analysis: the rough-set layer consumes real pipeline output.
  Rng rng(13);
  data::Samples s = data::make_blobs(300, 3, 5.0, 1.0, rng);
  data::Dataset ds = data::samples_to_dataset(s);
  pipeline::discretize_all(ds, pipeline::DiscretizeKind::kEntropyMdl);

  rough::IndiscernibilityRelation rel(ds, {0, 1, 2});
  const double gamma = rough::dependency_degree(rel, ds.labels());
  EXPECT_GT(gamma, 0.9);  // MDL bins make the concept nearly crisp

  const rough::KSelection sel = rough::select_k(ds, 1, rough::KScore::kDependency);
  EXPECT_EQ(sel.features.size(), 1u);
  EXPECT_EQ(sel.features[0], 0u);  // feature 0 carries the separation
}

TEST(EndToEnd, EmpiricalGameIsDeterministic) {
  // The measured pipeline game must be reproducible: identical inputs and
  // seeds give identical payoff matrices.
  Rng rng(15);
  data::Dataset train = data::make_phone_fleet(300, 0.05, rng);
  data::Dataset test = data::make_phone_fleet(150, 0.05, rng);
  for (std::size_t f = 0; f < train.num_columns(); ++f) {
    for (std::size_t r = 0; r < train.rows(); ++r) {
      if (rng.bernoulli(0.2)) train.column(f).set_missing(r);
    }
  }
  Rng g1(1), g2(1);
  auto result1 = core::build_pipeline_game(train, test, {}, g1);
  auto result2 = core::build_pipeline_game(train, test, {}, g2);
  EXPECT_LT(result1.game.a.max_abs_diff(result2.game.a), 1e-15);
  EXPECT_LT(result1.game.b.max_abs_diff(result2.game.b), 1e-15);
  EXPECT_EQ(result1.nash.row, result2.nash.row);
  EXPECT_EQ(result1.nash.col, result2.nash.col);
}

}  // namespace
}  // namespace iotml
