#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iotml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 4));
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 1), InvalidArgument);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), InvalidArgument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), InvalidArgument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t v : unique) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(3);
  auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(77);
  Rng child = a.split();
  // The child stream should not replay the parent's next values.
  Rng b(77);
  (void)b.engine()();  // consume what split() consumed
  EXPECT_NE(child.uniform(), b.uniform());
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(join(pieces, "/"), "x/y/z");
  EXPECT_EQ(join({}, "/"), "");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Strings, RenderTableContainsCells) {
  std::string table = render_table({"A", "B"}, {{"1", "22"}, {"333", "4"}});
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("333"), std::string::npos);
  EXPECT_NE(table.find("+"), std::string::npos);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    IOTML_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckMacroMessageCarriesFileAndLine) {
  try {
    IOTML_CHECK(false, "ctx");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    // Location is rendered as "<file>:<line>" pointing at the macro call site.
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(':'), std::string::npos) << what;
  }
}

TEST(Error, CheckMacroPassesWithoutThrowing) {
  EXPECT_NO_THROW(IOTML_CHECK(2 + 2 == 4, "never shown"));
  EXPECT_NO_THROW(IOTML_INTERNAL_CHECK(true, "never shown"));
}

TEST(Error, CheckMacroIsNotCaughtAsInternalError) {
  // IOTML_CHECK signals caller misuse, never a library bug: the exception
  // must be InvalidArgument, not InternalError.
  try {
    IOTML_CHECK(false, "caller misuse");
    FAIL() << "expected throw";
  } catch (const InternalError&) {
    FAIL() << "IOTML_CHECK must not throw InternalError";
  } catch (const InvalidArgument&) {
    SUCCEED();
  }
}

TEST(Error, InternalCheckMacroThrowsInternalErrorWithContext) {
  try {
    IOTML_INTERNAL_CHECK(1 + 1 == 3, "invariant broken");
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant broken"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos) << what;
  }
}

TEST(Error, InternalCheckMacroIsNotCaughtAsInvalidArgument) {
  try {
    IOTML_INTERNAL_CHECK(false, "library bug");
    FAIL() << "expected throw";
  } catch (const InvalidArgument&) {
    FAIL() << "IOTML_INTERNAL_CHECK must not throw InvalidArgument";
  } catch (const InternalError&) {
    SUCCEED();
  }
}

TEST(Error, HierarchyCatchable) {
  EXPECT_THROW(throw NumericError("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(Error, RngPreconditionFailuresCarryLocation) {
  Rng rng(1);
  try {
    rng.index(0);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("rng"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace iotml
