#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "combinatorics/counting.hpp"
#include "combinatorics/partition.hpp"
#include "util/error.hpp"

namespace iotml::comb {
namespace {

TEST(SetPartition, DiscreteAndIndiscrete) {
  auto d = SetPartition::discrete(4);
  EXPECT_EQ(d.num_blocks(), 4u);
  EXPECT_EQ(d.rank(), 0u);
  auto one = SetPartition::indiscrete(4);
  EXPECT_EQ(one.num_blocks(), 1u);
  EXPECT_EQ(one.rank(), 3u);
  EXPECT_TRUE(d.refines(one));
  EXPECT_FALSE(one.refines(d));
}

TEST(SetPartition, FromBlocksCanonicalizes) {
  auto p = SetPartition::from_blocks({{2}, {0, 1}, {3}}, 4);
  // Canonical order by first appearance: {0,1} first, then {2}, then {3}.
  EXPECT_EQ(p.to_string(), "12/3/4");
  EXPECT_EQ(p.rgs(), (std::vector<int>{0, 0, 1, 2}));
}

TEST(SetPartition, FromBlocksValidation) {
  EXPECT_THROW(SetPartition::from_blocks({{0}, {0, 1}}, 2), InvalidArgument);  // overlap
  EXPECT_THROW(SetPartition::from_blocks({{0}}, 2), InvalidArgument);          // no cover
  EXPECT_THROW(SetPartition::from_blocks({{0}, {}}, 1), InvalidArgument);      // empty block
  EXPECT_THROW(SetPartition::from_blocks({{0, 5}}, 2), InvalidArgument);       // out of range
}

TEST(SetPartition, FromAssignmentRelabels) {
  auto p = SetPartition::from_assignment({7, 7, 3, 7});
  EXPECT_EQ(p.rgs(), (std::vector<int>{0, 0, 1, 0}));
  EXPECT_EQ(p.num_blocks(), 2u);
}

TEST(SetPartition, TogetherAndBlockOf) {
  auto p = SetPartition::from_blocks({{0, 2}, {1}}, 3);
  EXPECT_TRUE(p.together(0, 2));
  EXPECT_FALSE(p.together(0, 1));
  EXPECT_EQ(p.block_of(1), 1);
}

TEST(SetPartition, RefinesTransitiveExample) {
  auto fine = SetPartition::from_blocks({{0}, {1}, {2, 3}}, 4);
  auto mid = SetPartition::from_blocks({{0, 1}, {2, 3}}, 4);
  auto coarse = SetPartition::indiscrete(4);
  EXPECT_TRUE(fine.refines(mid));
  EXPECT_TRUE(mid.refines(coarse));
  EXPECT_TRUE(fine.refines(coarse));
  EXPECT_FALSE(mid.refines(fine));
}

TEST(SetPartition, RefinesIsReflexive) {
  for (const auto& p : all_partitions(5)) EXPECT_TRUE(p.refines(p));
}

TEST(SetPartition, MeetIsGreatestLowerBound) {
  auto a = SetPartition::from_blocks({{0, 1}, {2, 3}}, 4);
  auto b = SetPartition::from_blocks({{0, 2}, {1, 3}}, 4);
  auto m = a.meet(b);
  EXPECT_EQ(m, SetPartition::discrete(4));
}

TEST(SetPartition, JoinIsLeastUpperBound) {
  auto a = SetPartition::from_blocks({{0, 1}, {2}, {3}}, 4);
  auto b = SetPartition::from_blocks({{1, 2}, {0}, {3}}, 4);
  auto j = a.join(b);
  EXPECT_EQ(j, SetPartition::from_blocks({{0, 1, 2}, {3}}, 4));
}

// Lattice laws, checked exhaustively on Pi_4 (15 x 15 pairs).
TEST(SetPartition, LatticeLawsOnPi4) {
  const auto all = all_partitions(4);
  for (const auto& a : all) {
    for (const auto& b : all) {
      auto m = a.meet(b);
      auto j = a.join(b);
      EXPECT_TRUE(m.refines(a));
      EXPECT_TRUE(m.refines(b));
      EXPECT_TRUE(a.refines(j));
      EXPECT_TRUE(b.refines(j));
      // Greatest lower bound / least upper bound against all candidates.
      for (const auto& c : all) {
        if (c.refines(a) && c.refines(b)) {
          EXPECT_TRUE(c.refines(m));
        }
        if (a.refines(c) && b.refines(c)) {
          EXPECT_TRUE(j.refines(c));
        }
      }
      // Commutativity.
      EXPECT_EQ(m, b.meet(a));
      EXPECT_EQ(j, b.join(a));
    }
  }
}

TEST(SetPartition, AbsorptionLaws) {
  const auto all = all_partitions(4);
  for (const auto& a : all) {
    for (const auto& b : all) {
      EXPECT_EQ(a.meet(a.join(b)), a);
      EXPECT_EQ(a.join(a.meet(b)), a);
    }
  }
}

// The partition lattice is famously NOT distributive (paper, Section III).
TEST(SetPartition, NotDistributive) {
  const auto all = all_partitions(3);
  bool found_violation = false;
  for (const auto& a : all)
    for (const auto& b : all)
      for (const auto& c : all) {
        auto lhs = a.meet(b.join(c));
        auto rhs = a.meet(b).join(a.meet(c));
        if (lhs != rhs) found_violation = true;
      }
  EXPECT_TRUE(found_violation);
}

TEST(SetPartition, MergeBlocks) {
  auto p = SetPartition::discrete(4);
  auto merged = p.merge_blocks(1, 3);
  EXPECT_EQ(merged, SetPartition::from_blocks({{0}, {1, 3}, {2}}, 4));
  EXPECT_THROW(p.merge_blocks(0, 0), InvalidArgument);
  EXPECT_THROW(p.merge_blocks(0, 9), InvalidArgument);
}

TEST(SetPartition, CoveredByDetectsCovers) {
  auto fine = SetPartition::discrete(3);
  auto cover = SetPartition::from_blocks({{0, 1}, {2}}, 3);
  auto top = SetPartition::indiscrete(3);
  EXPECT_TRUE(fine.covered_by(cover));
  EXPECT_FALSE(fine.covered_by(top));   // two ranks up
  EXPECT_FALSE(cover.covered_by(fine));  // wrong direction
}

TEST(SetPartition, UpwardCoversCountAndValidity) {
  for (const auto& p : all_partitions(5)) {
    auto ups = p.upward_covers();
    const std::size_t b = p.num_blocks();
    EXPECT_EQ(ups.size(), b * (b - 1) / 2);
    for (const auto& u : ups) {
      EXPECT_TRUE(p.covered_by(u));
      EXPECT_EQ(u.rank(), p.rank() + 1);
    }
  }
}

TEST(SetPartition, DownwardCoversValidity) {
  for (const auto& p : all_partitions(5)) {
    for (const auto& d : p.downward_covers()) {
      EXPECT_TRUE(d.covered_by(p));
      EXPECT_EQ(d.rank() + 1, p.rank());
    }
  }
}

TEST(SetPartition, UpDownCoversAreConsistent) {
  // q in upward_covers(p) <=> p in downward_covers(q), over all of Pi_4.
  const auto all = all_partitions(4);
  for (const auto& p : all) {
    for (const auto& q : p.upward_covers()) {
      auto downs = q.downward_covers();
      EXPECT_NE(std::find(downs.begin(), downs.end(), p), downs.end());
    }
  }
}

TEST(SetPartition, TypeIsCompositionOfN) {
  auto p = SetPartition::from_blocks({{0}, {1, 2}, {3}}, 4);
  EXPECT_EQ(p.type(), (std::vector<std::size_t>{1, 2, 1}));
}

TEST(SetPartition, ToStringMatchesPaperNotation) {
  EXPECT_EQ(SetPartition::discrete(4).to_string(), "1/2/3/4");
  EXPECT_EQ(SetPartition::indiscrete(4).to_string(), "1234");
  EXPECT_EQ(SetPartition::from_blocks({{0, 3}, {1}, {2}}, 4).to_string(), "14/2/3");
}

TEST(SetPartition, ToStringWideElements) {
  auto p = SetPartition::from_blocks({{0, 10}, {1, 2, 3, 4, 5, 6, 7, 8, 9}}, 11);
  // Elements >= 10 are comma separated.
  EXPECT_NE(p.to_string().find("11"), std::string::npos);
}

TEST(SetPartition, HashConsistentWithEquality) {
  SetPartitionHash h;
  auto a = SetPartition::from_blocks({{0, 1}, {2}}, 3);
  auto b = SetPartition::from_assignment({5, 5, 9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(h(a), h(b));
}

TEST(Enumerator, CountsMatchBellNumbers) {
  for (std::size_t n = 1; n <= 9; ++n) {
    PartitionEnumerator e(n);
    std::size_t count = 0;
    while (e.has_next()) {
      e.next();
      ++count;
    }
    EXPECT_EQ(count, bell_number(static_cast<unsigned>(n))) << "n=" << n;
  }
}

TEST(Enumerator, ProducesDistinctCanonicalPartitions) {
  PartitionEnumerator e(6);
  std::unordered_set<SetPartition, SetPartitionHash> seen;
  while (e.has_next()) {
    SetPartition p = e.next();
    EXPECT_TRUE(seen.insert(p).second) << "duplicate " << p.to_string();
  }
  EXPECT_EQ(seen.size(), bell_number(6));
}

TEST(Enumerator, ResetRestarts) {
  PartitionEnumerator e(3);
  auto first = e.next();
  e.next();
  e.reset();
  EXPECT_EQ(e.next(), first);
}

TEST(Enumerator, ExhaustedThrows) {
  PartitionEnumerator e(1);
  e.next();
  EXPECT_FALSE(e.has_next());
  EXPECT_THROW(e.next(), InvalidArgument);
}

TEST(AllPartitions, Pi4HasFifteenElements) {
  // Fig. 2 of the paper: the lattice of partitions of a 4-element set has
  // exactly 15 elements.
  EXPECT_EQ(all_partitions(4).size(), 15u);
}

TEST(AllPartitions, RejectsHugeN) { EXPECT_THROW(all_partitions(15), InvalidArgument); }

TEST(PartitionsWithBlocks, MatchesStirlingNumbers) {
  for (std::size_t n = 2; n <= 7; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      EXPECT_EQ(partitions_with_blocks(n, k).size(),
                stirling2(static_cast<unsigned>(n), static_cast<unsigned>(k)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(PartitionsOfType, MatchesPaperTypeClasses) {
  // Type 121 over a 4-set: 1/23/4 and 1/24/3 (Table I row for {2}).
  auto p121 = partitions_of_type({1, 2, 1});
  std::set<std::string> names;
  for (const auto& p : p121) names.insert(p.to_string());
  EXPECT_EQ(names, (std::set<std::string>{"1/23/4", "1/24/3"}));

  // Type 31: 123/4, 124/3, 134/2.
  auto p31 = partitions_of_type({3, 1});
  names.clear();
  for (const auto& p : p31) names.insert(p.to_string());
  EXPECT_EQ(names, (std::set<std::string>{"123/4", "124/3", "134/2"}));

  // Type 22: 12/34, 13/24, 14/23.
  auto p22 = partitions_of_type({2, 2});
  names.clear();
  for (const auto& p : p22) names.insert(p.to_string());
  EXPECT_EQ(names, (std::set<std::string>{"12/34", "13/24", "14/23"}));
}

TEST(PartitionsOfType, EveryResultHasRequestedType) {
  auto ps = partitions_of_type({2, 1, 3});
  for (const auto& p : ps) {
    EXPECT_EQ(p.type(), (std::vector<std::size_t>{2, 1, 3}));
  }
}

TEST(PartitionsOfType, CountFormulaMatchesEnumeration) {
  const std::vector<std::vector<std::size_t>> cases = {
      {1, 1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1}, {2, 2}, {1, 3}, {3, 1}, {4},
      {2, 3}, {3, 2}, {1, 2, 2}, {2, 2, 2}};
  for (const auto& type : cases) {
    EXPECT_EQ(partitions_of_type(type).size(), count_partitions_of_type(type))
        << "type failed";
  }
}

TEST(PartitionsOfType, TypeClassesTileTheLattice) {
  // Summing class sizes over all compositions of n gives Bell(n).
  for (unsigned n = 2; n <= 8; ++n) {
    std::uint64_t total = 0;
    // Compositions of n <-> subsets of the n-1 gaps.
    for (std::uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
      std::vector<std::size_t> comp;
      std::size_t run = 1;
      for (unsigned g = 0; g < n - 1; ++g) {
        if (mask & (1u << g)) {
          comp.push_back(run);
          run = 1;
        } else {
          ++run;
        }
      }
      comp.push_back(run);
      total += count_partitions_of_type(comp);
    }
    EXPECT_EQ(total, bell_number(n)) << "n=" << n;
  }
}

}  // namespace
}  // namespace iotml::comb
