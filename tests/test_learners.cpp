#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "learners/decision_tree.hpp"
#include "learners/knn.hpp"
#include "learners/logistic.hpp"
#include "learners/naive_bayes.hpp"
#include "learners/pattern_ensemble.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::learners {
namespace {

using data::Dataset;
using data::make_phone_fleet;
using data::make_phone_fleet_paper;

/// Numeric 2-blob dataset in Dataset form.
Dataset numeric_blobs(std::size_t n, double separation, Rng& rng) {
  data::Samples s = data::make_blobs(n, 2, separation, 1.0, rng);
  Dataset ds;
  auto& x0 = ds.add_numeric_column("x0");
  auto& x1 = ds.add_numeric_column("x1");
  for (std::size_t i = 0; i < n; ++i) {
    x0.push_numeric(s.x(i, 0));
    x1.push_numeric(s.x(i, 1));
  }
  ds.set_labels(s.y);
  return ds;
}

/// Randomly knock out cells.
void inject_missing(Dataset& ds, double rate, Rng& rng) {
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    for (std::size_t r = 0; r < ds.rows(); ++r) {
      if (rng.bernoulli(rate)) ds.column(f).set_missing(r);
    }
  }
}

// ---- DecisionTree ------------------------------------------------------------

TEST(DecisionTreeTest, LearnsPhoneFleetConcept) {
  Rng rng(1);
  Dataset train = make_phone_fleet(400, 0.0, rng);
  Dataset test = make_phone_fleet(200, 0.0, rng);
  DecisionTree tree;
  tree.fit(train);
  EXPECT_GE(tree.accuracy(test), 0.98);
}

TEST(DecisionTreeTest, LearnsNumericThresholds) {
  Rng rng(2);
  Dataset train = numeric_blobs(300, 6.0, rng);
  Dataset test = numeric_blobs(150, 6.0, rng);
  DecisionTree tree;
  tree.fit(train);
  EXPECT_GE(tree.accuracy(test), 0.95);
}

TEST(DecisionTreeTest, PerfectFitOnPaperTable) {
  Dataset ds = make_phone_fleet_paper();
  DecisionTree tree(DecisionTreeParams{.min_samples_leaf = 1});
  tree.fit(ds);
  EXPECT_DOUBLE_EQ(tree.accuracy(ds), 1.0);
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  Rng rng(3);
  Dataset train = numeric_blobs(200, 2.0, rng);
  DecisionTree stump(DecisionTreeParams{.max_depth = 1});
  stump.fit(train);
  EXPECT_LE(stump.depth(), 2u);  // root + leaves
  EXPECT_LE(stump.node_count(), 4u);
}

TEST(DecisionTreeTest, HandlesMissingAtTrainAndTest) {
  Rng rng(4);
  Dataset train = make_phone_fleet(500, 0.0, rng);
  Dataset test = make_phone_fleet(200, 0.0, rng);
  inject_missing(train, 0.15, rng);
  inject_missing(test, 0.15, rng);
  for (auto policy : {MissingSplitPolicy::kMajorityBranch, MissingSplitPolicy::kOwnBranch}) {
    DecisionTree tree(DecisionTreeParams{.missing = policy});
    tree.fit(train);
    EXPECT_GE(tree.accuracy(test), 0.75);
  }
}

TEST(DecisionTreeTest, UnseenCategoryFallsBackToMajority) {
  Dataset train;
  auto& c = train.add_categorical_column("c");
  c.push_category("a");
  c.push_category("a");
  c.push_category("b");
  c.push_category("b");
  train.set_labels({1, 1, 0, 0});
  DecisionTree tree(DecisionTreeParams{.min_samples_leaf = 1});
  tree.fit(train);

  Dataset test;
  auto& tc = test.add_categorical_column("c");
  tc.push_category("zzz");  // never seen
  test.set_labels({0});
  EXPECT_NO_THROW(tree.predict_row(test, 0));
}

TEST(DecisionTreeTest, Validation) {
  DecisionTree tree;
  Dataset unlabeled;
  unlabeled.add_numeric_column("x").push_numeric(1.0);
  EXPECT_THROW(tree.fit(unlabeled), InvalidArgument);
  EXPECT_THROW(DecisionTree(DecisionTreeParams{.max_depth = 0}), InvalidArgument);
  Dataset probe = make_phone_fleet_paper();
  EXPECT_THROW(tree.predict_row(probe, 0), InvalidArgument);  // not fitted
}

// ---- NaiveBayes ------------------------------------------------------------

TEST(NaiveBayesTest, LearnsPhoneFleet) {
  Rng rng(5);
  Dataset train = make_phone_fleet(600, 0.0, rng);
  Dataset test = make_phone_fleet(300, 0.0, rng);
  NaiveBayes nb;
  nb.fit(train);
  EXPECT_GE(nb.accuracy(test), 0.8);  // NB can't express the conjunction exactly
}

TEST(NaiveBayesTest, LearnsGaussianBlobs) {
  Rng rng(6);
  Dataset train = numeric_blobs(300, 6.0, rng);
  Dataset test = numeric_blobs(150, 6.0, rng);
  NaiveBayes nb;
  nb.fit(train);
  EXPECT_GE(nb.accuracy(test), 0.95);
}

TEST(NaiveBayesTest, MissingCellsAreMarginalized) {
  Rng rng(7);
  Dataset train = numeric_blobs(300, 6.0, rng);
  Dataset test = numeric_blobs(150, 6.0, rng);
  inject_missing(test, 0.3, rng);
  NaiveBayes nb;
  nb.fit(train);
  EXPECT_GE(nb.accuracy(test), 0.85);
}

TEST(NaiveBayesTest, LogPosteriorOrdersClasses) {
  Rng rng(8);
  Dataset train = numeric_blobs(200, 8.0, rng);
  NaiveBayes nb;
  nb.fit(train);
  for (std::size_t r = 0; r < 20; ++r) {
    auto lp = nb.log_posterior(train, r);
    ASSERT_EQ(lp.size(), 2u);
    EXPECT_EQ(lp[1] > lp[0] ? 1 : 0, nb.predict_row(train, r));
  }
}

TEST(NaiveBayesTest, Validation) {
  EXPECT_THROW(NaiveBayes(0.0), InvalidArgument);
  NaiveBayes nb;
  Dataset probe = make_phone_fleet_paper();
  EXPECT_THROW(nb.log_posterior(probe, 0), InvalidArgument);  // not fitted
}

// ---- LogisticRegression ------------------------------------------------------

TEST(LogisticTest, SeparatesBlobs) {
  Rng rng(9);
  Dataset train = numeric_blobs(300, 5.0, rng);
  Dataset test = numeric_blobs(150, 5.0, rng);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_GE(lr.accuracy(test), 0.95);
}

TEST(LogisticTest, ProbabilityIsCalibratedDirectionally) {
  Rng rng(10);
  Dataset train = numeric_blobs(400, 6.0, rng);
  LogisticRegression lr;
  lr.fit(train);
  double p_sum_1 = 0.0, p_sum_0 = 0.0;
  std::size_t n1 = 0, n0 = 0;
  for (std::size_t r = 0; r < train.rows(); ++r) {
    const double p = lr.probability(train, r);
    if (train.label(r) == 1) {
      p_sum_1 += p;
      ++n1;
    } else {
      p_sum_0 += p;
      ++n0;
    }
  }
  EXPECT_GT(p_sum_1 / n1, 0.85);
  EXPECT_LT(p_sum_0 / n0, 0.15);
}

TEST(LogisticTest, MissingImputedWithTrainMean) {
  Rng rng(11);
  Dataset train = numeric_blobs(300, 6.0, rng);
  Dataset test = numeric_blobs(150, 6.0, rng);
  inject_missing(test, 0.25, rng);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_GE(lr.accuracy(test), 0.8);
}

TEST(LogisticTest, RejectsMulticlass) {
  Dataset ds;
  auto& x = ds.add_numeric_column("x");
  for (int i = 0; i < 6; ++i) x.push_numeric(i);
  ds.set_labels({0, 1, 2, 0, 1, 2});
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(ds), InvalidArgument);
}

// ---- Knn ----------------------------------------------------------------------

TEST(KnnTest, ClassifiesBlobs) {
  Rng rng(12);
  Dataset train = numeric_blobs(300, 5.0, rng);
  Dataset test = numeric_blobs(150, 5.0, rng);
  KnnClassifier knn(5);
  knn.fit(train);
  EXPECT_GE(knn.accuracy(test), 0.95);
}

TEST(KnnTest, MixedTypesAndMissing) {
  Rng rng(13);
  Dataset train = make_phone_fleet(400, 0.0, rng);
  Dataset test = make_phone_fleet(150, 0.0, rng);
  inject_missing(test, 0.2, rng);
  KnnClassifier knn(7);
  knn.fit(train);
  EXPECT_GE(knn.accuracy(test), 0.8);
}

TEST(KnnTest, KOneMemorizesTrainingSet) {
  Rng rng(14);
  Dataset train = numeric_blobs(100, 1.0, rng);
  KnnClassifier knn(1);
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.accuracy(train), 1.0);
}

TEST(KnnTest, Validation) {
  EXPECT_THROW(KnnClassifier(0), InvalidArgument);
}

// ---- PatternEnsemble -------------------------------------------------------------

ClassifierFactory tree_factory() {
  return [] { return std::make_unique<DecisionTree>(); };
}

TEST(PatternEnsembleTest, CompleteDataBehavesLikeSingleModel) {
  Rng rng(15);
  Dataset train = make_phone_fleet(400, 0.0, rng);
  Dataset test = make_phone_fleet(150, 0.0, rng);
  PatternEnsemble ens(tree_factory());
  ens.fit(train);
  EXPECT_EQ(ens.num_models(), 1u);  // one availability pattern: everything
  EXPECT_GE(ens.accuracy(test), 0.95);
}

TEST(PatternEnsembleTest, TrainsOneModelPerPattern) {
  Rng rng(16);
  Dataset train = make_phone_fleet(800, 0.0, rng);
  inject_missing(train, 0.2, rng);
  PatternEnsemble ens(tree_factory(), 10);
  ens.fit(train);
  // 3 columns -> up to 7 nonempty patterns (at least several hit min rows).
  EXPECT_GE(ens.num_models(), 3u);
  EXPECT_LE(ens.num_models(), 7u);
  EXPECT_GT(ens.total_training_rows(), train.rows());  // rows shared across models
}

TEST(PatternEnsembleTest, BeatsNothingOnMissingTest) {
  Rng rng(17);
  Dataset train = make_phone_fleet(900, 0.0, rng);
  Dataset test = make_phone_fleet(300, 0.0, rng);
  inject_missing(train, 0.25, rng);
  inject_missing(test, 0.25, rng);
  PatternEnsemble ens(tree_factory(), 8);
  ens.fit(train);
  EXPECT_GE(ens.accuracy(test), 0.8);
}

TEST(PatternEnsembleTest, FallbackToSubPattern) {
  Rng rng(18);
  Dataset train = make_phone_fleet(500, 0.0, rng);
  PatternEnsemble ens(tree_factory());
  ens.fit(train);  // only the full pattern exists

  Dataset test = make_phone_fleet(100, 0.0, rng);
  inject_missing(test, 0.5, rng);
  // Full-pattern model cannot serve most rows; fallback must not throw.
  EXPECT_NO_THROW(ens.predict(test));
  EXPECT_GT(ens.fallback_rate(), 0.0);
}

TEST(PatternEnsembleTest, Validation) {
  EXPECT_THROW(PatternEnsemble(nullptr), InvalidArgument);
  EXPECT_THROW(PatternEnsemble(tree_factory(), 0), InvalidArgument);
}

}  // namespace
}  // namespace iotml::learners
