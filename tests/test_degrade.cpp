// The graceful-degradation contract end to end (DESIGN.md §16): L0 byte
// identity against pre-ladder goldens, row-conservation closure at every
// pinned ladder level, hysteresis stability across chaos burst boundaries,
// and the load-storm scenario that compresses device flush schedules.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "approx/degradation.hpp"
#include "sim/fleet.hpp"
#include "sim/report.hpp"
#include "util/error.hpp"

namespace iotml::sim {
namespace {

// The exact config the pre-ladder goldens were generated from (seed code,
// before src/approx existed): compound chaos over an ack fleet with
// checkpoints and store-and-forward. Do not change it — the goldens pin the
// bytes this config produced before the ladder landed.
FleetConfig golden_config() {
  FleetConfig cfg;
  cfg.devices = 20;
  cfg.edges = 2;
  cfg.duration_s = 40.0;
  cfg.seed = 9001;
  cfg.channel.mode = net::ChannelMode::kAckRetry;
  cfg.checkpoint_interval_s = 2.0;
  cfg.device_buffer_rows = 4096;
  cfg.chaos.partitions = 1.0;
  cfg.chaos.partition_mean_s = 4.0;
  cfg.chaos.loss_bursts = 1.0;
  cfg.chaos.burst_mean_s = 3.0;
  cfg.chaos.corruption_storms = 1.0;
  cfg.chaos.storm_mean_s = 3.0;
  return cfg;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string joined_event_log(const FleetSim& sim) {
  std::string out;
  for (const std::string& line : sim.event_log()) {
    out += line;
    out += '\n';
  }
  return out;
}

// (d) A run with degradation compiled in but disabled must reproduce the
// pre-ladder FleetReport JSON and event log byte-for-byte. These goldens
// were generated from the seed tree; IOTML_UPDATE_GOLDEN exists for an
// *intentional* report-format change only.
TEST(DegradeGolden, DisabledRunMatchesPreLadderBytes) {
  FleetSim sim(golden_config());
  const FleetReport report = sim.run();
  const std::string json = report.to_json();
  const std::string events = joined_event_log(sim);

  const std::string report_path =
      std::string(IOTML_GOLDEN_DIR) + "/fleet_report_l0.json";
  const std::string events_path =
      std::string(IOTML_GOLDEN_DIR) + "/fleet_events_l0.log";
  const char* update = std::getenv("IOTML_UPDATE_GOLDEN");  // NOLINT(concurrency-mt-unsafe)
  if (update != nullptr && update[0] == '1') {
    std::ofstream(report_path, std::ios::binary) << json;
    std::ofstream(events_path, std::ios::binary) << events;
    GTEST_SKIP() << "goldens rewritten";
  }
  const std::string golden_json = read_file(report_path);
  const std::string golden_events = read_file(events_path);
  ASSERT_FALSE(golden_json.empty())
      << "missing golden file; regenerate with IOTML_UPDATE_GOLDEN=1";
  EXPECT_EQ(json, golden_json);
  EXPECT_EQ(events, golden_events);
}

// (d) continued: enabling the ladder pinned at L0 may add the degradation
// block to the report, but the *event log* — the run's behavior — must stay
// byte-identical: no new events, no extra draws, no changed wire byte.
TEST(DegradeGolden, L0PinnedRunMatchesPreLadderEventLog) {
  FleetConfig cfg = golden_config();
  cfg.degrade.enabled = true;
  cfg.degrade.pin_level = 0;
  FleetSim sim(cfg);
  const FleetReport report = sim.run();

  const std::string golden_events =
      read_file(std::string(IOTML_GOLDEN_DIR) + "/fleet_events_l0.log");
  ASSERT_FALSE(golden_events.empty());
  EXPECT_EQ(joined_event_log(sim), golden_events);

  // Every window answered exactly; the ladder never moved.
  EXPECT_TRUE(report.rows_conserved());
  EXPECT_EQ(report.degradation.rows_sampled_out, 0u);
  EXPECT_EQ(report.degradation.rows_approx, 0u);
  EXPECT_GT(report.degradation.windows_exact, 0u);
  EXPECT_EQ(report.degradation.transitions_up, 0u);
  for (const EdgeDegradeTimeline& tl : report.degradation.edges) {
    EXPECT_EQ(tl.final_level, 0);
    EXPECT_TRUE(tl.transitions.empty());
  }
  // The same rows landed as in the disabled run (golden pins 2035).
  EXPECT_EQ(report.rows_delivered, 2035u);
}

// (c) The conservation ledger must close at every rung: pinned L1 sheds
// sampled-out rows, pinned L2/L3 shed whole windows, and every shed row has
// to land in rows_sampled_out — never vanish.
TEST(DegradeLedger, ConservationClosesAtEveryPinnedLevel) {
  for (int pin = 0; pin <= 3; ++pin) {
    FleetConfig cfg = golden_config();
    cfg.degrade.enabled = true;
    cfg.degrade.pin_level = pin;
    FleetSim sim(cfg);
    const FleetReport report = sim.run();
    EXPECT_TRUE(report.rows_conserved()) << "pin level " << pin;
    EXPECT_EQ(report.degradation.pin_level, pin);
    if (pin == 0) {
      EXPECT_EQ(report.degradation.rows_sampled_out, 0u);
    } else {
      EXPECT_GT(report.degradation.rows_sampled_out, 0u) << "pin level " << pin;
    }
    if (pin == 1) {
      EXPECT_GT(report.degradation.windows_sampled, 0u);
      EXPECT_GT(report.degradation.ci_windows, 0u);
      // Something sampled still reaches the core.
      EXPECT_GT(report.rows_delivered, 0u);
    }
    if (pin >= 2) {
      // Sketch/summary levels answer windows locally: summaries go up,
      // rows do not.
      EXPECT_GT(report.degradation.summaries_sent, 0u) << "pin level " << pin;
      EXPECT_EQ(report.rows_delivered, 0u) << "pin level " << pin;
    }
    if (pin == 2) {
      EXPECT_GT(report.degradation.windows_sketch, 0u);
      EXPECT_GT(report.degradation.ci_windows, 0u);
      EXPECT_GT(report.degradation.summaries_delivered, 0u);
    }
    if (pin == 3) {
      EXPECT_GT(report.degradation.windows_summary, 0u);
    }
  }
}

// Pinned L1's confidence intervals must actually bound the realized error.
// The >= 90% coverage gate is statistical and lives in bench_degrade, where
// a run yields 16-64 windows; this golden fleet yields only a handful, and
// a single legitimate 95%-CI miss would swing the rate by 25 points. Here
// we assert the mechanism (every window ledgered with a nonzero-width CI)
// and a floor that one honest miss cannot break.
TEST(DegradeLedger, SampledWindowsCarryCoveringIntervals) {
  FleetConfig cfg = golden_config();
  cfg.degrade.enabled = true;
  cfg.degrade.pin_level = 1;
  FleetSim sim(cfg);
  const FleetReport report = sim.run();
  const DegradationLedger& d = report.degradation;
  ASSERT_GT(d.ci_windows, 0u);
  EXPECT_GE(d.coverage(), 0.7);
  EXPECT_GT(d.mean_half_width(), 0.0);
  // Realized error stays commensurate with the advertised widths: even a
  // missed window must miss by a sliver, not a bias.
  EXPECT_LT(d.max_abs_error, 4.0 * d.mean_half_width());
  ASSERT_FALSE(d.windows.empty());
  for (const WindowEstimate& w : d.windows) {
    EXPECT_EQ(w.level, 1);
    EXPECT_LE(w.rows_used, w.rows_window);
    EXPECT_GT(w.rows_used, 0u);
  }
}

// Determinism: the ladder's sampling draws from a manifest-pinned stream,
// so two free-running degraded runs are byte-identical.
TEST(DegradeLedger, FreeRunningLadderIsDeterministic) {
  FleetConfig cfg = golden_config();
  cfg.degrade.enabled = true;
  cfg.channel.queue_capacity = 2;  // make backpressure actually bite
  cfg.chaos.load_storms = 1.0;
  cfg.chaos.load_storm_mean_s = 6.0;
  cfg.chaos.load_storm_factor = 4.0;
  FleetSim a(cfg);
  FleetSim b(cfg);
  const FleetReport ra = a.run();
  const FleetReport rb = b.run();
  EXPECT_EQ(joined_event_log(a), joined_event_log(b));
  EXPECT_EQ(ra.to_json(), rb.to_json());
  EXPECT_EQ(degradation_to_json(ra.degradation), degradation_to_json(rb.degradation));
}

// (a) No level flapping across chaos burst boundaries: however violent the
// compound chaos + load storm schedule, an escalation is never followed by
// a de-escalation earlier than the hysteresis dwell, and the calm tail
// walks every edge back to L0 with the ledger still closed.
TEST(DegradeLadder, NoFlappingAcrossChaosBursts) {
  FleetConfig cfg = golden_config();
  cfg.duration_s = 60.0;
  cfg.degrade.enabled = true;
  cfg.channel.queue_capacity = 2;
  cfg.degrade.dead_letter_rate_ref = 0.25;
  // Bands tight enough that the compound schedule actually walks the ladder
  // (default bands only move on extreme fleets; this test needs transitions).
  cfg.degrade.thresholds.up = {0.2, 0.6, 1.2};
  cfg.degrade.thresholds.down = {0.1, 0.4, 0.9};
  cfg.degrade.thresholds.dwell_s = 3.0;
  cfg.chaos.load_storms = 5.0;
  cfg.chaos.load_storm_mean_s = 8.0;
  cfg.chaos.load_storm_factor = 6.0;
  FleetSim sim(cfg);
  const FleetReport report = sim.run();
  const DegradationLedger& d = report.degradation;

  EXPECT_TRUE(report.rows_conserved());
  EXPECT_GT(report.faults.load_storms, 0u);
  // The scenario must actually exercise the ladder, or this test is vacuous.
  ASSERT_GT(d.transitions_up, 0u);

  const double dwell = cfg.degrade.thresholds.dwell_s;
  for (const EdgeDegradeTimeline& tl : d.edges) {
    // Acceptance: every edge ends the run back at L0.
    EXPECT_EQ(tl.final_level, 0) << "edge " << tl.edge;
    for (std::size_t i = 0; i + 1 < tl.transitions.size(); ++i) {
      const DegradeTransitionEntry& cur = tl.transitions[i];
      const DegradeTransitionEntry& next = tl.transitions[i + 1];
      EXPECT_GE(next.t_s, cur.t_s);
      if (next.to < next.from) {
        // A de-escalation needs a full dwell of calm after the previous
        // move, whichever direction that move went.
        EXPECT_GE(next.t_s - cur.t_s, dwell - 1e-9)
            << "edge " << tl.edge << " flapped at t=" << next.t_s;
      }
    }
    // Per-level time books close over the run + settle horizon.
    double total = 0.0;
    for (double t : tl.time_at_level_s) total += t;
    EXPECT_GT(total, cfg.duration_s - 1e-9);
  }

  // Backpressure gauges populated for every edge.
  ASSERT_EQ(report.faults.edge_gauges.size(), cfg.edges);
  bool any_pressure = false;
  for (const BackpressureGauge& g : report.faults.edge_gauges) {
    if (g.uplink_in_flight_highwater > 0 || g.device_in_flight_highwater > 0) {
      any_pressure = true;
    }
  }
  EXPECT_TRUE(any_pressure);
}

// (satellite 2) The load-storm scenario schedules compressed flush chains:
// storm-flush events appear on the log, the fault ledger counts the storm,
// and rows still conserve. With load_storms = 0 nothing changes — that leg
// is pinned by the golden tests above.
TEST(DegradeLadder, LoadStormCompressesFlushSchedule) {
  FleetConfig cfg = golden_config();
  cfg.chaos = {};  // storms only, no other chaos
  cfg.chaos.load_storms = 1.0;
  cfg.chaos.load_storm_mean_s = 8.0;
  cfg.chaos.load_storm_factor = 4.0;
  FleetSim sim(cfg);
  const FleetReport report = sim.run();
  EXPECT_TRUE(report.rows_conserved());
  EXPECT_GT(report.faults.load_storms, 0u);
  bool storm_flush_seen = false;
  for (const std::string& line : sim.event_log()) {
    if (line.find("storm-flush") != std::string::npos) {
      storm_flush_seen = true;
      break;
    }
  }
  EXPECT_TRUE(storm_flush_seen);

  // Storms compress the uplink schedule: at factor 4 the same windows ship
  // as more, smaller messages than the calm baseline.
  FleetConfig calm = golden_config();
  calm.chaos = {};
  FleetSim base(calm);
  const FleetReport calm_report = base.run();
  EXPECT_GT(report.messages_sent, calm_report.messages_sent);
  EXPECT_EQ(report.rows_delivered + report.rows_lost +
                report.faults.rows_buffer_evicted,
            calm_report.rows_delivered + calm_report.rows_lost +
                calm_report.faults.rows_buffer_evicted);
}

// Config validation: nonsense degrade settings must be rejected up front.
TEST(DegradeConfigCheck, RejectsNonsense) {
  FleetConfig cfg = golden_config();
  cfg.degrade.enabled = true;
  cfg.degrade.sample_rate = 0.0;
  EXPECT_THROW(FleetSim{cfg}, InvalidArgument);
  cfg = golden_config();
  cfg.degrade.enabled = true;
  cfg.degrade.pin_level = 4;
  EXPECT_THROW(FleetSim{cfg}, InvalidArgument);
  cfg = golden_config();
  cfg.degrade.enabled = true;
  cfg.degrade.countmin_depth = 0;
  EXPECT_THROW(FleetSim{cfg}, InvalidArgument);
  cfg = golden_config();
  cfg.chaos.load_storms = 1.0;
  cfg.chaos.load_storm_factor = 1.0;  // must exceed 1
  EXPECT_THROW(FleetSim{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace iotml::sim
