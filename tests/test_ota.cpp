// The OTA delta-update subsystem: the patch codec and its pinned wire
// format, chunked resumable transfer, the device image store's
// commit-after-verification discipline, the canary rollout controller, and
// the epochal learning loop end-to-end under compound chaos — where a crash
// mid-patch must leave every device on a consistent, checksum-verified
// version.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ota/patch.hpp"
#include "ota/rollout.hpp"
#include "ota/transfer.hpp"
#include "ota/version.hpp"
#include "sim/fleet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::ota {
namespace {

// Two related images: v2 shifts a block, rewrites a run and appends a tail,
// the shape of consecutive compiled-model artifacts after a small retrain.
std::vector<std::uint8_t> image_v1() {
  std::vector<std::uint8_t> v;
  for (int i = 0; i < 300; ++i) v.push_back(static_cast<std::uint8_t>(i * 7 + 3));
  return v;
}

std::vector<std::uint8_t> image_v2() {
  std::vector<std::uint8_t> v = image_v1();
  for (int i = 40; i < 60; ++i) v[static_cast<std::size_t>(i)] = 0xAB;
  v.insert(v.begin() + 150, {1, 2, 3, 4, 5});
  for (int i = 0; i < 30; ++i) v.push_back(static_cast<std::uint8_t>(255 - i));
  return v;
}

// ---- Patch codec -------------------------------------------------------------

TEST(OtaPatch, DiffReconstructsTheTarget) {
  const auto base = image_v1();
  const auto target = image_v2();
  const Patch p = diff(base, target);
  EXPECT_FALSE(p.full_image());
  EXPECT_EQ(p.base_checksum, image_checksum(base));
  EXPECT_EQ(p.target_checksum, image_checksum(target));
  EXPECT_EQ(p.apply(base), target);
  // The delta exploits the shared content: far fewer literal bytes than the
  // target, which is the whole point of shipping patches.
  EXPECT_LT(p.literal_bytes(), target.size() / 4);
}

TEST(OtaPatch, FullImageIsThePatchAgainstEmptyBase) {
  const auto target = image_v2();
  const Patch p = diff({}, target);
  EXPECT_TRUE(p.full_image());
  EXPECT_EQ(p.base_checksum, kEmptyImageChecksum);
  EXPECT_EQ(p.literal_bytes(), target.size());
  EXPECT_EQ(p.apply({}), target);
}

TEST(OtaPatch, EncodeDecodeRoundTripsByteIdentically) {
  const Patch p = diff(image_v1(), image_v2());
  const std::vector<std::uint8_t> wire = p.encode();
  EXPECT_EQ(wire.size(), p.size_bytes());
  const Patch back = Patch::decode(wire);
  EXPECT_EQ(back.encode(), wire);
  EXPECT_EQ(back.apply(image_v1()), image_v2());
}

TEST(OtaPatch, DecodeRejectsTampering) {
  const std::vector<std::uint8_t> wire = diff(image_v1(), image_v2()).encode();
  // Flip one byte anywhere: the FNV trailer (or the magic) must catch it.
  for (const std::size_t at : {std::size_t{0}, std::size_t{9}, wire.size() / 2,
                               wire.size() - 1}) {
    std::vector<std::uint8_t> bad = wire;
    bad[at] ^= 0x40;
    EXPECT_THROW(Patch::decode(bad), InvalidArgument) << "flipped byte " << at;
  }
  std::vector<std::uint8_t> truncated = wire;
  truncated.resize(wire.size() - 3);
  EXPECT_THROW(Patch::decode(truncated), InvalidArgument);
  EXPECT_THROW(Patch::decode({}), InvalidArgument);
}

TEST(OtaPatch, ApplyRefusesWrongBaseAndNeverTearsSilently) {
  const Patch p = diff(image_v1(), image_v2());
  std::vector<std::uint8_t> wrong_base = image_v1();
  wrong_base[0] ^= 1;
  EXPECT_THROW(p.apply(wrong_base), InvalidArgument);
  EXPECT_THROW(p.apply({}), InvalidArgument);
}

// The wire format is pinned: these exact bytes must decode forever.
// Regenerate with IOTML_UPDATE_GOLDEN=1 after an intentional version bump.
TEST(OtaPatch, GoldenWireBytes) {
  const std::string path = std::string(IOTML_GOLDEN_DIR) + "/ota_patch.bin";
  const std::vector<std::uint8_t> wire = diff(image_v1(), image_v2()).encode();
  const char* update = std::getenv("IOTML_UPDATE_GOLDEN");  // NOLINT(concurrency-mt-unsafe)
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    for (std::uint8_t b : wire) out.put(static_cast<char>(b));
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file; regenerate with IOTML_UPDATE_GOLDEN=1";
  std::vector<std::uint8_t> golden((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  EXPECT_EQ(wire, golden)
      << "patch wire format drifted; if intentional, bump Patch::version "
         "and regenerate with IOTML_UPDATE_GOLDEN=1";
  EXPECT_EQ(Patch::decode(golden).apply(image_v1()), image_v2());
}

// ---- Chunked transfer --------------------------------------------------------

TEST(OtaTransfer, ChunksRoundTripInAnyOrder) {
  const std::vector<std::uint8_t> patch = diff(image_v1(), image_v2()).encode();
  const ChunkedPatch chunked(patch, 16, 7);
  ASSERT_GT(chunked.num_chunks(), 3u);
  EXPECT_EQ(chunked.total_wire_bytes(),
            patch.size() + chunked.num_chunks() * kChunkFramingBytes);

  PatchApplier applier;
  // Deliver in reverse order: reassembly must not care.
  for (std::size_t i = chunked.num_chunks(); i-- > 0;) {
    EXPECT_EQ(applier.accept(chunked.frame(i)), PatchApplier::Accept::kAccepted);
  }
  ASSERT_TRUE(applier.complete());
  EXPECT_EQ(applier.assemble(), patch);
}

TEST(OtaTransfer, CorruptChunkIsRejectedNotStaged) {
  const std::vector<std::uint8_t> patch = diff(image_v1(), image_v2()).encode();
  const ChunkedPatch chunked(patch, 32, 3);
  PatchApplier applier;
  ChunkFrame bad = chunked.frame(1);
  bad.payload[0] ^= 0xFF;
  EXPECT_EQ(applier.accept(bad), PatchApplier::Accept::kChecksumMismatch);
  EXPECT_FALSE(applier.started());  // nothing staged off a corrupt first frame
  // The clean frame still goes through afterwards.
  EXPECT_EQ(applier.accept(chunked.frame(1)), PatchApplier::Accept::kAccepted);
}

TEST(OtaTransfer, DuplicatesAreIdempotent) {
  const std::vector<std::uint8_t> patch = diff({}, image_v1()).encode();
  const ChunkedPatch chunked(patch, 64, 1);
  PatchApplier applier;
  EXPECT_EQ(applier.accept(chunked.frame(0)), PatchApplier::Accept::kAccepted);
  EXPECT_EQ(applier.accept(chunked.frame(0)), PatchApplier::Accept::kDuplicate);
  EXPECT_EQ(applier.verified_chunks(), 1u);
}

TEST(OtaTransfer, ShapeMismatchesAreRejected) {
  const std::vector<std::uint8_t> patch = diff({}, image_v1()).encode();
  const ChunkedPatch chunked(patch, 32, 5);
  const ChunkedPatch other(diff({}, image_v2()).encode(), 32, 6);
  PatchApplier applier;
  ASSERT_EQ(applier.accept(chunked.frame(0)), PatchApplier::Accept::kAccepted);
  // A frame from a different version/transfer shape must not mix in.
  EXPECT_EQ(applier.accept(other.frame(1)), PatchApplier::Accept::kShapeMismatch);
}

TEST(OtaTransfer, ResumesFromExactlyTheMissingChunks) {
  const std::vector<std::uint8_t> patch = diff(image_v1(), image_v2()).encode();
  const ChunkedPatch chunked(patch, 16, 9);
  PatchApplier applier;
  // Interruption: only even chunks arrive before the link dies.
  for (std::size_t i = 0; i < chunked.num_chunks(); i += 2) {
    applier.accept(chunked.frame(i));
  }
  ASSERT_FALSE(applier.complete());
  const std::vector<std::size_t> missing = applier.missing();
  ASSERT_FALSE(missing.empty());
  for (std::size_t i : missing) EXPECT_EQ(i % 2, 1u);  // exactly the odd ones
  for (std::size_t i : missing) applier.accept(chunked.frame(i));
  ASSERT_TRUE(applier.complete());
  EXPECT_TRUE(applier.missing().empty());
  EXPECT_EQ(applier.assemble(), patch);
}

TEST(OtaTransfer, ResetDiscardsStagedStateForReuse) {
  const std::vector<std::uint8_t> patch = diff({}, image_v1()).encode();
  const ChunkedPatch chunked(patch, 16, 2);
  PatchApplier applier;
  applier.accept(chunked.frame(0));
  applier.reset();
  EXPECT_FALSE(applier.started());
  // After the reset the applier accepts a different shape (the full-image
  // fall-back path reuses the same applier).
  const ChunkedPatch full(diff({}, image_v2()).encode(), 48, 3);
  for (std::size_t i = 0; i < full.num_chunks(); ++i) {
    EXPECT_EQ(applier.accept(full.frame(i)), PatchApplier::Accept::kAccepted);
  }
  EXPECT_TRUE(applier.complete());
}

// ---- Version chain and device image store ------------------------------------

TEST(OtaVersion, ChainTracksPromotedHeadsWithMonotoneIds) {
  VersionChain chain;
  EXPECT_EQ(chain.head_id(), 0u);
  EXPECT_EQ(chain.head_checksum(), kEmptyImageChecksum);
  const auto v1 = image_v1();
  const auto v2 = image_v2();
  chain.append(1, image_checksum(v1), static_cast<std::uint32_t>(v1.size()), 100);
  // Id 2 was a rolled-back candidate: never appended, the gap is the record.
  chain.append(3, image_checksum(v2), static_cast<std::uint32_t>(v2.size()), 40);
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.head_id(), 3u);
  EXPECT_EQ(chain.links()[1].base_checksum, image_checksum(v1));
  EXPECT_THROW(chain.append(3, 0, 0, 0), InvalidArgument);  // not monotone
  EXPECT_THROW(chain.append(0, 0, 0, 0), InvalidArgument);  // reserved id
  chain.retire_head();
  EXPECT_EQ(chain.head_id(), 1u);
}

TEST(OtaVersion, StoreCommitsOnlyVerifiedImages) {
  DeviceImageStore store;
  EXPECT_FALSE(store.provisioned());
  EXPECT_EQ(store.current_checksum(), kEmptyImageChecksum);
  const auto v1 = image_v1();
  EXPECT_THROW(store.commit(1, v1, image_checksum(v1) ^ 1), InvalidArgument);
  EXPECT_FALSE(store.provisioned());  // the failed commit changed nothing
  store.commit(1, v1, image_checksum(v1));
  EXPECT_TRUE(store.provisioned());
  EXPECT_EQ(store.current_id(), 1u);
  EXPECT_EQ(store.current_checksum(), image_checksum(v1));
}

TEST(OtaVersion, RollbackRestoresThePreviousBytesExactly) {
  DeviceImageStore store;
  const auto v1 = image_v1();
  const auto v2 = image_v2();
  EXPECT_THROW(store.rollback(), InvalidArgument);  // nothing to go back to
  store.commit(1, v1, image_checksum(v1));
  store.commit(2, v2, image_checksum(v2));
  EXPECT_EQ(store.current_id(), 2u);
  store.rollback();
  EXPECT_EQ(store.current_id(), 1u);
  EXPECT_EQ(store.current_image(), v1);  // byte-for-byte the promoted base
  // Roll forward again: the abandoned image was retained symmetrically.
  store.rollback();
  EXPECT_EQ(store.current_id(), 2u);
  EXPECT_EQ(store.current_image(), v2);
}

// ---- Rollout controller ------------------------------------------------------

TEST(OtaRollout, CanaryCohortIsSeededSortedAndClamped) {
  OtaConfig cfg;
  cfg.canary_fraction = 0.2;
  cfg.min_canary_devices = 2;
  Rng rng_a(42);
  Rng rng_b(42);
  const auto cohort = pick_canaries(50, cfg, rng_a);
  EXPECT_EQ(cohort, pick_canaries(50, cfg, rng_b));  // same seed, same cohort
  EXPECT_EQ(cohort.size(), 10u);
  for (std::size_t i = 1; i < cohort.size(); ++i) {
    EXPECT_LT(cohort[i - 1], cohort[i]);  // ascending, no duplicates
  }
  for (std::uint32_t d : cohort) EXPECT_LT(d, 50u);

  Rng rng_c(7);
  EXPECT_EQ(pick_canaries(3, cfg, rng_c).size(), 2u);  // floor at min_canary
  Rng rng_d(7);
  cfg.min_canary_devices = 10;
  EXPECT_EQ(pick_canaries(4, cfg, rng_d).size(), 4u);  // clamped to the fleet
}

TEST(OtaRollout, JudgePromotesWithinToleranceAndRejectsRegressions) {
  OtaConfig cfg;
  cfg.regression_tolerance = 0.02;
  // 3 devices, pooled: old 70/96, new 69/96 — a regression of ~1%, inside
  // tolerance, promotes.
  std::vector<CanaryProbe> probes = {{0, 32, 24, 23}, {3, 32, 23, 23}, {9, 32, 23, 23}};
  CanaryVerdict v = judge(5, 1, probes, cfg);
  EXPECT_EQ(v.devices_reporting, 3u);
  EXPECT_EQ(v.pooled_rows, 96u);
  EXPECT_TRUE(v.promoted);
  // New model collapses on one cohort member: pooled drop > tolerance.
  probes[0].correct_new = 4;
  v = judge(6, 1, probes, cfg);
  EXPECT_FALSE(v.promoted);
  EXPECT_LT(v.accuracy_new, v.accuracy_old - cfg.regression_tolerance);
}

TEST(OtaRollout, JudgeIsConservativeWithNoEvidence) {
  const CanaryVerdict v = judge(4, 2, {}, OtaConfig{});
  EXPECT_FALSE(v.promoted);  // unreachable cohort must not promote blind
  EXPECT_EQ(v.pooled_rows, 0u);
}

}  // namespace
}  // namespace iotml::ota

// ---- Epochal loop end-to-end -------------------------------------------------

namespace iotml::sim {
namespace {

FleetConfig ota_config(std::size_t devices, std::size_t edges, unsigned seed) {
  FleetConfig config;
  config.devices = devices;
  config.edges = edges;
  config.duration_s = 24.0;
  config.seed = seed;
  // Tight flush cadence: rows reach the core well before the first epoch
  // fires (at duration/4), so epoch 0 genuinely provisions.
  config.device_flush_s = 2.0;
  config.edge_flush_s = 3.0;
  config.ota.enabled = true;
  config.ota.epochs = 3;
  return config;
}

void enable_compound_chaos(FleetConfig& config) {
  config.faults.edge_crashes = 1.0;
  config.faults.edge_downtime_mean_s = 3.0;
  config.faults.device_churns = 5.0;
  config.faults.device_offtime_mean_s = 2.0;
  config.chaos.partitions = 1.0;
  config.chaos.partition_mean_s = 4.0;
  config.chaos.loss_bursts = 1.0;
  config.chaos.burst_drop_prob = 0.4;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_corrupt_prob = 0.1;
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.backoff_base_s = 0.05;
  config.channel.backoff_cap_s = 1.0;
  config.channel.max_attempts = 6;
  config.checkpoint_interval_s = 2.0;
  config.device_buffer_rows = 4096;
}

TEST(FleetOta, EpochalLoopProvisionsAndShipsDeltas) {
  FleetSim fleet(ota_config(20, 2, 1234));
  const FleetReport report = fleet.run();
  const OtaSummary& ota = report.deploy.ota;
  ASSERT_TRUE(ota.enabled);
  EXPECT_TRUE(report.rows_conserved());
  ASSERT_EQ(ota.epochs_log.size(), 3u);
  // Epoch 0 provisions the fleet; on a calm network every device converges
  // to the promoted head and verifies.
  EXPECT_EQ(ota.epochs_log[0].outcome, "provision");
  EXPECT_GE(ota.versions_published, 1u);
  EXPECT_TRUE(ota.all_devices_verified);
  EXPECT_EQ(ota.devices_unprovisioned, 0u);
  EXPECT_EQ(ota.devices_on_head, 20u);
  EXPECT_EQ(ota.devices_stuck, 0u);
  // The histogram accounts for every device.
  std::size_t histogram_total = 0;
  for (const auto& [version, count] : ota.version_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, 20u);
  // The whole point: epochal deltas cost less radio than naively
  // re-shipping the full image every epoch.
  EXPECT_GT(ota.full_broadcast_bytes, 0u);
  EXPECT_LT(ota.delta_downlink_bytes, ota.full_broadcast_bytes);
}

TEST(FleetOta, DeltaEpochsShipTheCheaperOfPatchAndImage) {
  FleetSim fleet(ota_config(20, 2, 1234));
  const FleetReport report = fleet.run();
  const OtaSummary& ota = report.deploy.ota;
  bool saw_delta_epoch = false;
  for (const OtaEpochEntry& e : ota.epochs_log) {
    if (e.outcome == "promote" || e.outcome == "rollback") {
      saw_delta_epoch = true;
      // The diff against the promoted head is always computed and ledgered,
      // even when the retrain restructured the tree so much that the delta
      // lost to the full image and was not shipped.
      EXPECT_GT(e.patch_bytes, 0u);
      EXPECT_GT(e.canary_devices, 0u);
      // Whichever payload won, what actually went over the wire per device
      // never exceeds the full-broadcast counterfactual's per-device cost.
      ASSERT_GT(e.canary_devices + e.devices_updated, 0u);
      EXPECT_LE(e.delta_downlink_bytes, e.full_broadcast_bytes)
          << "epoch " << e.epoch;
    }
  }
  EXPECT_TRUE(saw_delta_epoch)
      << "no epoch past provisioning built a canary rollout";
}

// The ISSUE acceptance scenario: a 100-device epochal OTA run under
// compound chaos (partition + edge crashes + device churn + loss bursts +
// corruption storm). Whatever the network does to the chunks — including a
// crash mid-patch — the run must end with the row ledger balanced and every
// device on a consistent, checksum-verified version: torn patches are
// structurally impossible.
TEST(FleetOta, CrashMidPatchLeavesEveryDeviceConsistent) {
  FleetConfig config = ota_config(100, 4, 99);
  enable_compound_chaos(config);
  FleetSim fleet(config);
  const FleetReport report = fleet.run();
  const OtaSummary& ota = report.deploy.ota;
  EXPECT_TRUE(report.rows_conserved());
  EXPECT_TRUE(ota.all_devices_verified);
  std::size_t histogram_total = 0;
  for (const auto& [version, count] : ota.version_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, 100u);
  // Chaos manifests as resume traffic, not corruption of installed images.
  EXPECT_GT(ota.chunks_sent, ota.chunks_delivered);
  EXPECT_GT(ota.resume_rounds, 0u);
  // The deploy ledger still shows the delta savings under fire.
  EXPECT_LT(ota.delta_downlink_bytes, ota.full_broadcast_bytes);
}

TEST(FleetOta, ReportIsDeterministicPerSeed) {
  FleetConfig config = ota_config(20, 2, 777);
  enable_compound_chaos(config);
  FleetSim fleet_a(config);
  FleetSim fleet_b(config);
  const std::string json_a = fleet_a.run().to_json();
  const std::string json_b = fleet_b.run().to_json();
  EXPECT_EQ(json_a, json_b);
  EXPECT_NE(json_a.find("\"ota\""), std::string::npos);
}

TEST(FleetOta, DisabledOtaLeavesTheLegacyReportShape) {
  FleetConfig config;
  config.devices = 8;
  config.edges = 2;
  config.duration_s = 10.0;
  config.seed = 5;
  FleetSim fleet(config);
  const FleetReport report = fleet.run();
  EXPECT_FALSE(report.deploy.ota.enabled);
  // No deploy, no OTA: the legacy report carries no deploy block at all.
  EXPECT_EQ(report.to_json().find("\"ota\""), std::string::npos);
}

}  // namespace
}  // namespace iotml::sim
