// The approximate-analytics toolkit behind the graceful-degradation ladder
// (DESIGN.md §16): seeded reservoir + stratified sampling, mergeable
// count-min and quantile sketches, normal-approximation confidence
// intervals, and the hysteresis controller that moves edges between levels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "approx/confidence.hpp"
#include "approx/degradation.hpp"
#include "approx/sample.hpp"
#include "approx/sketch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::approx {
namespace {

// ---- Reservoir sampling ----------------------------------------------------

TEST(Reservoir, RejectsZeroCapacity) {
  EXPECT_THROW(ReservoirSampler(0), InvalidArgument);
}

TEST(Reservoir, HoldsWholeStreamUnderCapacity) {
  ReservoirSampler res(8);
  Rng rng(1);  // rng-stream: test
  for (int i = 0; i < 5; ++i) res.offer(static_cast<double>(i), rng);
  EXPECT_EQ(res.seen(), 5u);
  ASSERT_EQ(res.sample().size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(res.sample()[i], static_cast<double>(i));
}

TEST(Reservoir, DeterministicPerSeedAndBounded) {
  auto run = [](std::uint64_t seed) {
    ReservoirSampler res(16);
    Rng rng(seed);  // rng-stream: test
    for (int i = 0; i < 1000; ++i) res.offer(static_cast<double>(i), rng);
    return res.sample();
  };
  const std::vector<double> a = run(42);
  const std::vector<double> b = run(42);
  const std::vector<double> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 16u);
}

// Every slot must be reachable: over many offers the reservoir cannot
// degenerate into only keeping the earliest values.
TEST(Reservoir, LateValuesDisplaceEarlyOnes) {
  ReservoirSampler res(4);
  Rng rng(7);  // rng-stream: test
  for (int i = 0; i < 4000; ++i) res.offer(static_cast<double>(i), rng);
  double newest = 0.0;
  for (double v : res.sample()) newest = std::max(newest, v);
  EXPECT_GT(newest, 1000.0);
}

// ---- Stratified selection --------------------------------------------------

TEST(Stratified, RejectsBadRate) {
  Rng rng(1);  // rng-stream: test
  const std::vector<Stratum> strata{{1, 0, 10}};
  EXPECT_THROW(stratified_indices(strata, 0.0, rng), InvalidArgument);
  EXPECT_THROW(stratified_indices(strata, 1.5, rng), InvalidArgument);
}

TEST(Stratified, EveryStratumKeepsAtLeastOneRow) {
  Rng rng(3);  // rng-stream: test
  // A chatty device (200 rows) next to quiet ones (2 rows each): at 10%
  // the quiet strata still surface in the sample.
  const std::vector<Stratum> strata{{1, 0, 200}, {2, 200, 2}, {3, 202, 2}};
  const std::vector<std::size_t> keep = stratified_indices(strata, 0.1, rng);
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
  bool quiet_a = false;
  bool quiet_b = false;
  for (std::size_t r : keep) {
    if (r >= 200 && r < 202) quiet_a = true;
    if (r >= 202) quiet_b = true;
  }
  EXPECT_TRUE(quiet_a);
  EXPECT_TRUE(quiet_b);
  EXPECT_EQ(keep.size(), 20u + 1u + 1u);  // ceil(0.1 * 200) + 1 + 1
}

TEST(Stratified, FullRateKeepsEverything) {
  Rng rng(9);  // rng-stream: test
  const std::vector<Stratum> strata{{1, 0, 5}, {2, 5, 7}};
  const std::vector<std::size_t> keep = stratified_indices(strata, 1.0, rng);
  std::vector<std::size_t> all(12);
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_EQ(keep, all);
}

TEST(Stratified, DeterministicPerSeed) {
  const std::vector<Stratum> strata{{1, 0, 40}, {2, 40, 60}};
  Rng a(11);  // rng-stream: test
  Rng b(11);  // rng-stream: test
  EXPECT_EQ(stratified_indices(strata, 0.3, a), stratified_indices(strata, 0.3, b));
}

// ---- Count-min sketch ------------------------------------------------------

TEST(CountMin, RejectsDegenerateShape) {
  EXPECT_THROW(CountMinSketch(0, 4, 1), InvalidArgument);
  EXPECT_THROW(CountMinSketch(64, 0, 1), InvalidArgument);
}

TEST(CountMin, NeverUndercounts) {
  CountMinSketch cm(32, 4, 99);
  for (std::uint64_t k = 0; k < 200; ++k) cm.add(k, k % 5 + 1);
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_GE(cm.estimate(k), k % 5 + 1);
  EXPECT_EQ(cm.total(), 200u * 3u);  // sum of (k % 5 + 1) over 200 keys
}

TEST(CountMin, ErrorBoundHolds) {
  CountMinSketch cm(64, 4, 7);
  for (std::uint64_t k = 0; k < 500; ++k) cm.add(k);
  const double slack = cm.epsilon() * static_cast<double>(cm.total());
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_LE(static_cast<double>(cm.estimate(k)), 1.0 + slack);
  }
}

TEST(CountMin, MergeIsOrderInsensitiveAndByteStable) {
  // Three disjoint shards merged in every order must produce identical
  // encoded bytes — the property that lets edges fold summaries associatively.
  auto shard = [](std::uint64_t lo, std::uint64_t hi) {
    CountMinSketch cm(32, 4, 123);
    for (std::uint64_t k = lo; k < hi; ++k) cm.add(k, 2);
    return cm;
  };
  std::vector<std::size_t> order{0, 1, 2};
  std::vector<std::vector<std::uint8_t>> images;
  do {
    const CountMinSketch shards[3] = {shard(0, 50), shard(50, 90), shard(90, 140)};
    CountMinSketch merged(32, 4, 123);
    for (std::size_t i : order) merged.merge(shards[i]);
    images.push_back(merged.encode());
  } while (std::next_permutation(order.begin(), order.end()));
  ASSERT_EQ(images.size(), 6u);
  for (std::size_t i = 1; i < images.size(); ++i) EXPECT_EQ(images[i], images[0]);

  // And the merged shards agree exactly with a single-sketch build.
  CountMinSketch whole(32, 4, 123);
  for (std::uint64_t k = 0; k < 140; ++k) whole.add(k, 2);
  EXPECT_EQ(images[0], whole.encode());
}

TEST(CountMin, MergeRejectsMismatchedShapeOrSeed) {
  CountMinSketch a(32, 4, 1);
  CountMinSketch b(16, 4, 1);
  CountMinSketch c(32, 4, 2);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(a.merge(c), InvalidArgument);
}

// ---- Quantile sketch -------------------------------------------------------

TEST(Quantile, SmallStreamIsExact) {
  QuantileSketch qs(64, 5);
  for (int i = 1; i <= 9; ++i) {
    qs.add(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  EXPECT_EQ(qs.count(), 9u);
  EXPECT_EQ(qs.retained(), 9u);
  EXPECT_DOUBLE_EQ(qs.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(qs.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(qs.quantile(1.0), 9.0);
}

TEST(Quantile, EmptySketchThrowsOnQuantile) {
  QuantileSketch qs(8, 1);
  EXPECT_THROW(qs.quantile(0.5), InvalidArgument);
}

TEST(Quantile, MergeIsOrderInsensitiveAndByteStable) {
  auto shard = [](std::uint64_t lo, std::uint64_t hi) {
    QuantileSketch qs(16, 77);
    for (std::uint64_t k = lo; k < hi; ++k) {
      qs.add(k, std::sin(static_cast<double>(k)));
    }
    return qs;
  };
  std::vector<std::size_t> order{0, 1, 2};
  std::vector<std::vector<std::uint8_t>> images;
  do {
    const QuantileSketch shards[3] = {shard(0, 40), shard(40, 100), shard(100, 130)};
    QuantileSketch merged(16, 77);
    for (std::size_t i : order) merged.merge(shards[i]);
    images.push_back(merged.encode());
  } while (std::next_permutation(order.begin(), order.end()));
  ASSERT_EQ(images.size(), 6u);
  for (std::size_t i = 1; i < images.size(); ++i) EXPECT_EQ(images[i], images[0]);

  QuantileSketch whole(16, 77);
  for (std::uint64_t k = 0; k < 130; ++k) {
    whole.add(k, std::sin(static_cast<double>(k)));
  }
  EXPECT_EQ(images[0], whole.encode());
  EXPECT_EQ(whole.count(), 130u);
  EXPECT_EQ(whole.retained(), 16u);
}

TEST(Quantile, MergeRejectsMismatchedCapacityOrSeed) {
  QuantileSketch a(16, 1);
  QuantileSketch b(8, 1);
  QuantileSketch c(16, 2);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(a.merge(c), InvalidArgument);
}

// The bottom-k sample tracks the stream distribution closely enough for
// quantile work: the sketch median of a linear ramp lands near the middle.
TEST(Quantile, MedianOfRampIsNearCenter) {
  QuantileSketch qs(128, 3);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    qs.add(k, static_cast<double>(k));
  }
  EXPECT_NEAR(qs.quantile(0.5), 5000.0, 1500.0);
}

// ---- Confidence intervals --------------------------------------------------

TEST(Confidence, RejectsSampleLargerThanPopulation) {
  EXPECT_THROW(mean_interval({1.0, 2.0, 3.0}, 2), InvalidArgument);
}

TEST(Confidence, EmptyAndSingletonDegenerate) {
  const Interval none = mean_interval({}, 100);
  EXPECT_EQ(none.n, 0u);
  EXPECT_DOUBLE_EQ(none.half_width, 0.0);
  const Interval one = mean_interval({4.5}, 100);
  EXPECT_DOUBLE_EQ(one.estimate, 4.5);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
}

TEST(Confidence, MatchesHandComputedInterval) {
  // sample {1,2,3,4,5}: mean 3, s^2 = 2.5, se = sqrt(0.5); N = 1000 fpc ~ 1.
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
  const Interval ci = mean_interval(sample, 1000);
  EXPECT_DOUBLE_EQ(ci.estimate, 3.0);
  const double se = std::sqrt(2.5 / 5.0);
  const double fpc = std::sqrt((1000.0 - 5.0) / 999.0);
  EXPECT_NEAR(ci.half_width, kZ95 * se * fpc, 1e-12);
  EXPECT_TRUE(ci.covers(3.0));
  EXPECT_TRUE(ci.covers(ci.lo()));
  EXPECT_FALSE(ci.covers(ci.hi() + 1e-9));
}

TEST(Confidence, CensusHasZeroWidth) {
  // Sampling the whole population leaves no sampling error: the finite
  // population correction collapses the interval to a point.
  const std::vector<double> sample{2.0, 4.0, 6.0, 8.0};
  const Interval ci = mean_interval(sample, 4);
  EXPECT_DOUBLE_EQ(ci.estimate, 5.0);
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);
}

TEST(Stratified, IndexListOverloadSamplesOnlyListedRows) {
  // The live-row overload must draw only from the listed indices, keep at
  // least one per non-empty list, and return a merged ascending result.
  const std::vector<std::vector<std::size_t>> strata{
      {3, 7, 11, 15}, {}, {20}, {31, 30}};
  Rng rng(99);
  const std::vector<std::size_t> keep = stratified_indices(strata, 0.3, rng);
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
  std::vector<std::size_t> allowed{3, 7, 11, 15, 20, 30, 31};
  for (std::size_t r : keep) {
    EXPECT_TRUE(std::find(allowed.begin(), allowed.end(), r) != allowed.end());
  }
  // ceil(0.3 * 4) = 2 from the first list, 1 from each non-empty singleton.
  EXPECT_EQ(keep.size(), 4u);
  EXPECT_TRUE(std::find(keep.begin(), keep.end(), 20u) != keep.end());
}

TEST(Confidence, StratifiedWeightsBeatPooledMeanUnderUnequalFractions) {
  // Two strata with very different sampling fractions: the big low-valued
  // stratum is sampled at 25%, the small high-valued one fully. A pooled
  // mean over all sampled values overweights the small stratum; the
  // self-weighted estimator recovers the true population mean.
  std::vector<StratumSample> strata(2);
  strata[0].population = 8;
  strata[0].values = {1.0, 1.0};       // stratum mean 1, weight 8/10
  strata[1].population = 2;
  strata[1].values = {11.0, 11.0};     // stratum mean 11, weight 2/10
  const Interval ci = stratified_mean_interval(strata);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.8 * 1.0 + 0.2 * 11.0);  // 3.0, not pooled 6.0
  EXPECT_EQ(ci.n, 4u);
  EXPECT_EQ(ci.population, 10u);
}

TEST(Confidence, StratifiedSingletonsBorrowPooledVariance) {
  // One stratum rich enough to estimate variance (pop 100, values 1..4,
  // s^2 = 5/3) plus a singleton (pop 50): the singleton's term uses the
  // pooled within-stratum variance with its own weight and fpc. Estimate
  // and width match the hand-computed stratified formula.
  std::vector<StratumSample> strata(2);
  strata[0].population = 100;
  strata[0].values = {1.0, 2.0, 3.0, 4.0};
  strata[1].population = 50;
  strata[1].values = {10.0};
  const Interval ci = stratified_mean_interval(strata);
  EXPECT_DOUBLE_EQ(ci.estimate, (100.0 / 150.0) * 2.5 + (50.0 / 150.0) * 10.0);
  const double s2 = 5.0 / 3.0;  // pooled: only the rich stratum has df
  const double var = (100.0 / 150.0) * (100.0 / 150.0) * 0.96 * s2 / 4.0 +
                     (50.0 / 150.0) * (50.0 / 150.0) * 0.98 * s2 / 1.0;
  EXPECT_NEAR(ci.half_width, kZ95 * std::sqrt(var), 1e-12);
}

TEST(Confidence, StratifiedAllSingletonsFallBackToSampleSpread) {
  // Every stratum a singleton (the storm-compressed window shape): no
  // within-stratum variance exists, so the width falls back to the spread
  // of the singleton values — conservative, never a zero-width point.
  std::vector<StratumSample> strata;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) strata.push_back({3, {v}});
  const Interval ci = stratified_mean_interval(strata);
  EXPECT_DOUBLE_EQ(ci.estimate, 3.5);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.covers(3.5));
}

TEST(Confidence, StratifiedCensusCollapsesToPoint) {
  std::vector<StratumSample> strata(2);
  strata[0].population = 3;
  strata[0].values = {1.0, 2.0, 3.0};
  strata[1].population = 2;
  strata[1].values = {4.0, 6.0};
  const Interval ci = stratified_mean_interval(strata);
  EXPECT_DOUBLE_EQ(ci.estimate, 3.2);  // (3*2 + 2*5) / 5
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);
  EXPECT_TRUE(ci.covers(3.2));
}

TEST(Confidence, StratifiedRejectsSampleLargerThanStratum) {
  std::vector<StratumSample> strata(1);
  strata[0].population = 1;
  strata[0].values = {1.0, 2.0};
  EXPECT_THROW(stratified_mean_interval(strata), InvalidArgument);
}

TEST(Confidence, StratifiedEmptyStrataAreExcluded) {
  std::vector<StratumSample> strata(3);
  strata[0].population = 5;  // no sampled values: excluded from the weights
  strata[1].population = 4;
  strata[1].values = {2.0, 2.0};
  strata[2].population = 0;
  const Interval ci = stratified_mean_interval(strata);
  EXPECT_DOUBLE_EQ(ci.estimate, 2.0);
  EXPECT_EQ(ci.population, 4u);
  EXPECT_EQ(ci.n, 2u);
}

// ---- Degradation controller ------------------------------------------------

DegradeThresholds tight_bands() {
  DegradeThresholds t;
  t.up = {1.0, 2.0, 3.0};
  t.down = {0.5, 1.5, 2.5};
  t.dwell_s = 2.0;
  return t;
}

DegradeSignals pressure(double p) {
  DegradeSignals s;
  s.queue_fraction = p;
  return s;
}

TEST(Degradation, RejectsDisorderedThresholds) {
  DegradeThresholds bad = tight_bands();
  bad.down[1] = bad.up[1];  // down must stay strictly under up
  EXPECT_THROW(DegradationController{bad}, InvalidArgument);
  DegradeThresholds flat = tight_bands();
  flat.up = {1.0, 1.0, 3.0};  // up must be strictly increasing
  EXPECT_THROW(DegradationController{flat}, InvalidArgument);
  EXPECT_THROW(DegradationController(tight_bands(), 4), InvalidArgument);
}

TEST(Degradation, PressureIsTheMaxSignal) {
  DegradeSignals s;
  s.queue_fraction = 0.2;
  s.dead_letter_rate = 0.9;
  s.sf_occupancy = 0.4;
  s.checkpoint_lag = 0.1;
  EXPECT_DOUBLE_EQ(s.pressure(), 0.9);
}

TEST(Degradation, EscalationJumpsToHighestCrossedBand) {
  DegradationController ctrl(tight_bands());
  EXPECT_EQ(ctrl.update(0.0, pressure(0.0)), DegradeLevel::kExact);
  // A single spike past up[2] jumps straight to L3, not one rung at a time.
  EXPECT_EQ(ctrl.update(1.0, pressure(5.0)), DegradeLevel::kSummary);
  ASSERT_EQ(ctrl.transitions().size(), 1u);
  EXPECT_EQ(ctrl.transitions()[0].from, DegradeLevel::kExact);
  EXPECT_EQ(ctrl.transitions()[0].to, DegradeLevel::kSummary);
}

TEST(Degradation, DeEscalationNeedsContinuousDwellPerRung) {
  DegradationController ctrl(tight_bands());
  ctrl.update(0.0, pressure(2.5));  // -> L2
  ASSERT_EQ(ctrl.level(), DegradeLevel::kSketch);
  // Calm at t=1 starts the dwell; t=2 is only 1s of calm — still L2.
  EXPECT_EQ(ctrl.update(1.0, pressure(0.1)), DegradeLevel::kSketch);
  EXPECT_EQ(ctrl.update(2.0, pressure(0.1)), DegradeLevel::kSketch);
  // t=3 completes the 2s dwell: down ONE level, and the next rung needs a
  // fresh dwell of its own.
  EXPECT_EQ(ctrl.update(3.0, pressure(0.1)), DegradeLevel::kSampled);
  EXPECT_EQ(ctrl.update(4.0, pressure(0.1)), DegradeLevel::kSampled);
  EXPECT_EQ(ctrl.update(6.0, pressure(0.1)), DegradeLevel::kExact);
}

TEST(Degradation, HysteresisBandBlocksFlapping) {
  // Pressure oscillating inside (down[0], up[0]) — above the de-escalation
  // band, below the escalation band — must not move the level in either
  // direction, however long it runs.
  DegradationController ctrl(tight_bands());
  ctrl.update(0.0, pressure(1.2));  // -> L1
  ASSERT_EQ(ctrl.level(), DegradeLevel::kSampled);
  for (int i = 1; i <= 50; ++i) {
    const double wobble = (i % 2 == 0) ? 0.6 : 0.95;
    EXPECT_EQ(ctrl.update(static_cast<double>(i), pressure(wobble)),
              DegradeLevel::kSampled);
  }
  EXPECT_EQ(ctrl.transitions().size(), 1u);
}

TEST(Degradation, InterruptedCalmRestartsTheDwell) {
  DegradationController ctrl(tight_bands());
  ctrl.update(0.0, pressure(1.2));  // -> L1
  ctrl.update(1.0, pressure(0.1));  // calm starts
  ctrl.update(2.5, pressure(0.8));  // pressure pops back inside the band
  // Calm again: the dwell restarts from t=3, so t=4 is not enough...
  ctrl.update(3.0, pressure(0.1));
  EXPECT_EQ(ctrl.update(4.0, pressure(0.1)), DegradeLevel::kSampled);
  // ...but t=5 is.
  EXPECT_EQ(ctrl.update(5.0, pressure(0.1)), DegradeLevel::kExact);
}

TEST(Degradation, PinnedControllerNeverMoves) {
  DegradationController ctrl(tight_bands(), 2);
  EXPECT_TRUE(ctrl.pinned());
  EXPECT_EQ(ctrl.level(), DegradeLevel::kSketch);
  EXPECT_EQ(ctrl.update(0.0, pressure(10.0)), DegradeLevel::kSketch);
  EXPECT_EQ(ctrl.update(10.0, pressure(0.0)), DegradeLevel::kSketch);
  EXPECT_TRUE(ctrl.transitions().empty());
}

TEST(Degradation, TimeAtLevelBooksClose) {
  DegradationController ctrl(tight_bands());
  ctrl.update(0.0, pressure(0.0));
  ctrl.update(4.0, pressure(2.5));   // 4s at L0, then L2
  ctrl.update(10.0, pressure(2.6));  // 6s at L2
  const auto& t = ctrl.time_at_level();
  EXPECT_NEAR(t[0], 4.0, 1e-12);
  EXPECT_NEAR(t[2], 6.0, 1e-12);
  EXPECT_NEAR(t[0] + t[1] + t[2] + t[3], 10.0, 1e-12);
}

TEST(Degradation, RejectsTimeGoingBackwards) {
  DegradationController ctrl(tight_bands());
  ctrl.update(5.0, pressure(0.0));
  EXPECT_THROW(ctrl.update(4.0, pressure(0.0)), InvalidArgument);
}

}  // namespace
}  // namespace iotml::approx
