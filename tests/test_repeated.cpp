// Tests for repeated games: trigger strategies and the folk-theorem
// patience threshold on the prisoner's-dilemma structure the pipeline game
// shares (mutual cooperation beats mutual defection, but defection tempts).

#include <gtest/gtest.h>

#include <cmath>

#include "game/repeated.hpp"
#include "util/error.hpp"

namespace iotml::game {
namespace {

/// Action 0 = cooperate, 1 = defect. Standard PD payoffs.
Bimatrix pd() {
  return {la::Matrix{{3, 0}, {5, 1}}, la::Matrix{{3, 5}, {0, 1}}};
}

TEST(Repeated, FixedStrategiesReproduceStagePayoffs) {
  Bimatrix g = pd();
  FixedAction coop(0), defect(1);
  RepeatedOutcome out = play_repeated(g, coop, defect, 10, 0.9);
  // (cooperate, defect) every round: row gets 0, column gets 5.
  EXPECT_DOUBLE_EQ(out.row_average, 0.0);
  EXPECT_DOUBLE_EQ(out.col_average, 5.0);
  // Discounted sum = 5 * (1 - 0.9^10) / (1 - 0.9).
  EXPECT_NEAR(out.col_discounted, 5.0 * (1.0 - std::pow(0.9, 10)) / 0.1, 1e-9);
}

TEST(Repeated, GrimVsGrimSustainsCooperation) {
  Bimatrix g = pd();
  GrimTrigger row(0, 1, 0), col(0, 1, 0);
  RepeatedOutcome out = play_repeated(g, row, col, 200, 0.95);
  for (std::size_t a : out.row_actions) EXPECT_EQ(a, 0u);
  for (std::size_t a : out.col_actions) EXPECT_EQ(a, 0u);
  EXPECT_DOUBLE_EQ(out.row_average, 3.0);
}

TEST(Repeated, GrimPunishesDefectorForever) {
  Bimatrix g = pd();
  GrimTrigger row(0, 1, 0);
  FixedAction defector(1);
  RepeatedOutcome out = play_repeated(g, row, defector, 50, 0.9);
  EXPECT_EQ(out.row_actions[0], 0u);  // starts cooperative
  for (std::size_t t = 1; t < 50; ++t) {
    EXPECT_EQ(out.row_actions[t], 1u);  // then punishes forever
  }
  // Defector's average approaches the mutual-defection payoff, not the
  // sucker's-exploitation payoff.
  EXPECT_NEAR(out.col_average, (5.0 + 49.0 * 1.0) / 50.0, 1e-9);
}

TEST(Repeated, TitForTatMirrorsAfterFirstRound) {
  Bimatrix g = pd();
  TitForTat row(0, [](std::size_t a) { return a; });
  // Alternating opponent.
  class Alternator final : public RepeatedStrategy {
   public:
    std::size_t act(const std::vector<std::size_t>& own,
                    const std::vector<std::size_t>&) override {
      return own.size() % 2;
    }
    std::string name() const override { return "alternator"; }
  } col;
  RepeatedOutcome out = play_repeated(g, row, col, 6, 0.9);
  // TFT plays: 0, then mirrors 0,1,0,1,0 -> 0,0,1,0,1,0.
  EXPECT_EQ(out.row_actions, (std::vector<std::size_t>{0, 0, 1, 0, 1, 0}));
}

TEST(Repeated, FolkTheoremThresholdPd) {
  // PD: deviation 5, cooperate 3, punish 1 -> delta* = (5-3)/(5-1) = 0.5.
  Bimatrix g = pd();
  const double threshold = grim_trigger_min_discount(g, {0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(threshold, 0.5);
}

TEST(Repeated, NoTemptationMeansZeroThreshold) {
  // A game where the target is already the row player's best response.
  Bimatrix g{la::Matrix{{5, 0}, {1, 0}}, la::Matrix{{5, 0}, {0, 1}}};
  EXPECT_DOUBLE_EQ(grim_trigger_min_discount(g, {0, 0}, {1, 1}), 0.0);
}

TEST(Repeated, UselessPunishmentMeansImpossible) {
  // Punishment payoff >= cooperation payoff: no patience level deters.
  Bimatrix g{la::Matrix{{3, 0}, {5, 4}}, la::Matrix{{3, 5}, {0, 4}}};
  EXPECT_DOUBLE_EQ(grim_trigger_min_discount(g, {0, 0}, {1, 1}), 1.0);
}

TEST(Repeated, PatientPlayersPreferCooperationImpatientDefect) {
  // Empirically verify the threshold: compare the discounted value of
  // grim-vs-grim cooperation against defecting on round 0 vs a grim
  // opponent, for deltas on both sides of 0.5.
  Bimatrix g = pd();
  const std::size_t rounds = 400;  // long horizon ~ infinite for delta<=0.9
  for (double delta : {0.3, 0.7}) {
    GrimTrigger coop_row(0, 1, 0), col1(0, 1, 0), col2(0, 1, 0);
    FixedAction defect_row(1);
    const double value_coop =
        play_repeated(g, coop_row, col1, rounds, delta).row_discounted;
    const double value_defect =
        play_repeated(g, defect_row, col2, rounds, delta).row_discounted;
    if (delta < 0.5) {
      EXPECT_GT(value_defect, value_coop) << "delta=" << delta;
    } else {
      EXPECT_GT(value_coop, value_defect) << "delta=" << delta;
    }
  }
}

TEST(Repeated, Validation) {
  Bimatrix g = pd();
  FixedAction a(0), b(0);
  EXPECT_THROW(play_repeated(g, a, b, 0, 0.9), InvalidArgument);
  EXPECT_THROW(play_repeated(g, a, b, 10, 1.0), InvalidArgument);
  FixedAction bad(7);
  EXPECT_THROW(play_repeated(g, bad, b, 10, 0.5), InvalidArgument);
  EXPECT_THROW(grim_trigger_min_discount(g, {9, 0}, {1, 1}), InvalidArgument);
}

}  // namespace
}  // namespace iotml::game
