// Coverage for corners not exercised elsewhere: file-based CSV I/O, game
// strategy decoding, dataset selection edge cases, kernel evaluator details,
// and report bookkeeping.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "game/sequential.hpp"
#include "kernels/krr.hpp"
#include "kernels/mkl.hpp"
#include "pipeline/stage.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iotml {
namespace {

TEST(CsvFile, RoundTripThroughDisk) {
  Rng rng(1);
  data::Dataset ds = data::make_phone_fleet(50, 0.1, rng);
  ds.column(1).set_missing(3);

  const std::string path =
      (std::filesystem::temp_directory_path() / "iotml_csv_test.csv").string();
  data::write_csv_file(ds, path);
  data::Dataset back = data::read_csv_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(back.rows(), ds.rows());
  ASSERT_EQ(back.num_columns(), ds.num_columns());
  EXPECT_TRUE(back.column(1).is_missing(3));
  EXPECT_EQ(back.labels(), ds.labels());
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    if (!ds.column(0).is_missing(r)) {
      EXPECT_EQ(back.column(0).category_label(r), ds.column(0).category_label(r));
    }
  }
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(data::read_csv_file("/nonexistent/dir/x.csv"), InvalidArgument);
  data::Dataset ds;
  ds.add_numeric_column("x").push_numeric(1.0);
  EXPECT_THROW(data::write_csv_file(ds, "/nonexistent/dir/x.csv"), InvalidArgument);
}

TEST(Sequential, DecodeStrategyEnumeratesAllCombinations) {
  // Two info sets with 2 and 3 actions -> 6 pure strategies, all distinct.
  auto leaf = [] { return game::GameNode::terminal(0, 0); };
  std::vector<std::unique_ptr<game::GameNode>> inner3;
  for (int i = 0; i < 3; ++i) inner3.push_back(leaf());
  std::vector<std::unique_ptr<game::GameNode>> kids;
  kids.push_back(game::GameNode::decision(0, "second", std::move(inner3)));
  kids.push_back(leaf());
  game::ExtensiveGame g(game::GameNode::decision(0, "first", std::move(kids)));

  EXPECT_EQ(g.num_pure_strategies(0), 6u);
  std::set<std::vector<std::size_t>> seen;
  for (std::size_t s = 0; s < 6; ++s) {
    auto decoded = g.decode_strategy(0, s);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_LT(decoded[0], 2u);
    EXPECT_LT(decoded[1], 3u);
    EXPECT_TRUE(seen.insert(decoded).second);
  }
  EXPECT_THROW(g.decode_strategy(0, 6), InvalidArgument);
  // Player 1 never moves: exactly one (empty) strategy.
  EXPECT_EQ(g.num_pure_strategies(1), 1u);
}

TEST(Sequential, NonZeroSumRejectedBySolver) {
  std::vector<std::unique_ptr<game::GameNode>> kids;
  kids.push_back(game::GameNode::terminal(1, 1));  // not zero-sum
  kids.push_back(game::GameNode::terminal(0, 0));
  game::ExtensiveGame g(game::GameNode::decision(0, "p0", std::move(kids)));
  EXPECT_THROW(g.solve_zero_sum_game(), InvalidArgument);
}

TEST(DatasetCorners, SelectRowsEmptyAndSelectColumnsReorder) {
  Rng rng(2);
  data::Dataset ds = data::make_phone_fleet(20, 0.0, rng);
  data::Dataset none = ds.select_rows({});
  EXPECT_EQ(none.rows(), 0u);
  EXPECT_EQ(none.num_columns(), ds.num_columns());

  data::Dataset reordered = ds.select_columns({2, 0});
  EXPECT_EQ(reordered.num_columns(), 2u);
  EXPECT_EQ(reordered.column(0).name(), "signal");
  EXPECT_EQ(reordered.column(1).name(), "battery");
  EXPECT_TRUE(reordered.has_labels());
}

TEST(DatasetCorners, SelectRowsOutOfRangeThrows) {
  Rng rng(3);
  data::Dataset ds = data::make_phone_fleet(5, 0.0, rng);
  EXPECT_THROW(ds.select_rows({7}), InvalidArgument);
  EXPECT_THROW(ds.select_columns({9}), InvalidArgument);
}

TEST(KrrCorners, PredictOneMatchesBatch) {
  Rng rng(4);
  la::Matrix x(30, 2);
  std::vector<double> y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = x(i, 0) - 2.0 * x(i, 1);
  }
  kernels::KernelRidge krr(std::make_unique<kernels::LinearKernel>(), 1e-6);
  krr.fit(x, y);
  const auto batch = krr.predict(x);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(krr.predict_one(x.row_span(i)), batch[i]);
  }
  EXPECT_LT(krr.training_rmse(), 1e-3);  // linear target, linear kernel
}

TEST(MklCorners, SingleKernelCombinationIsIdentity) {
  Rng rng(5);
  data::Samples s = data::make_blobs(20, 2, 2.0, 1.0, rng);
  la::Matrix g = kernels::gram(kernels::RbfKernel(0.5), s.x);
  la::Matrix combined = kernels::combine_grams({g}, {1.0});
  EXPECT_LT(combined.max_abs_diff(g), 1e-15);
  auto w = kernels::alignment_weights({g}, s.y);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(MklCorners, AllNoiseKernelsFallBackToUniform) {
  // Every kernel anti-aligned / unaligned: clipped weights are all ~0 and
  // the fallback must be uniform, not NaN.
  Rng rng(6);
  data::Samples s = data::make_blobs(40, 2, 0.0, 1.0, rng);  // no signal
  // Random labels guarantee near-zero alignment.
  for (std::size_t i = 0; i < s.size(); ++i) s.y[i] = static_cast<int>(rng.index(2));
  la::Matrix g1 = kernels::gram(kernels::RbfKernel(0.5), s.x);
  la::Matrix g2 = kernels::gram(kernels::LinearKernel(), s.x);
  auto w = kernels::alignment_weights({g1, g2}, s.y);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  EXPECT_GE(w[0], 0.0);
  EXPECT_GE(w[1], 0.0);
}

TEST(StringsCorners, RenderTableHandlesRaggedRows) {
  // Rows shorter than the header render with empty cells, no crash.
  std::string table = render_table({"A", "B", "C"}, {{"1"}, {"2", "3", "4"}});
  EXPECT_NE(table.find("| 1 |"), std::string::npos);
  EXPECT_NE(table.find("4"), std::string::npos);
}

TEST(PipelineCorners, ReportsClearedBetweenRuns) {
  Rng rng(7);
  pipeline::Pipeline p;
  p.add("noop", [](data::Dataset&, Rng&) { return 1.0; });
  data::Dataset ds;
  ds.add_numeric_column("x").push_numeric(1.0);
  p.run(ds, rng);
  p.run(ds, rng);
  EXPECT_EQ(p.reports().size(), 1u);  // not accumulated across runs
  EXPECT_DOUBLE_EQ(p.total_cost(), 1.0);
  EXPECT_DOUBLE_EQ(p.player_cost("nobody"), 0.0);
}

TEST(SamplesCorners, ToSamplesSubsetSelectsColumns) {
  Rng rng(8);
  data::Dataset ds = data::make_phone_fleet(10, 0.0, rng);
  data::Samples s = data::to_samples(ds, {2});
  EXPECT_EQ(s.dim(), 1u);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.y.size(), 10u);
}

}  // namespace
}  // namespace iotml
