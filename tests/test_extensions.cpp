// Tests for the extension features: variable-precision rough sets, the
// privacy perturbation stage, and categorical encoding utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "data/encoding.hpp"
#include "data/metrics.hpp"
#include "data/synthetic.hpp"
#include "learners/decision_tree.hpp"
#include "pipeline/privacy.hpp"
#include "roughsets/roughsets.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml {
namespace {

// ---- Variable-precision rough sets ---------------------------------------------

TEST(Vprs, BetaOneRecoversPawlak) {
  Rng rng(1);
  data::Dataset ds = data::make_phone_fleet(300, 0.1, rng);
  rough::IndiscernibilityRelation rel(ds, {0, 1});
  for (int c = 0; c < 2; ++c) {
    auto exact = rough::approximate_label(rel, ds.labels(), c);
    auto beta1 = rough::approximate_label_beta(rel, ds.labels(), c, 1.0);
    EXPECT_EQ(exact.lower_rows, beta1.lower_rows);
    EXPECT_EQ(exact.upper_rows, beta1.upper_rows);
  }
}

TEST(Vprs, ToleratesLabelNoise) {
  // One granule of 20 rows, 19 in the concept: Pawlak lower = empty,
  // beta = 0.9 lower = the whole granule.
  data::Dataset ds;
  auto& c = ds.add_categorical_column("c");
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    c.push_category("only");
    labels.push_back(i == 0 ? 0 : 1);
  }
  ds.set_labels(labels);
  rough::IndiscernibilityRelation rel(ds, {0});
  EXPECT_TRUE(rough::approximate_label(rel, ds.labels(), 1).lower_rows.empty());
  auto beta = rough::approximate_label_beta(rel, ds.labels(), 1, 0.9);
  EXPECT_EQ(beta.lower_rows.size(), 20u);
}

TEST(Vprs, LowerStillSubsetOfUpper) {
  Rng rng(2);
  data::Dataset ds = data::make_phone_fleet(400, 0.2, rng);
  for (double beta : {0.6, 0.75, 0.9, 1.0}) {
    rough::IndiscernibilityRelation rel(ds, {0, 1, 2});
    auto a = rough::approximate_label_beta(rel, ds.labels(), 1, beta);
    EXPECT_TRUE(std::includes(a.upper_rows.begin(), a.upper_rows.end(),
                              a.lower_rows.begin(), a.lower_rows.end()))
        << "beta=" << beta;
  }
}

TEST(Vprs, BetaDependencySurvivesNoiseWhereGammaDies) {
  Rng rng(3);
  data::Dataset ds = data::make_phone_fleet(800, 0.05, rng);
  rough::IndiscernibilityRelation rel(ds, {0, 1, 2});
  const double gamma = rough::dependency_degree(rel, ds.labels());
  const double gamma_beta = rough::dependency_degree_beta(rel, ds.labels(), 0.8);
  EXPECT_LT(gamma, 0.3);       // exact dependency collapses
  EXPECT_GT(gamma_beta, 0.8);  // beta-dependency sees the structure
}

TEST(Vprs, BetaMonotoneInBeta) {
  Rng rng(4);
  data::Dataset ds = data::make_phone_fleet(500, 0.1, rng);
  rough::IndiscernibilityRelation rel(ds, {0, 1});
  double previous = 2.0;
  for (double beta : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    const double value = rough::dependency_degree_beta(rel, ds.labels(), beta);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST(Vprs, Validation) {
  Rng rng(5);
  data::Dataset ds = data::make_phone_fleet(50, 0.0, rng);
  rough::IndiscernibilityRelation rel(ds, {0});
  EXPECT_THROW(rough::approximate_label_beta(rel, ds.labels(), 1, 0.5), InvalidArgument);
  EXPECT_THROW(rough::approximate_label_beta(rel, ds.labels(), 1, 1.1), InvalidArgument);
  EXPECT_THROW(rough::dependency_degree_beta(rel, ds.labels(), 0.4), InvalidArgument);
}

// ---- Privacy --------------------------------------------------------------------

TEST(Privacy, LaplaceNoiseMoments) {
  Rng rng(6);
  const double scale = 2.0;
  double sum = 0.0, sum_abs = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = pipeline::laplace_noise(scale, rng);
    sum += v;
    sum_abs += std::fabs(v);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_abs / n, scale, 0.05);  // E|Laplace(b)| = b
  EXPECT_DOUBLE_EQ(pipeline::laplace_noise(0.0, rng), 0.0);
}

TEST(Privacy, KeepProbabilityFormula) {
  // eps -> inf: always keep; eps -> 0: uniform over k.
  EXPECT_NEAR(pipeline::randomized_response_keep_probability(10.0, 3), 1.0, 1e-3);
  EXPECT_NEAR(pipeline::randomized_response_keep_probability(1e-6, 4), 0.25, 1e-3);
  EXPECT_THROW(pipeline::randomized_response_keep_probability(0.0, 3), InvalidArgument);
  EXPECT_THROW(pipeline::randomized_response_keep_probability(1.0, 1), InvalidArgument);
}

TEST(Privacy, NumericNoiseScalesWithBudget) {
  Rng rng(7);
  data::Samples s = data::make_blobs(600, 2, 4.0, 1.0, rng);
  data::Dataset loose = data::samples_to_dataset(s);
  data::Dataset tight = data::samples_to_dataset(s);
  Rng r1(1), r2(1);
  pipeline::privatize(loose, {.epsilon = 10.0, .sensitivity = {}, .randomize_categories = true},
                      r1);
  pipeline::privatize(tight, {.epsilon = 0.5, .sensitivity = {}, .randomize_categories = true},
                      r2);

  // Distortion vs the original, per budget.
  auto distortion = [&](const data::Dataset& noisy) {
    double total = 0.0;
    for (std::size_t f = 0; f < 2; ++f) {
      for (std::size_t r = 0; r < noisy.rows(); ++r) {
        total += std::fabs(noisy.column(f).numeric(r) - s.x(r, f));
      }
    }
    return total;
  };
  EXPECT_GT(distortion(tight), 5.0 * distortion(loose));
}

TEST(Privacy, MissingCellsStayMissing) {
  Rng rng(8);
  data::Dataset ds;
  auto& c = ds.add_numeric_column("x");
  c.push_numeric(1.0);
  c.push_missing();
  pipeline::privatize(ds, {.epsilon = 1.0, .sensitivity = {}, .randomize_categories = true}, rng);
  EXPECT_TRUE(ds.column(0).is_missing(1));
  EXPECT_FALSE(ds.column(0).is_missing(0));
}

TEST(Privacy, RandomizedResponseFlipRate) {
  Rng rng(9);
  data::Dataset ds = data::make_phone_fleet(4000, 0.0, rng);
  data::Dataset original = ds;
  pipeline::PrivacyReport report = pipeline::privatize(
      ds, {.epsilon = 1.0, .sensitivity = {}, .randomize_categories = true}, rng);
  EXPECT_GT(report.categorical_cells_flipped, 0u);
  // Expected flip fraction: (1 - keep) * (k-1)/k per cell with k = 3.
  const double keep = pipeline::randomized_response_keep_probability(1.0, 3);
  const double expected = (1.0 - keep) * (2.0 / 3.0);
  const double observed = static_cast<double>(report.categorical_cells_flipped) /
                          static_cast<double>(3 * ds.rows());
  EXPECT_NEAR(observed, expected, 0.02);
}

TEST(Privacy, AccuracyDegradesGracefullyWithBudget) {
  // The Section I.B claim: enforce privacy "without compromising analytics
  // quality" — true for generous budgets, false for tiny ones.
  Rng rng(10);
  data::Dataset train = data::make_phone_fleet(900, 0.0, rng);
  data::Dataset test = data::make_phone_fleet(400, 0.0, rng);
  double previous = 1.1;
  double at_large_eps = 0.0, at_small_eps = 0.0;
  const double budgets[] = {8.0, 1.0, 0.2};
  for (std::size_t bi = 0; bi < 3; ++bi) {
    const double eps = budgets[bi];
    data::Dataset noisy_train = train;
    Rng privacy_rng(3);
    pipeline::privatize(noisy_train,
                        {.epsilon = eps, .sensitivity = {}, .randomize_categories = true},
                        privacy_rng);
    learners::DecisionTree tree;
    tree.fit(noisy_train);
    const double acc = tree.accuracy(test);
    if (bi == 0) at_large_eps = acc;
    if (bi == 2) at_small_eps = acc;
    EXPECT_LE(acc, previous + 0.05);  // roughly monotone in budget
    previous = acc;
  }
  EXPECT_GT(at_large_eps, 0.9);
  EXPECT_LT(at_small_eps, at_large_eps);
}

// ---- Encoding --------------------------------------------------------------------

TEST(Encoding, OneHotShapesAndValues) {
  data::Dataset ds = data::make_phone_fleet_paper();
  data::Dataset encoded = data::one_hot_encode(ds);
  // battery: 3 categories, os: 3 categories -> 6 indicator columns.
  EXPECT_EQ(encoded.num_columns(), 6u);
  EXPECT_EQ(encoded.column(0).name(), "battery=AVERAGE");
  EXPECT_DOUBLE_EQ(encoded.column(0).numeric(0), 1.0);
  EXPECT_DOUBLE_EQ(encoded.column(0).numeric(1), 0.0);
  // Each row has exactly one 1 per original column.
  for (std::size_t r = 0; r < 4; ++r) {
    double battery_sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) battery_sum += encoded.column(c).numeric(r);
    EXPECT_DOUBLE_EQ(battery_sum, 1.0);
  }
  EXPECT_EQ(encoded.labels(), ds.labels());
}

TEST(Encoding, OneHotPreservesMissing) {
  data::Dataset ds;
  auto& c = ds.add_categorical_column("c");
  c.push_category("a");
  c.push_missing();
  c.push_category("b");
  data::Dataset encoded = data::one_hot_encode(ds);
  EXPECT_EQ(encoded.num_columns(), 2u);
  EXPECT_TRUE(encoded.column(0).is_missing(1));
  EXPECT_TRUE(encoded.column(1).is_missing(1));
}

TEST(Encoding, OneHotPassesNumericThrough) {
  data::Dataset ds;
  ds.add_numeric_column("x").push_numeric(3.5);
  ds.add_categorical_column("c").push_category("z");
  data::Dataset encoded = data::one_hot_encode(ds);
  EXPECT_EQ(encoded.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(encoded.column(0).numeric(0), 3.5);
}

TEST(Encoding, StandardizeLikeUsesReferenceStats) {
  Rng rng(11);
  data::Dataset train;
  auto& x = train.add_numeric_column("x");
  for (int i = 0; i < 500; ++i) x.push_numeric(rng.normal(10.0, 2.0));

  data::Dataset test;
  auto& tx = test.add_numeric_column("x");
  tx.push_numeric(10.0);  // the train mean -> ~0 after standardization
  tx.push_numeric(12.0);  // one train stddev above -> ~1

  data::standardize_like(test, train);
  EXPECT_NEAR(test.column(0).numeric(0), 0.0, 0.15);
  EXPECT_NEAR(test.column(0).numeric(1), 1.0, 0.15);
}

TEST(Encoding, StandardizeLikeValidation) {
  data::Dataset a, b;
  a.add_numeric_column("x").push_numeric(1.0);
  EXPECT_THROW(data::standardize_like(a, b), InvalidArgument);
}

TEST(Encoding, OneHotEnablesKernelLearnersOnCategoricalData) {
  // Integration: categorical fleet -> one-hot -> dense samples -> decision
  // tree sanity (the kernel path is exercised in test_core).
  Rng rng(12);
  data::Dataset train = data::make_phone_fleet(400, 0.0, rng);
  data::Dataset encoded = data::one_hot_encode(train);
  data::Samples s = data::to_samples(encoded);
  EXPECT_EQ(s.dim(), 9u);  // 3 columns x 3 categories
  EXPECT_EQ(s.size(), 400u);
  for (std::size_t r = 0; r < 10; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < s.dim(); ++c) row_sum += s.x(r, c);
    EXPECT_DOUBLE_EQ(row_sum, 3.0);  // one indicator per original column
  }
}

}  // namespace
}  // namespace iotml
