// The TDF telemetry wire stack: tagged-column frame encoding with a
// once-per-session schema negotiation, quantization to the wire's
// fixed-point resolution, the bounded on-device ring log, corruption
// rejection through the FNV trailer, and the FleetSim integration — where
// devices encode real frames, edges decode them back to rows, and the
// row-conservation ledger must still close under compound chaos.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/fleet.hpp"
#include "tdf/codec.hpp"
#include "tdf/device_log.hpp"
#include "tdf/schema.hpp"
#include "util/error.hpp"

namespace iotml::tdf {
namespace {

constexpr std::uint8_t kScale = 8;  // wire resolution 1/256

// A fixed device window shaped like the simulator's sensor data: timestamp
// ramp, two noisy-looking numeric channels with a hole each, and a
// categorical mode column. Values are multiples of 1/256, so quantization
// is the identity and the frame bytes are stable enough to pin as golden.
data::Dataset sensor_window() {
  data::Dataset ds;
  data::Column& ts = ds.add_numeric_column("timestamp");
  data::Column& temp = ds.add_numeric_column("temperature");
  data::Column& hum = ds.add_numeric_column("humidity");
  data::Column& mode = ds.add_categorical_column("mode");
  const double step = 1.0 / 256.0;
  for (int r = 0; r < 12; ++r) {
    ts.push_numeric(0.5 * r);
    if (r == 3) {
      temp.push_missing();
    } else {
      temp.push_numeric(22.0 + step * (13 * r % 37));
    }
    if (r == 7) {
      hum.push_missing();
    } else {
      hum.push_numeric(55.0 - step * (29 * r % 53));
    }
    mode.push_category(r % 3 == 0 ? "active" : r % 3 == 1 ? "idle" : "sleep");
  }
  return ds;
}

// ---- Schema ------------------------------------------------------------------

TEST(TdfSchema, InferRoundTripsThroughItsBlob) {
  const data::Dataset ds = sensor_window();
  const Schema schema = Schema::infer(ds, kScale);
  ASSERT_EQ(schema.size(), 4u);
  EXPECT_EQ(schema.fields()[0].name, "timestamp");
  EXPECT_EQ(schema.fields()[3].type, data::ColumnType::kCategorical);
  EXPECT_EQ(schema.fields()[1].scale_bits, kScale);

  util::ByteReader r(schema.encoded().data(), schema.encoded().size());
  const Schema back = Schema::decode(r, schema.encoded().size());
  EXPECT_EQ(back.id(), schema.id());
  EXPECT_EQ(back.encoded(), schema.encoded());
}

TEST(TdfSchema, RegistryIsIdempotent) {
  const Schema schema = Schema::infer(sensor_window(), kScale);
  SchemaRegistry reg;
  EXPECT_TRUE(reg.add(schema));
  EXPECT_FALSE(reg.add(schema));  // re-negotiation is a no-op
  EXPECT_EQ(reg.size(), 1u);
  ASSERT_NE(reg.find(schema.id()), nullptr);
  EXPECT_EQ(reg.find(schema.id())->encoded(), schema.encoded());
  EXPECT_EQ(reg.find(schema.id() ^ 1), nullptr);
}

// ---- Quantization ------------------------------------------------------------

TEST(TdfQuantize, IsIdempotentAndNormalizesNanToMissing) {
  data::Dataset ds;
  data::Column& v = ds.add_numeric_column("v");
  v.push_numeric(1.0 / 3.0);  // not representable at scale 8
  v.push_numeric(std::numeric_limits<double>::quiet_NaN());
  v.push_missing();
  quantize(ds, kScale);

  EXPECT_TRUE(ds.column(0).is_missing(1));  // NaN reading became missing
  EXPECT_TRUE(ds.column(0).is_missing(2));
  // The surviving cell is now an exact multiple of 2^-8: scaling by 256
  // yields an integer, and re-quantizing changes nothing.
  const double q = ds.column(0).numeric(0);
  const double scaled = std::ldexp(q, kScale);
  EXPECT_EQ(scaled, std::nearbyint(scaled));
  EXPECT_EQ(quantize_value(q, kScale), q);
  // Quantization error is bounded by half a step.
  EXPECT_NEAR(q, 1.0 / 3.0, 0.5 / 256.0);
}

// ---- Frame round-trip --------------------------------------------------------

TEST(TdfFrame, RoundTripReproducesRowsByteForByte) {
  data::Dataset ds = sensor_window();
  quantize(ds, kScale);
  const Schema schema = Schema::infer(ds, kScale);
  const std::vector<double> origins = {5.0, 10.0};
  const std::vector<std::uint8_t> wire =
      encode_frame(schema, ds, origins, 7, 3, /*include_schema=*/true);

  SchemaRegistry reg;
  const Frame frame = decode_frame(wire, reg);
  EXPECT_TRUE(frame.schema_inline);
  EXPECT_EQ(frame.schema_id, schema.id());
  EXPECT_EQ(frame.device_id, 7u);
  EXPECT_EQ(frame.seq, 3u);
  EXPECT_EQ(frame.origin_s, origins);
  EXPECT_EQ(reg.size(), 1u);  // the inline schema negotiated the session

  // Byte-for-byte row identity: the same checksum the simulator's edge
  // verifies on every decode.
  EXPECT_EQ(net::payload_checksum(frame.rows), net::payload_checksum(ds));

  // A follow-up frame referencing the schema by id decodes against the
  // registry the first frame populated — and costs the blob no more.
  const std::vector<std::uint8_t> next =
      encode_frame(schema, ds, origins, 7, 4, /*include_schema=*/false);
  EXPECT_EQ(wire.size() - next.size(), 2 + schema.encoded().size());
  const Frame f2 = decode_frame(next, reg);
  EXPECT_FALSE(f2.schema_inline);
  EXPECT_EQ(net::payload_checksum(f2.rows), net::payload_checksum(ds));
}

TEST(TdfFrame, RawBitsPathRoundTripsUnquantizedAndNonFiniteValues) {
  data::Dataset ds;
  data::Column& v = ds.add_numeric_column("v");
  v.push_numeric(1.0 / 3.0);  // forces the lossless raw-bits stream
  v.push_numeric(-0.0);
  v.push_numeric(std::numeric_limits<double>::infinity());
  v.push_numeric(6.02214076e23);
  v.push_missing();
  const Schema schema = Schema::infer(ds, kScale);
  SchemaRegistry reg;
  const Frame frame =
      decode_frame(encode_frame(schema, ds, {}, 1, 0, true), reg);
  EXPECT_EQ(net::payload_checksum(frame.rows), net::payload_checksum(ds));
}

TEST(TdfFrame, EmptyWindowAndAllMissingColumnsSurvive) {
  data::Dataset ds;
  ds.add_numeric_column("a");
  data::Column& b = ds.add_categorical_column("b");
  (void)b;
  const Schema schema = Schema::infer(ds, kScale);
  SchemaRegistry reg;
  const Frame empty =
      decode_frame(encode_frame(schema, ds, {}, 0, 0, true), reg);
  EXPECT_EQ(empty.rows.rows(), 0u);
  EXPECT_EQ(net::payload_checksum(empty.rows), net::payload_checksum(ds));

  data::Dataset holes;
  data::Column& h = holes.add_numeric_column("a");
  data::Column& c = holes.add_categorical_column("b");
  for (int i = 0; i < 4; ++i) {
    h.push_missing();
    c.push_missing();
  }
  const Schema s2 = Schema::infer(holes, kScale);
  const Frame f2 = decode_frame(encode_frame(s2, holes, {}, 0, 0, true), reg);
  EXPECT_EQ(net::payload_checksum(f2.rows), net::payload_checksum(holes));
}

TEST(TdfFrame, RefusesSchemaMismatchAndLabels) {
  data::Dataset ds = sensor_window();
  const Schema schema = Schema::infer(ds, kScale);
  data::Dataset renamed;
  renamed.add_numeric_column("not_timestamp");
  EXPECT_THROW(encode_frame(schema, renamed, {}, 0, 0, true), InvalidArgument);

  ds.set_labels(std::vector<int>(ds.rows(), 1));
  EXPECT_THROW(encode_frame(schema, ds, {}, 0, 0, true), InvalidArgument);
}

// ---- Corruption rejection ----------------------------------------------------

TEST(TdfFrame, RejectsTruncationAndEveryBitFlip) {
  data::Dataset ds = sensor_window();
  quantize(ds, kScale);
  const Schema schema = Schema::infer(ds, kScale);
  const std::vector<std::uint8_t> wire =
      encode_frame(schema, ds, {2.5}, 1, 0, true);
  ASSERT_TRUE(frame_intact(wire));

  SchemaRegistry reg;
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    std::vector<std::uint8_t> truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(frame_intact(truncated));
    EXPECT_THROW(decode_frame(truncated, reg), InvalidArgument);
  }
  // Flip one bit at every byte position: the FNV-1a32 trailer must catch
  // each one (including damage to the trailer itself).
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::vector<std::uint8_t> damaged = wire;
    damaged[i] ^= 0x20;
    EXPECT_FALSE(frame_intact(damaged)) << "flip at byte " << i;
    EXPECT_THROW(decode_frame(damaged, reg), InvalidArgument);
  }
}

TEST(TdfFrame, RefusesUnknownSchemaId) {
  data::Dataset ds = sensor_window();
  quantize(ds, kScale);
  const Schema schema = Schema::infer(ds, kScale);
  const std::vector<std::uint8_t> wire =
      encode_frame(schema, ds, {}, 1, 0, /*include_schema=*/false);
  SchemaRegistry empty_registry;
  EXPECT_THROW(decode_frame(wire, empty_registry), InvalidArgument);
}

// ---- Golden wire bytes -------------------------------------------------------

// The frame format is pinned: these exact bytes must decode forever.
// Regenerate with IOTML_UPDATE_GOLDEN=1 after an intentional version bump.
TEST(TdfFrame, GoldenWireBytes) {
  const std::string path = std::string(IOTML_GOLDEN_DIR) + "/tdf_frame.bin";
  data::Dataset ds = sensor_window();
  quantize(ds, kScale);
  const Schema schema = Schema::infer(ds, kScale);
  const std::vector<std::uint8_t> wire =
      encode_frame(schema, ds, {5.0, 10.0}, 7, 3, /*include_schema=*/true);
  const char* update = std::getenv("IOTML_UPDATE_GOLDEN");  // NOLINT(concurrency-mt-unsafe)
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    for (std::uint8_t b : wire) out.put(static_cast<char>(b));
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file; regenerate with IOTML_UPDATE_GOLDEN=1";
  std::vector<std::uint8_t> golden((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  EXPECT_EQ(wire, golden)
      << "TDF frame format drifted; if intentional, bump kFrameVersion and "
         "regenerate with IOTML_UPDATE_GOLDEN=1";
  SchemaRegistry reg;
  EXPECT_EQ(net::payload_checksum(decode_frame(golden, reg).rows),
            net::payload_checksum(ds));
}

// ---- Compression -------------------------------------------------------------

TEST(TdfFrame, BatchedFrameBeatsLegacyModelAtHalf) {
  data::Dataset ds = sensor_window();  // 12 rows >= the bench's 16-row floor
  quantize(ds, kScale);
  const Schema schema = Schema::infer(ds, kScale);
  const std::vector<std::uint8_t> wire =
      encode_frame(schema, ds, {5.0}, 1, 1, /*include_schema=*/false);
  const std::size_t tdf_bytes = net::kMessageHeaderBytes + wire.size();
  const std::size_t legacy_bytes =
      net::kMessageHeaderBytes + net::wire_size_bytes(ds) + 8;
  EXPECT_LE(2 * tdf_bytes, legacy_bytes)
      << "encoded " << tdf_bytes << " vs legacy " << legacy_bytes;
}

// ---- Legacy wire model (the satellite fix) -----------------------------------

TEST(TdfWireModel, NanCellsChargeExactlyLikeMissing) {
  data::Dataset with_nan;
  data::Column& a = with_nan.add_numeric_column("a");
  a.push_numeric(1.5);
  a.push_numeric(std::numeric_limits<double>::quiet_NaN());
  a.push_numeric(2.5);

  data::Dataset with_missing;
  data::Column& b = with_missing.add_numeric_column("a");
  b.push_numeric(1.5);
  b.push_missing();
  b.push_numeric(2.5);

  EXPECT_EQ(net::wire_size_bytes(with_nan), net::wire_size_bytes(with_missing));
}

// ---- Device ring log ---------------------------------------------------------

TEST(TdfDeviceLog, EvictsWholeFramesOldestFirst) {
  DeviceLog log(100);
  EXPECT_TRUE(log.append(40, 4).empty());
  EXPECT_TRUE(log.append(30, 3).empty());
  EXPECT_TRUE(log.append(30, 2).empty());
  EXPECT_EQ(log.bytes(), 100u);
  EXPECT_EQ(log.highwater_bytes(), 100u);

  // 50 more bytes: the two oldest frames must go, in age order.
  const std::vector<DeviceLog::Entry> evicted = log.append(50, 5);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].bytes, 40u);
  EXPECT_EQ(evicted[0].rows, 4u);
  EXPECT_EQ(evicted[1].bytes, 30u);
  EXPECT_EQ(evicted[1].rows, 3u);
  EXPECT_EQ(log.frames(), 2u);
  EXPECT_EQ(log.bytes(), 80u);
  EXPECT_EQ(log.frames_evicted(), 2u);
  EXPECT_EQ(log.rows_evicted(), 7u);
}

TEST(TdfDeviceLog, NewestFrameSurvivesEvenWhenOversized) {
  DeviceLog log(10);
  EXPECT_TRUE(log.append(8, 1).empty());
  const std::vector<DeviceLog::Entry> evicted = log.append(500, 9);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].bytes, 8u);
  EXPECT_EQ(log.frames(), 1u);  // the oversized frame is kept whole
  EXPECT_EQ(log.bytes(), 500u);
  EXPECT_EQ(log.rows(), 9u);

  const DeviceLog::Entry oldest = log.pop_oldest();
  EXPECT_EQ(oldest.rows, 9u);
  EXPECT_TRUE(log.empty());
  EXPECT_THROW(log.pop_oldest(), InvalidArgument);
  EXPECT_THROW(DeviceLog(0), InvalidArgument);
}

// ---- FleetSim integration ----------------------------------------------------

sim::FleetConfig telemetry_config(std::uint64_t seed) {
  sim::FleetConfig config;
  config.devices = 12;
  config.edges = 2;
  config.duration_s = 30.0;
  config.seed = seed;
  config.telemetry.enabled = true;
  return config;
}

TEST(TdfFleet, TelemetryLedgerClosesAndBeatsLegacyModel) {
  sim::FleetSim fleet(telemetry_config(7));
  const sim::FleetReport r = fleet.run();
  EXPECT_TRUE(r.rows_conserved());
  const sim::TelemetrySummary& t = r.telemetry;
  EXPECT_TRUE(t.enabled);
  EXPECT_TRUE(t.decode_identity_ok);
  EXPECT_GT(t.frames_sent, 0u);
  EXPECT_GT(t.frames_delivered, 0u);
  EXPECT_GT(t.rows_encoded, 0u);
  // Everything that arrived intact was decoded back to rows; what was not
  // delivered is covered by the drop/reject buckets.
  EXPECT_LE(t.rows_decoded, t.rows_encoded);
  EXPECT_GE(t.schema_negotiations, 1u);
  EXPECT_GT(t.schema_bytes, 0u);
  EXPECT_NE(t.schema_id, 0u);
  EXPECT_EQ(t.schema_fields, 4u);  // timestamp + 3 sensor channels
  // The tentpole's economics: real frames under half the abstract model.
  EXPECT_LT(2 * t.encoded_wire_bytes, t.legacy_wire_bytes);
  // The ledger shows up in the report JSON (and only when enabled).
  EXPECT_NE(r.to_json().find("\"telemetry\""), std::string::npos);
}

TEST(TdfFleet, LegacyRunsEmitNoTelemetryBlock) {
  sim::FleetConfig config = telemetry_config(7);
  config.telemetry.enabled = false;
  sim::FleetSim fleet(config);
  const sim::FleetReport r = fleet.run();
  EXPECT_FALSE(r.telemetry.enabled);
  EXPECT_EQ(r.to_json().find("\"telemetry\""), std::string::npos);
}

TEST(TdfFleet, SameSeedSameBytesDifferentSeedDifferentLog) {
  sim::FleetSim a(telemetry_config(11));
  sim::FleetSim b(telemetry_config(11));
  const std::string ja = a.run().to_json();
  const std::string jb = b.run().to_json();
  EXPECT_EQ(ja, jb);
  EXPECT_EQ(a.event_log(), b.event_log());

  sim::FleetSim c(telemetry_config(12));
  const sim::FleetReport rc = c.run();
  EXPECT_TRUE(rc.rows_conserved());
  EXPECT_NE(rc.to_json(), ja);
}

TEST(TdfFleet, CompoundChaosRepairsCorruptFramesAndConservesRows) {
  sim::FleetConfig config = telemetry_config(3);
  config.duration_s = 40.0;
  // The bench's compound-chaos posture: churn + storms over an ack-retry
  // transport with store-and-forward, so corrupt frames are detected and
  // repaired by retransmission instead of being lost.
  config.faults.device_churns = 5.0;
  config.faults.device_offtime_mean_s = 2.0;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_mean_s = 6.0;
  config.chaos.storm_corrupt_prob = 0.2;
  config.chaos.loss_bursts = 1.0;
  config.chaos.burst_drop_prob = 0.4;
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.backoff_base_s = 0.05;
  config.channel.backoff_cap_s = 1.0;
  config.channel.max_attempts = 6;
  config.device_buffer_rows = 4096;
  config.telemetry.device_log_bytes = 4096;

  sim::FleetSim fleet(config);
  const sim::FleetReport r = fleet.run();
  EXPECT_TRUE(r.rows_conserved());
  const sim::TelemetrySummary& t = r.telemetry;
  EXPECT_GT(t.frames_rejected, 0u) << "storm produced no corrupt frames";
  EXPECT_GT(t.frames_retransmitted, 0u) << "no frame was repaired by retry";
  EXPECT_TRUE(t.decode_identity_ok);
  // The ring log saw offline traffic.
  EXPECT_GT(t.log_highwater_bytes, 0u);
}

TEST(TdfFleet, FireAndForgetCorruptFramesAreRejectedNotScored) {
  sim::FleetConfig config = telemetry_config(3);
  config.duration_s = 40.0;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_mean_s = 8.0;
  config.chaos.storm_corrupt_prob = 0.3;
  sim::FleetSim fleet(config);
  const sim::FleetReport r = fleet.run();
  EXPECT_TRUE(r.rows_conserved());
  EXPECT_GT(r.telemetry.frames_rejected, 0u);
  EXPECT_GT(r.faults.rows_corrupt_rejected, 0u);
  // Rejected frames never reach an edge decode.
  EXPECT_EQ(r.telemetry.frames_delivered + r.telemetry.frames_rejected <=
                r.telemetry.frames_sent,
            true);
}

}  // namespace
}  // namespace iotml::tdf
