#include <gtest/gtest.h>

#include <cmath>

#include "data/metrics.hpp"
#include "data/synthetic.hpp"
#include "learners/naive_bayes.hpp"
#include "multiview/cca.hpp"
#include "multiview/cotraining.hpp"
#include "multiview/views.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::multiview {
namespace {

TEST(Views, ProjectExtractsColumns) {
  data::Samples s;
  s.x = la::Matrix{{1, 2, 3}, {4, 5, 6}};
  s.y = {0, 1};
  data::Samples p = project(s, {2, 0});
  EXPECT_DOUBLE_EQ(p.x(0, 0), 3);
  EXPECT_DOUBLE_EQ(p.x(0, 1), 1);
  EXPECT_DOUBLE_EQ(p.x(1, 0), 6);
  EXPECT_EQ(p.y, s.y);
  EXPECT_THROW(project(s, {}), InvalidArgument);
  EXPECT_THROW(project(s, {7}), InvalidArgument);
}

TEST(Views, ContiguousViewsCoverAllFeatures) {
  auto views = contiguous_views(7, 3);
  ASSERT_EQ(views.size(), 3u);
  std::size_t total = 0;
  for (const auto& v : views) total += v.size();
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(views[0].front(), 0u);
  EXPECT_EQ(views[2].back(), 6u);
}

TEST(Views, CorrelationOrderGroupsRedundantFeatures) {
  // Features 0 and 2 are copies; 1 is independent. 0 and 2 must end up
  // adjacent in correlation order.
  Rng rng(1);
  data::Samples s;
  s.x = la::Matrix(300, 3);
  for (std::size_t r = 0; r < 300; ++r) {
    const double v = rng.normal();
    s.x(r, 0) = v;
    s.x(r, 1) = rng.normal();
    s.x(r, 2) = v + rng.normal(0.0, 0.01);
  }
  auto order = correlation_order(s);
  ASSERT_EQ(order.size(), 3u);
  // Find positions of features 0 and 2.
  std::size_t p0 = 0, p2 = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (order[i] == 0) p0 = i;
    if (order[i] == 2) p2 = i;
  }
  EXPECT_EQ(std::max(p0, p2) - std::min(p0, p2), 1u);
}

TEST(Views, AbsCorrelationUnitDiagonal) {
  Rng rng(2);
  data::Samples s = data::make_blobs(100, 3, 2.0, 1.0, rng);
  la::Matrix corr = abs_correlation(s.x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(corr(i, i), 1.0, 1e-9);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(corr(i, j), 0.0);
      EXPECT_LE(corr(i, j), 1.0 + 1e-9);
    }
}

TEST(CoTraining, LearnsFromFewLabels) {
  Rng rng(3);
  // One draw (one concept) split into labeled / unlabeled / test.
  data::FacetedData fd = data::make_faceted_gaussian(
      600, {{2, 3.5, 1.0, true}, {2, 3.5, 1.0, true}}, rng);

  std::vector<std::size_t> labeled_idx, test_idx;
  for (std::size_t i = 0; i < 10; ++i) labeled_idx.push_back(i);
  for (std::size_t i = 400; i < 600; ++i) test_idx.push_back(i);
  data::Samples labeled = data::select_rows(fd.samples, labeled_idx);
  data::Samples test = data::select_rows(fd.samples, test_idx);

  la::Matrix unlabeled(390, fd.samples.dim());
  for (std::size_t r = 10; r < 400; ++r) {
    for (std::size_t c = 0; c < fd.samples.dim(); ++c) {
      unlabeled(r - 10, c) = fd.samples.x(r, c);
    }
  }

  CoTrainer co(fd.views[0], fd.views[1]);
  co.fit(labeled, unlabeled);
  EXPECT_GT(co.pseudo_labeled_count(), 20u);
  EXPECT_GE(co.accuracy(test), 0.9);
}

TEST(CoTraining, BeatsSingleViewWithFewLabels) {
  Rng rng(4);
  // View 2 is informative; a learner using only view 1 does worse than the
  // co-trained pair. Run a few seeds and compare averages for stability.
  double co_total = 0.0, single_total = 0.0;
  const int trials = 3;
  for (int trial = 0; trial < trials; ++trial) {
    // One draw per trial, split into labeled / unlabeled / test.
    data::FacetedData fd = data::make_faceted_gaussian(
        500, {{2, 2.5, 1.0, true}, {2, 2.5, 1.0, true}}, rng);
    std::vector<std::size_t> labeled_idx{0, 1, 2, 3, 4, 5};
    std::vector<std::size_t> test_idx;
    for (std::size_t i = 300; i < 500; ++i) test_idx.push_back(i);
    data::Samples labeled = data::select_rows(fd.samples, labeled_idx);
    data::Samples test = data::select_rows(fd.samples, test_idx);

    la::Matrix unlabeled(294, fd.samples.dim());
    for (std::size_t r = 6; r < 300; ++r) {
      for (std::size_t c = 0; c < fd.samples.dim(); ++c) {
        unlabeled(r - 6, c) = fd.samples.x(r, c);
      }
    }

    CoTrainer co(fd.views[0], fd.views[1]);
    co.fit(labeled, unlabeled);
    co_total += co.accuracy(test);

    learners::NaiveBayes nb;
    nb.fit(data::samples_to_dataset(project(labeled, fd.views[0])));
    single_total += nb.accuracy(
        data::samples_to_dataset(project(test, fd.views[0])));
  }
  EXPECT_GE(co_total / trials, single_total / trials - 0.02);
  EXPECT_GE(co_total / trials, 0.8);
}

TEST(CoTraining, Validation) {
  EXPECT_THROW(CoTrainer({}, {1}), InvalidArgument);
  EXPECT_THROW(CoTrainer({0}, {1}, CoTrainingParams{.min_confidence = 1.5}),
               InvalidArgument);
  CoTrainer co({0}, {1});
  la::Matrix x(2, 2);
  EXPECT_THROW(co.predict(x), InvalidArgument);  // not fitted
}

TEST(Cca, RecoversSharedSignal) {
  // x and y share a 1-D latent; CCA's top correlation should be near 1.
  Rng rng(5);
  const std::size_t n = 400;
  la::Matrix x(n, 3), y(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double z = rng.normal();
    x(r, 0) = z + rng.normal(0.0, 0.1);
    x(r, 1) = -z + rng.normal(0.0, 0.1);
    x(r, 2) = rng.normal();  // noise
    y(r, 0) = 2.0 * z + rng.normal(0.0, 0.1);
    y(r, 1) = rng.normal();  // noise
  }
  CcaResult cca = fit_cca(x, y, 2);
  EXPECT_GT(cca.correlations[0], 0.95);
  EXPECT_LT(cca.correlations[1], 0.3);
  // Empirical correlation of the top projections matches.
  EXPECT_GT(std::fabs(canonical_correlation(cca, x, y, 0)), 0.95);
}

TEST(Cca, IndependentViewsHaveLowCorrelation) {
  Rng rng(6);
  const std::size_t n = 500;
  la::Matrix x(n, 2), y(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      x(r, c) = rng.normal();
      y(r, c) = rng.normal();
    }
  }
  CcaResult cca = fit_cca(x, y, 2);
  EXPECT_LT(cca.correlations[0], 0.25);
}

TEST(Cca, ProjectionShapes) {
  Rng rng(7);
  la::Matrix x(50, 4), y(50, 3);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = rng.normal();
    for (std::size_t c = 0; c < 3; ++c) y(r, c) = rng.normal();
  }
  CcaResult cca = fit_cca(x, y, 10);  // capped at min(4, 3)
  EXPECT_EQ(cca.wx.cols(), 3u);
  EXPECT_EQ(cca_project_x(cca, x).cols(), 3u);
  EXPECT_EQ(cca_project_y(cca, y).cols(), 3u);
}

TEST(Cca, CorrelationsDescendAndBounded) {
  Rng rng(8);
  la::Matrix x(200, 3), y(200, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    const double z = rng.normal();
    for (std::size_t c = 0; c < 3; ++c) {
      x(r, c) = z * (c == 0 ? 1.0 : 0.2) + rng.normal();
      y(r, c) = z * (c == 0 ? 1.0 : 0.2) + rng.normal();
    }
  }
  CcaResult cca = fit_cca(x, y, 3);
  for (std::size_t i = 0; i < cca.correlations.size(); ++i) {
    EXPECT_GE(cca.correlations[i], -1e-9);
    EXPECT_LE(cca.correlations[i], 1.0 + 1e-6);
    if (i > 0) {
      EXPECT_LE(cca.correlations[i], cca.correlations[i - 1] + 1e-9);
    }
  }
}

TEST(Cca, Validation) {
  la::Matrix x(10, 2), y(9, 2);
  EXPECT_THROW(fit_cca(x, y, 1), InvalidArgument);
  la::Matrix tiny(2, 2);
  EXPECT_THROW(fit_cca(tiny, tiny, 1), InvalidArgument);
}

}  // namespace
}  // namespace iotml::multiview
