// Tests for the multi-class SVM and the CCA subspace classifier extensions.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "kernels/multiclass.hpp"
#include "multiview/subspace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml {
namespace {

/// k Gaussian blobs arranged on a circle, one class per blob.
data::Samples multiclass_blobs(std::size_t n, std::size_t classes, double radius,
                               double noise, Rng& rng) {
  data::Samples s;
  s.x = la::Matrix(n, 2);
  s.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % classes;
    const double angle = 2.0 * 3.14159265358979 * static_cast<double>(c) /
                         static_cast<double>(classes);
    s.x(i, 0) = radius * std::cos(angle) + rng.normal(0.0, noise);
    s.x(i, 1) = radius * std::sin(angle) + rng.normal(0.0, noise);
    s.y[i] = static_cast<int>(c);
  }
  return s;
}

TEST(OneVsOne, ThreeClassBlobs) {
  Rng rng(1);
  data::Samples train = multiclass_blobs(240, 3, 4.0, 0.8, rng);
  data::Samples test = multiclass_blobs(120, 3, 4.0, 0.8, rng);
  kernels::OneVsOneSvm svm(std::make_unique<kernels::RbfKernel>(0.5));
  svm.fit(train);
  EXPECT_EQ(svm.num_classes(), 3u);
  EXPECT_EQ(svm.num_pairs(), 3u);  // C(3,2)
  EXPECT_GE(svm.accuracy(test), 0.95);
}

TEST(OneVsOne, FiveClassBlobs) {
  Rng rng(2);
  data::Samples train = multiclass_blobs(400, 5, 5.0, 0.6, rng);
  data::Samples test = multiclass_blobs(200, 5, 5.0, 0.6, rng);
  kernels::OneVsOneSvm svm(std::make_unique<kernels::RbfKernel>(0.5));
  svm.fit(train);
  EXPECT_EQ(svm.num_pairs(), 10u);  // C(5,2)
  EXPECT_GE(svm.accuracy(test), 0.9);
}

TEST(OneVsOne, BinaryReducesToOnePair) {
  Rng rng(3);
  data::Samples train = data::make_blobs(120, 2, 5.0, 1.0, rng);
  data::Samples test = data::make_blobs(60, 2, 5.0, 1.0, rng);
  kernels::OneVsOneSvm svm(std::make_unique<kernels::LinearKernel>());
  svm.fit(train);
  EXPECT_EQ(svm.num_pairs(), 1u);
  EXPECT_GE(svm.accuracy(test), 0.95);
}

TEST(OneVsOne, Validation) {
  EXPECT_THROW(kernels::OneVsOneSvm(nullptr), InvalidArgument);
  kernels::OneVsOneSvm svm(std::make_unique<kernels::LinearKernel>());
  data::Samples one_class;
  one_class.x = la::Matrix(4, 2);
  one_class.y = {0, 0, 0, 0};
  EXPECT_THROW(svm.fit(one_class), InvalidArgument);
  la::Matrix probe(1, 2);
  EXPECT_THROW(svm.predict(probe), InvalidArgument);  // not fitted
}

TEST(Subspace, LearnsFromSharedLatent) {
  Rng rng(4);
  data::FacetedData fd = data::make_faceted_gaussian(
      600, {{3, 3.0, 1.0, true}, {3, 3.0, 1.0, true}}, rng);

  // 20 labeled rows, big unlabeled pool for the subspace, held-out test.
  std::vector<std::size_t> labeled_idx, test_idx;
  for (std::size_t i = 0; i < 20; ++i) labeled_idx.push_back(i);
  for (std::size_t i = 400; i < 600; ++i) test_idx.push_back(i);
  data::Samples labeled = data::select_rows(fd.samples, labeled_idx);
  data::Samples test = data::select_rows(fd.samples, test_idx);
  la::Matrix pool(380, fd.samples.dim());
  for (std::size_t r = 20; r < 400; ++r) {
    for (std::size_t c = 0; c < fd.samples.dim(); ++c) {
      pool(r - 20, c) = fd.samples.x(r, c);
    }
  }

  multiview::SubspaceClassifier subspace(fd.views[0], fd.views[1], 2);
  subspace.fit(labeled, pool);
  EXPECT_GT(subspace.subspace().correlations[0], 0.5);  // shared latent found
  EXPECT_GE(subspace.accuracy(test), 0.85);
}

TEST(Subspace, ProjectionDimsMatchComponents) {
  Rng rng(5);
  data::FacetedData fd = data::make_faceted_gaussian(
      100, {{3, 2.0, 1.0, true}, {4, 2.0, 1.0, true}}, rng);
  multiview::SubspaceClassifier subspace(fd.views[0], fd.views[1], 2);
  subspace.fit(fd.samples, fd.samples.x);
  EXPECT_EQ(subspace.subspace().wx.cols(), 2u);
  EXPECT_EQ(subspace.subspace().wy.cols(), 2u);
}

TEST(Subspace, Validation) {
  EXPECT_THROW(multiview::SubspaceClassifier({}, {1}, 1), InvalidArgument);
  EXPECT_THROW(multiview::SubspaceClassifier({0}, {1}, 0), InvalidArgument);
  multiview::SubspaceClassifier s({0}, {1}, 1);
  la::Matrix probe(1, 2);
  EXPECT_THROW(s.predict(probe), InvalidArgument);  // not fitted
}

}  // namespace
}  // namespace iotml
