#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "combinatorics/boolean_lattice.hpp"
#include "combinatorics/counting.hpp"
#include "util/error.hpp"

namespace iotml::comb {
namespace {

unsigned popcount(Subset s) { return static_cast<unsigned>(std::popcount(s)); }

TEST(SubsetString, Formatting) {
  EXPECT_EQ(subset_to_string(0, 3), "{}");
  EXPECT_EQ(subset_to_string(0b101, 3), "{1,3}");
  EXPECT_EQ(subset_to_string(0b111, 3), "{1,2,3}");
}

TEST(SubsetElements, OneBased) {
  EXPECT_EQ(subset_elements(0b110, 3), (std::vector<unsigned>{2, 3}));
  EXPECT_TRUE(subset_elements(0, 3).empty());
}

TEST(ChainThrough, PaperB3Chains) {
  // The paper's de Bruijn decomposition of B_3:
  // C1 = (emptyset, {1}, {1,2}, {1,2,3}), C2 = ({2},{2,3}), C3 = ({3},{1,3}).
  auto c1 = BooleanChainDecomposition::chain_through(0, 3);
  EXPECT_EQ(c1.sets, (std::vector<Subset>{0b000, 0b001, 0b011, 0b111}));

  auto c2 = BooleanChainDecomposition::chain_through(0b010, 3);
  EXPECT_EQ(c2.sets, (std::vector<Subset>{0b010, 0b110}));

  auto c3 = BooleanChainDecomposition::chain_through(0b100, 3);
  EXPECT_EQ(c3.sets, (std::vector<Subset>{0b100, 0b101}));
}

TEST(ChainThrough, SameChainForEveryMember) {
  // Property: the chain is well defined — computing it from any member
  // returns the identical chain.
  for (unsigned n = 1; n <= 8; ++n) {
    for (Subset s = 0; s < (Subset{1} << n); ++s) {
      auto chain = BooleanChainDecomposition::chain_through(s, n);
      for (Subset member : chain.sets) {
        auto again = BooleanChainDecomposition::chain_through(member, n);
        EXPECT_EQ(again.sets, chain.sets) << "n=" << n << " s=" << s;
      }
    }
  }
}

TEST(ChainThrough, ChainsAreSaturated) {
  // Consecutive sets differ by inserting exactly one element.
  for (unsigned n = 1; n <= 8; ++n) {
    for (Subset s = 0; s < (Subset{1} << n); ++s) {
      auto chain = BooleanChainDecomposition::chain_through(s, n);
      for (std::size_t i = 1; i < chain.sets.size(); ++i) {
        Subset prev = chain.sets[i - 1];
        Subset cur = chain.sets[i];
        EXPECT_EQ(prev & ~cur, 0u);
        EXPECT_EQ(popcount(cur), popcount(prev) + 1);
      }
    }
  }
}

TEST(ChainThrough, ChainsAreSymmetric) {
  // rank(first) + rank(last) == n for every chain.
  for (unsigned n = 1; n <= 10; ++n) {
    for (Subset s = 0; s < (Subset{1} << n); ++s) {
      auto chain = BooleanChainDecomposition::chain_through(s, n);
      EXPECT_EQ(popcount(chain.sets.front()) + popcount(chain.sets.back()), n);
    }
  }
}

class DecompositionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecompositionTest, ChainsPartitionTheLattice) {
  const unsigned n = GetParam();
  BooleanChainDecomposition d(n);
  std::set<Subset> seen;
  for (const auto& chain : d.chains()) {
    for (Subset s : chain.sets) {
      EXPECT_TRUE(seen.insert(s).second) << "duplicate subset in chains";
    }
  }
  EXPECT_EQ(seen.size(), std::size_t{1} << n);
}

TEST_P(DecompositionTest, ChainCountIsCentralBinomial) {
  // A symmetric chain decomposition of B_n has C(n, floor(n/2)) chains.
  const unsigned n = GetParam();
  BooleanChainDecomposition d(n);
  EXPECT_EQ(d.chains().size(), binomial(n, n / 2));
}

TEST_P(DecompositionTest, ChainOfIsConsistent) {
  const unsigned n = GetParam();
  BooleanChainDecomposition d(n);
  for (std::size_t i = 0; i < d.chains().size(); ++i) {
    for (Subset s : d.chains()[i].sets) {
      EXPECT_EQ(d.chain_of(s), i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, DecompositionTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 10u));

TEST(Decomposition, B3OrderMatchesPaper) {
  BooleanChainDecomposition d(3);
  ASSERT_EQ(d.chains().size(), 3u);
  EXPECT_EQ(d.chains()[0].sets, (std::vector<Subset>{0b000, 0b001, 0b011, 0b111}));
  EXPECT_EQ(d.chains()[1].sets, (std::vector<Subset>{0b010, 0b110}));
  EXPECT_EQ(d.chains()[2].sets, (std::vector<Subset>{0b100, 0b101}));
}

TEST(Decomposition, ChainOfOutOfRangeThrows) {
  BooleanChainDecomposition d(3);
  EXPECT_THROW(d.chain_of(0b1000), InvalidArgument);
}

TEST(Decomposition, NValidation) {
  EXPECT_THROW(BooleanChainDecomposition(0), InvalidArgument);
  EXPECT_THROW(BooleanChainDecomposition(25), InvalidArgument);
}

}  // namespace
}  // namespace iotml::comb
