// src/obs: histogram percentile math against known distributions, span
// nesting/ordering in the exported Chrome trace JSON, and concurrent
// recording into the registry (labelled tsan-critical — the tsan preset
// exercises exactly these suites).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/journey.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "pipeline/stage.hpp"
#include "util/error.hpp"

namespace {

using namespace iotml;

// ---- Histogram ------------------------------------------------------------

TEST(ObsHistogram, PercentilesOnKnownUniform) {
  // Unit-width buckets 0..100; one sample in the middle of each bucket makes
  // the interpolated percentiles exact up to one bucket width.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  obs::Histogram h(bounds);
  for (int v = 0; v < 100; ++v) h.record(static_cast<double>(v) + 0.5);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.min(), 0.5, 1e-12);
  EXPECT_NEAR(h.max(), 99.5, 1e-12);
  EXPECT_NEAR(h.sum(), 5000.0, 1e-9);
  EXPECT_NEAR(h.mean(), 50.0, 1e-9);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.01);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.01);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.01);
  EXPECT_NEAR(h.percentile(0.0), 0.5, 1.01);
  EXPECT_NEAR(h.percentile(1.0), 99.5, 1e-12);
}

TEST(ObsHistogram, PointMassIsExactRegardlessOfBucketWidth) {
  // All mass at 7 inside the huge (1, 1000] bucket: clamping percentiles to
  // the observed [min, max] makes every quantile exactly 7.
  obs::Histogram h({1.0, 1000.0});
  for (int i = 0; i < 1000; ++i) h.record(7.0);
  EXPECT_NEAR(h.percentile(0.50), 7.0, 1e-12);
  EXPECT_NEAR(h.percentile(0.99), 7.0, 1e-12);
}

TEST(ObsHistogram, SkewedTwoPointDistribution) {
  // 90 samples at ~1, 10 at ~100: p50 must sit in the low bucket, p99 in the
  // high one.
  obs::Histogram h(obs::Histogram::exponential_bounds(1.0, 2.0, 12));
  for (int i = 0; i < 90; ++i) h.record(1.0);
  for (int i = 0; i < 10; ++i) h.record(100.0);
  EXPECT_LT(h.percentile(0.50), 2.0);
  EXPECT_GT(h.percentile(0.95), 50.0);
  EXPECT_NEAR(h.percentile(0.99), 100.0, 36.1);  // within the (64, 128] bucket
}

TEST(ObsHistogram, OverflowBucketCatchesEverything) {
  obs::Histogram h({1.0, 2.0});
  h.record(5.0);
  h.record(9.0);
  EXPECT_EQ(h.count(), 2u);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[2], 2u);  // both in overflow
  // Overflow interpolates between the observed min-in-bucket floor and max.
  EXPECT_GT(h.percentile(0.99), 5.0);
  EXPECT_LE(h.percentile(0.99), 9.0);
  EXPECT_NEAR(h.percentile(1.0), 9.0, 1e-12);
}

TEST(ObsHistogram, EmptyReturnsZeros) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(ObsHistogram, ResetClearsEverything) {
  obs::Histogram h({1.0, 2.0});
  h.record(1.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(ObsHistogram, RejectsBadArguments) {
  EXPECT_THROW(obs::Histogram(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), InvalidArgument);
  obs::Histogram h({1.0});
  EXPECT_THROW(h.percentile(-0.1), InvalidArgument);
  EXPECT_THROW(h.percentile(1.1), InvalidArgument);
  EXPECT_THROW(obs::Histogram::exponential_bounds(0.0, 2.0, 4), InvalidArgument);
  EXPECT_THROW(obs::Histogram::exponential_bounds(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(obs::Histogram::exponential_bounds(1.0, 2.0, 0), InvalidArgument);
}

TEST(ObsHistogram, ExponentialBoundsDouble) {
  const auto bounds = obs::Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

// ---- Trace spans ----------------------------------------------------------

bool balanced_json_braces(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(ObsTrace, SpanNestingAndOrderingInExportedJson) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  {
    obs::Span outer(collector, "outer", "test");
    outer.arg("rows", std::uint64_t{42});
    {
      obs::Span inner(collector, "inner", "test");
      inner.arg("score", 0.5);
    }
    obs::Span sibling(collector, "sibling", "test");
  }

  const auto events = collector.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Spans complete inside-out: inner and sibling close before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[2].name, "outer");
  const obs::TraceEvent& outer_ev = events[2];
  EXPECT_EQ(outer_ev.depth, 0u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(events[i].depth, 1u);
    // Temporal containment: children start and end within the parent.
    EXPECT_GE(events[i].ts_us, outer_ev.ts_us);
    EXPECT_LE(events[i].ts_us + events[i].dur_us, outer_ev.ts_us + outer_ev.dur_us);
  }
  // Sibling ordering on the same thread.
  EXPECT_GE(events[1].ts_us, events[0].ts_us + events[0].dur_us);

  const std::string json = collector.chrome_json();
  EXPECT_TRUE(balanced_json_braces(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 42"), std::string::npos);       // numeric arg unquoted
  EXPECT_NE(json.find("\"score\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos);
}

TEST(ObsTrace, DisabledCollectorRecordsNothing) {
  obs::TraceCollector collector;  // disabled by default
  {
    obs::Span span(collector, "ghost", "test");
    span.arg("k", 1.0);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(collector.size(), 0u);
}

TEST(ObsTrace, StringArgsAreEscaped) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  {
    obs::Span span(collector, "quote\"name", "test");
    span.arg("text", "line1\nline2\\end");
  }
  const std::string json = collector.chrome_json();
  EXPECT_TRUE(balanced_json_braces(json)) << json;
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\\\end"), std::string::npos);
}

// ---- Registry -------------------------------------------------------------

TEST(ObsRegistry, InstrumentsAreStableByName) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  obs::Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("h", {1.0, 2.0});  // same bounds: same slot
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bounds().size(), 2u);
  // Re-registering under different bounds used to silently alias onto the
  // first call's buckets; it is now a hard error.
  EXPECT_THROW(reg.histogram("h", {9.0}), InvalidArgument);
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
}

TEST(ObsRegistry, CrossKindNameCollisionThrows) {
  obs::Registry reg;
  reg.counter("shared_name");
  EXPECT_THROW(reg.gauge("shared_name"), InvalidArgument);
  EXPECT_THROW(reg.histogram("shared_name", {1.0}), InvalidArgument);
  EXPECT_THROW(reg.histogram("shared_name"), InvalidArgument);
  reg.gauge("g_name");
  EXPECT_THROW(reg.counter("g_name"), InvalidArgument);
  reg.histogram("h_name", {1.0});
  EXPECT_THROW(reg.counter("h_name"), InvalidArgument);
  EXPECT_THROW(reg.gauge("h_name"), InvalidArgument);
  // The original instruments are untouched by failed registrations.
  reg.counter("shared_name").add(2);
  EXPECT_EQ(reg.counter("shared_name").value(), 2u);
}

TEST(ObsRegistry, ClearDropsEveryRegistration) {
  obs::Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(1.0);
  reg.histogram("h", {1.0, 2.0}).record(1.5);
  reg.clear();
  // After clear() the names are free again — even for a different kind or
  // different bounds.
  reg.gauge("c").set(3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("c").value(), 3.0);
  obs::Histogram& h = reg.histogram("h", {9.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bounds().size(), 1u);
  EXPECT_EQ(reg.counter("g").value(), 0u);
}

TEST(ObsRegistry, JsonSnapshotContainsEveryInstrument) {
  obs::Registry reg;
  reg.counter("events_total").add(7);
  reg.gauge("load").set(0.25);
  reg.histogram("latency_us", {10.0, 100.0}).record(42.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(balanced_json_braces(json)) << json;
  EXPECT_NE(json.find("\"events_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"load\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(ObsRegistry, ConcurrentCountersAndHistogramsLoseNothing) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kOps; ++i) {
        // Mix registry lookups with increments so tsan sees the map mutex
        // interleaved with the lock-free instrument updates.
        reg.counter("shared").add();
        reg.counter("per_thread_" + std::to_string(t)).add();
        reg.histogram("lat", {1.0, 8.0, 64.0}).record(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("shared").value(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.histogram("lat").count(), static_cast<std::uint64_t>(kThreads) * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("per_thread_" + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kOps));
  }
  EXPECT_DOUBLE_EQ(reg.histogram("lat").min(), 0.0);
  EXPECT_DOUBLE_EQ(reg.histogram("lat").max(), 99.0);
}

TEST(ObsRegistry, ConcurrentSpansAgainstOneCollector) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < kSpans; ++i) {
        obs::Span outer(collector, "outer", "test");
        obs::Span inner(collector, "inner", "test");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(collector.size(), static_cast<std::size_t>(kThreads) * kSpans * 2);
}

// ---- Virtual-time series --------------------------------------------------

TEST(ObsTimeSeries, LogHistogramQuantilesMatchHistogramSemantics) {
  obs::LogHistogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h.record(1.5);
  for (int i = 0; i < 10; ++i) h.record(6.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), (90 * 1.5 + 10 * 6.0) / 100.0, 1e-12);
  EXPECT_LT(h.quantile(0.5), 2.0);
  EXPECT_GT(h.quantile(0.95), 4.0);
  EXPECT_NEAR(h.quantile(1.0), 6.0, 1e-12);
  EXPECT_NEAR(h.quantile(0.0), 1.5, 0.51);
  // Point mass clamps to the observed value exactly, like obs::Histogram.
  obs::LogHistogram point({1.0, 1000.0});
  for (int i = 0; i < 50; ++i) point.record(7.0);
  EXPECT_NEAR(point.quantile(0.5), 7.0, 1e-12);
  EXPECT_NEAR(point.quantile(0.99), 7.0, 1e-12);
}

TEST(ObsTimeSeries, LogHistogramRejectsBadArguments) {
  EXPECT_THROW(obs::LogHistogram(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(obs::LogHistogram({2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(obs::LogHistogram({1.0, 1.0}), InvalidArgument);
  obs::LogHistogram h({1.0});
  EXPECT_THROW(h.quantile(-0.1), InvalidArgument);
  EXPECT_THROW(h.quantile(1.1), InvalidArgument);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
}

TEST(ObsTimeSeries, DefaultLatencyBoundsDoubleFromOneMs) {
  obs::LogHistogram h;
  const auto& bounds = h.bounds();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  }
  EXPECT_EQ(h.buckets().size(), bounds.size() + 1);  // + overflow
}

TEST(ObsTimeSeries, SamplerRingOverwritesOldestAndKeepsTotal) {
  obs::Sampler s(3);
  for (int i = 0; i < 5; ++i) s.record(static_cast<double>(i), i * 10.0);
  EXPECT_EQ(s.total(), 5u);
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 3u);  // oldest two shed
  EXPECT_DOUBLE_EQ(samples[0].t_s, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].t_s, 3.0);
  EXPECT_DOUBLE_EQ(samples[2].t_s, 4.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 40.0);
}

TEST(ObsTimeSeries, StoreReturnsStableSeriesAndSortedJson) {
  obs::TimeSeriesStore store(4);
  obs::Sampler& a = store.series("zz.metric", "dev1", "device");
  obs::Sampler& b = store.series("zz.metric", "dev1", "device");
  EXPECT_EQ(&a, &b);
  store.series("aa.metric", "core", "core").record(1.0, 2.0);
  a.record(0.5, 7.0);
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.samples_total(), 2u);
  const std::string json = store.to_json();
  EXPECT_TRUE(balanced_json_braces(json)) << json;
  // Sorted by (metric, entity, tier): aa.metric renders before zz.metric.
  const auto aa = json.find("aa.metric");
  const auto zz = json.find("zz.metric");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos);
  EXPECT_NE(json.find("[0.5, 7]"), std::string::npos);
}

TEST(ObsTimeSeries, ConcurrentSamplingLosesNothing) {
  obs::TimeSeriesStore store(64);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kOps; ++i) {
        // Mix get-or-create lookups on a shared key and a per-thread key so
        // tsan sees map growth interleaved with ring writes.
        store.series("shared", "fleet", "device").record(i * 1e-3, 1.0);
        store.series("per_thread", "t" + std::to_string(t), "device")
            .record(i * 1e-3, 2.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.series_count(), 1u + kThreads);
  EXPECT_EQ(store.samples_total(),
            static_cast<std::uint64_t>(kThreads) * kOps * 2);
  const auto shared = store.series("shared", "fleet", "device").samples();
  EXPECT_EQ(shared.size(), 64u);  // ring stayed bounded
}

// ---- Journey log ----------------------------------------------------------

obs::HopRecord make_hop(std::uint64_t trace, const char* outcome) {
  obs::HopRecord r;
  r.trace = trace;
  r.hop = 0;
  r.kind = obs::HopKind::kSend;
  r.stream = obs::HopStream::kRows;
  r.src = 1;
  r.dst = 2;
  r.t0_s = 0.25;
  r.t1_s = 0.5;
  r.rows = 8;
  r.bytes = 96;
  r.attempts = 2;
  r.outcome = outcome;
  r.parents = {trace + 100};
  return r;
}

TEST(ObsJourney, BoundedAppendCountsDrops) {
  obs::JourneyLog log(2);
  log.record(make_hop(1, "delivered"));
  log.record(make_hop(2, "dropped"));
  log.record(make_hop(3, "delivered"));  // past capacity
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].trace, 1u);
  EXPECT_EQ(snap[1].trace, 2u);
}

TEST(ObsJourney, JsonlHasMetaLineAndFixedKeyOrder) {
  obs::JourneyLog log(16);
  log.record(make_hop(7, "delivered"));
  std::ostringstream out;
  log.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"meta\": {\"records\": 1, \"dropped\": 0}}"),
            std::string::npos);
  EXPECT_NE(text.find("\"trace\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"send\""), std::string::npos);
  EXPECT_NE(text.find("\"stream\": \"rows\""), std::string::npos);
  EXPECT_NE(text.find("\"attempts\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"outcome\": \"delivered\""), std::string::npos);
  EXPECT_NE(text.find("\"parents\": [107]"), std::string::npos);
  // One meta line + one record line, each valid on its own.
  std::istringstream lines(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(balanced_json_braces(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(ObsJourney, ConcurrentRecordingKeepsEveryRecordUpToCapacity) {
  obs::JourneyLog log(1 << 14);
  constexpr int kThreads = 8;
  constexpr int kOps = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kOps; ++i) {
        log.record(make_hop(static_cast<std::uint64_t>(t) * kOps + i, "delivered"));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads) * kOps);
  EXPECT_EQ(log.dropped(), 0u);
}

// ---- Flight recorder ------------------------------------------------------

TEST(ObsFlight, RingKeepsNewestEventsPerEntity) {
  obs::FlightRecorder rec(3, 2);
  rec.note(0, 0.1, "flush", 10, 0);
  rec.note(0, 0.2, "send", 10, 96);
  rec.note(0, 0.3, "rx-rows", 10, 0);  // evicts the flush
  rec.note(2, 0.25, "checkpoint", 5, 0);
  EXPECT_EQ(rec.noted(), 4u);
  const auto d0 = rec.dump(0);
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_STREQ(d0[0].kind, "send");
  EXPECT_STREQ(d0[1].kind, "rx-rows");
  EXPECT_TRUE(rec.dump(1).empty());
  const auto lines = rec.dump_lines(2);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "t=0.25 checkpoint a=5 b=0");
  std::ostringstream out;
  rec.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(balanced_json_braces(json)) << json;
  EXPECT_NE(json.find("\"ring_capacity\": 2"), std::string::npos);
  // Entity 1 noted nothing and is omitted.
  EXPECT_EQ(json.find("\"entity\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"entity\": 2"), std::string::npos);
}

TEST(ObsFlight, ConcurrentNotesAcrossEntities) {
  obs::FlightRecorder rec(4, 8);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kOps; ++i) {
        rec.note(static_cast<std::size_t>(t), i * 1e-3, "tick",
                 static_cast<std::uint64_t>(i), 0);
        rec.note(0, i * 1e-3, "shared", 0, 0);  // all threads hit ring 0 too
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.noted(), static_cast<std::uint64_t>(kThreads) * kOps * 2);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_EQ(rec.dump(e).size(), 8u);  // every ring full, still bounded
  }
}

// ---- Wiring: Pipeline::run measures and reports ---------------------------

TEST(ObsWiring, PipelineRunFillsWallTimeAndGlobalInstruments) {
  const std::uint64_t stages_before = obs::registry().counter("pipeline.stages_run").value();

  data::Dataset ds;
  data::Column& col = ds.add_numeric_column("x");
  for (double v : {1.0, 2.0, 3.0, 4.0}) col.push_numeric(v);
  Rng rng(5);
  pipeline::Pipeline p;
  p.add("busywork", [](data::Dataset& d, Rng&) {
    double acc = 0.0;
    for (int i = 0; i < 50000; ++i) acc += static_cast<double>(i) * 1e-9;
    d.column(0).set_numeric(0, acc);
    return 1.0;
  });
  p.add("noop", [](data::Dataset&, Rng&) { return 0.5; });
  p.run(ds, rng);

  ASSERT_EQ(p.reports().size(), 2u);
  EXPECT_GT(p.reports()[0].wall_time_us, 0u);  // 50k flops do not finish in <1us
  EXPECT_EQ(obs::registry().counter("pipeline.stages_run").value(), stages_before + 2);
  EXPECT_GE(obs::registry().histogram("pipeline.stage_wall_us").count(), 2u);
}

TEST(ObsWiring, GlobalTraceDisabledByDefaultButCapturesWhenEnabled) {
  // Without IOTML_TRACE the global collector must be off (the no-op path).
  ASSERT_TRUE(obs::trace_path().empty()) << "test assumes IOTML_TRACE is unset";
  EXPECT_FALSE(obs::trace().enabled());

  obs::trace().set_enabled(true);
  const std::size_t before = obs::trace().size();
  {
    data::Dataset ds;
    data::Column& col = ds.add_numeric_column("x");
    col.push_numeric(1.0);
    col.push_numeric(2.0);
    Rng rng(7);
    pipeline::Pipeline p;
    p.add("traced", [](data::Dataset&, Rng&) { return 0.0; });
    p.run(ds, rng);
  }
  obs::trace().set_enabled(false);
  const auto events = obs::trace().snapshot();
  EXPECT_GT(events.size(), before);
  bool saw_stage = false;
  for (const auto& e : events) {
    if (e.name == "stage:traced") saw_stage = true;
  }
  EXPECT_TRUE(saw_stage);
  obs::trace().clear();
}

}  // namespace
