#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotml::la {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a = random_matrix(n, n, rng);
  Matrix spd = a.transpose() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
}

TEST(Matrix, IdentityAndMultiply) {
  Rng rng(1);
  Matrix a = random_matrix(4, 4, rng);
  Matrix prod = a * Matrix::identity(4);
  EXPECT_LT(prod.max_abs_diff(a), 1e-12);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(2);
  Matrix a = random_matrix(3, 5, rng);
  EXPECT_LT(a.transpose().transpose().max_abs_diff(a), 1e-15);
}

TEST(Matrix, MatrixVectorMatchesManual) {
  Matrix a{{1, 2}, {3, 4}};
  Vector v{5, 6};
  Vector out = a * v;
  EXPECT_DOUBLE_EQ(out[0], 17);
  EXPECT_DOUBLE_EQ(out[1], 39);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5);
  Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(1, 1), 3);
  EXPECT_DOUBLE_EQ(a.scaled(2.0)(1, 0), 6);
}

TEST(Matrix, TraceAndFrobenius) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.trace(), 7);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5);
}

TEST(Matrix, SymmetryDetection) {
  Matrix s{{1, 2}, {2, 1}};
  Matrix a{{1, 2}, {3, 1}};
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_FALSE(a.is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(VectorOps, DotNormAxpy) {
  Vector a{1, 2, 2};
  Vector b{2, 0, 1};
  EXPECT_DOUBLE_EQ(dot(a, b), 4);
  EXPECT_DOUBLE_EQ(norm2(a), 3);
  Vector c = axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(c[0], 4);
  EXPECT_DOUBLE_EQ(c[2], 5);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW(dot({1}, {1, 2}), InvalidArgument);
  EXPECT_THROW(sub({1}, {1, 2}), InvalidArgument);
}

TEST(Lu, SolvesRandomSystems) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = random_matrix(6, 6, rng);
    Vector x_true(6);
    for (auto& v : x_true) v = rng.normal();
    Vector b = a * x_true;
    Vector x = solve_lu(a, b);
    for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Lu, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(solve_lu(a, Vector{1, 1}), NumericError);
}

TEST(Lu, MatrixRhs) {
  Rng rng(4);
  Matrix a = random_spd(4, rng);
  Matrix x = solve_lu(a, Matrix::identity(4));
  EXPECT_LT((a * x).max_abs_diff(Matrix::identity(4)), 1e-8);
}

TEST(Lu, DeterminantMatchesKnown) {
  Matrix a{{2, 0}, {0, 3}};
  EXPECT_NEAR(determinant(a), 6.0, 1e-12);
  Matrix swap{{0, 1}, {1, 0}};
  EXPECT_NEAR(determinant(swap), -1.0, 1e-12);
  Matrix singular{{1, 2}, {2, 4}};
  EXPECT_NEAR(determinant(singular), 0.0, 1e-12);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  Rng rng(5);
  Matrix a = random_spd(5, rng);
  EXPECT_LT((a * inverse(a)).max_abs_diff(Matrix::identity(5)), 1e-8);
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(6);
  Matrix a = random_spd(6, rng);
  Matrix l = cholesky(a);
  EXPECT_LT((l * l.transpose()).max_abs_diff(a), 1e-8);
}

TEST(Cholesky, SolveMatchesLu) {
  Rng rng(7);
  Matrix a = random_spd(5, rng);
  Vector b(5);
  for (auto& v : b) v = rng.normal();
  Vector x1 = cholesky_solve(cholesky(a), b);
  Vector x2 = solve_lu(a, b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(Cholesky, IndefiniteThrowsWithoutJitter) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_THROW(cholesky(a), NumericError);
}

TEST(Cholesky, JitterRescuesNearSingular) {
  Matrix a{{1, 1}, {1, 1}};  // PSD but singular
  Matrix l = cholesky(a, 1e-6);
  EXPECT_EQ(l.rows(), 2u);
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a{{5, 0}, {0, 2}};
  EigenResult e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 5.0, 1e-10);
  EXPECT_NEAR(e.values[1], 2.0, 1e-10);
}

TEST(Eigen, ReconstructsMatrix) {
  Rng rng(8);
  Matrix a = random_spd(6, rng);
  EigenResult e = eigen_symmetric(a);
  // A = V diag(lambda) V^T
  Matrix lambda(6, 6);
  for (std::size_t i = 0; i < 6; ++i) lambda(i, i) = e.values[i];
  Matrix rebuilt = e.vectors * lambda * e.vectors.transpose();
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-8);
}

TEST(Eigen, VectorsOrthonormal) {
  Rng rng(9);
  Matrix a = random_spd(5, rng);
  EigenResult e = eigen_symmetric(a);
  Matrix vtv = e.vectors.transpose() * e.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(5)), 1e-8);
}

TEST(Eigen, ValuesDescending) {
  Rng rng(10);
  Matrix a = random_spd(7, rng);
  EigenResult e = eigen_symmetric(a);
  for (std::size_t i = 1; i < e.values.size(); ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i] - 1e-12);
  }
}

TEST(Eigen, KnownTwoByTwo) {
  Matrix a{{2, 1}, {1, 2}};
  EigenResult e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(Stats, ColumnMeans) {
  Matrix x{{1, 10}, {3, 20}};
  Vector m = column_means(x);
  EXPECT_DOUBLE_EQ(m[0], 2);
  EXPECT_DOUBLE_EQ(m[1], 15);
}

TEST(Stats, CovarianceDiagonalOfIndependentColumns) {
  Rng rng(12);
  Matrix x(5000, 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.normal(0.0, 1.0);
    x(i, 1) = rng.normal(0.0, 2.0);
  }
  Matrix c = covariance(x);
  EXPECT_NEAR(c(0, 0), 1.0, 0.1);
  EXPECT_NEAR(c(1, 1), 4.0, 0.3);
  EXPECT_NEAR(c(0, 1), 0.0, 0.1);
}

TEST(Stats, CrossCovarianceOfLinearlyRelated) {
  Rng rng(13);
  Matrix x(3000, 1), y(3000, 1);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double v = rng.normal();
    x(i, 0) = v;
    y(i, 0) = 2.0 * v;
  }
  Matrix c = cross_covariance(x, y);
  EXPECT_NEAR(c(0, 0), 2.0, 0.15);
}

TEST(Stats, CovarianceIsSymmetricPsd) {
  Rng rng(14);
  Matrix x = random_matrix(100, 4, rng);
  Matrix c = covariance(x);
  EXPECT_TRUE(c.is_symmetric(1e-10));
  EigenResult e = eigen_symmetric(c);
  for (double v : e.values) EXPECT_GE(v, -1e-10);
}

}  // namespace
}  // namespace iotml::la
